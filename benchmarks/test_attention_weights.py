"""Figure 6: learned meta-path attention weights.

Paper (20% train): on DBLP the venue meta-path APCPA dominates (weight
≈ 1) while APA/APAPA are near 0; on Yelp BRKRB (shared food keyword)
outweighs BRURB (shared customer); on Freebase all three paths matter,
with MAM/MDM a bit above MPM.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import conch_config
from repro.core import ConCHTrainer, prepare_conch_data
from repro.data import stratified_split

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow


def _train_and_read_attention(dataset):
    config = conch_config(dataset.name)
    split = stratified_split(dataset.labels, 0.20, seed=0)
    data = prepare_conch_data(dataset, config)
    trainer = ConCHTrainer(data, config).fit(split)
    return trainer.attention_weights(), trainer.evaluate(split.test)


@pytest.mark.parametrize("dataset_name", ["dblp", "yelp", "freebase"])
def test_attention_weights(benchmark, dataset_name, request):
    dataset = request.getfixturevalue(dataset_name)
    weights, scores = benchmark.pedantic(
        lambda: _train_and_read_attention(dataset), rounds=1, iterations=1
    )
    print(f"\nFig. 6 analogue — {dataset.name} (test micro-F1 {scores['micro_f1']:.4f})")
    for metapath, weight in zip(dataset.metapaths, weights):
        bar = "#" * int(round(weight * 40))
        print(f"  {metapath.name:<8} {weight:.3f}  {bar}")

    np.testing.assert_allclose(weights.sum(), 1.0, atol=1e-6)
    names = [m.name for m in dataset.metapaths]
    if dataset.name == "dblp":
        # Venue path should dominate co-authorship (paper Fig. 6a).
        assert weights[names.index("APCPA")] >= weights[names.index("APA")]
    elif dataset.name == "yelp":
        # Keyword path should outweigh the customer path (paper Fig. 6b).
        assert weights[names.index("BRKRB")] > weights[names.index("BRURB")]
    else:
        # Freebase: all paths carry weight (paper Fig. 6c).
        assert weights.min() > 0.1
