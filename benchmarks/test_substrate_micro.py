"""Microbenchmarks of the substrate (true pytest-benchmark usage).

These time the hot inner operations the experiments are built from:
PathSim computation, context enumeration, bipartite convolution
forward/backward, sparse matmul, segment softmax, and a skip-gram epoch.
They guard against performance regressions in the library itself.

The ``substrate``-prefixed benches track the commuting-matrix engine
(PR: shared memoization of meta-path products): end-to-end
``prepare_conch_data`` preprocessing, bulk pair lookup, row-wise top-k,
and the batched context-enumeration kernel (PR: pruned frontier
expansion replacing the per-pair DFS).  Their numbers in the BENCH
output are the regression guard for the substrate's speedup over the
seed's recompute-everything behavior.

Cold/warm annotation (ROADMAP item, closed by the cache-management PR):
each substrate path is measured **cold** (explicit ``invalidate()``
before every round, so composition cost is visible), **warm** (memoized
engine, pure consumer cost), and — for the preprocessing pipeline —
**disk-warm** (cold memory but a warm ``ProductStore`` under a tmp
cache dir: the second-process scenario, composing zero products).  The
disk store is never ambient: benches pass explicit tmp dirs and restore
the shared engine's configuration afterwards, so CI machines never
touch a shared cache directory.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, ops, sparse_matmul
from repro.core import ConCHConfig
from repro.core.bipartite_conv import BipartiteConv
from repro.core.trainer import prepare_conch_data
from repro.data import load_dataset
from repro.embedding.metapath2vec import metapath2vec_embeddings
from repro.embedding.skipgram import SkipGramConfig, train_skipgram
from repro.embedding.walks import metapath_walks
from repro.hin import NeighborFilter, build_bipartite_graph, get_engine
from repro.hin.pathsim import pathsim_matrix, pathsim_pairs
from repro.hin.similarity import similarity_matrix


@pytest.fixture(scope="module")
def dblp_small():
    from repro.data import DBLPConfig

    return load_dataset(
        "dblp", config=DBLPConfig(num_authors=200, num_papers=700, num_conferences=12)
    )


@pytest.fixture(scope="module")
def prepare_bench_inputs(dblp_small):
    """Shared config + precomputed embeddings for the prepare benches.

    Embeddings are precomputed once so the measurements isolate the
    substrate: PathSim filtering, retained pairs, context enumeration,
    and context-feature assembly.
    """
    config = ConCHConfig(
        k=5, context_dim=16, embed_num_walks=2, embed_walk_length=10,
        embed_epochs=1, max_instances=8,
    )
    embeddings = metapath2vec_embeddings(
        dblp_small.hin, dblp_small.metapaths, dim=config.context_dim,
        num_walks=2, walk_length=10, epochs=1, seed=0,
    )
    return config, embeddings


def test_bench_substrate_prepare_conch_data_cold(
    benchmark, dblp_small, prepare_bench_inputs
):
    """Cold `prepare_conch_data`: every round pays full composition.

    `invalidate()` before each round drops the engine's memory caches
    (no disk store is configured), so this is the first-consumer cost —
    the number to compare against the warm bench below (ROADMAP's
    cold/warm timing annotation).
    """
    config, embeddings = prepare_bench_inputs
    engine = get_engine(dblp_small.hin)

    def prepare_cold():
        engine.invalidate()
        return prepare_conch_data(dblp_small, config, embeddings=embeddings)

    data = benchmark.pedantic(prepare_cold, rounds=3, iterations=1)
    assert data.substrate_stats["composed_products"] > 0


def test_bench_substrate_prepare_conch_data_warm(
    benchmark, dblp_small, prepare_bench_inputs
):
    """Warm `prepare_conch_data`: the engine's cache makes repeated
    preprocessing (ablations, variant sweeps) near-free."""
    config, embeddings = prepare_bench_inputs
    prepare_conch_data(dblp_small, config, embeddings=embeddings)  # warm up
    data = benchmark.pedantic(
        prepare_conch_data,
        args=(dblp_small, config),
        kwargs={"embeddings": embeddings},
        rounds=3,
        iterations=1,
    )
    assert data.substrate_stats["composed_products"] > 0
    # Compose-once guarantee holds across repeated preprocessing rounds.
    engine = get_engine(dblp_small.hin)
    assert len(engine.compose_log) == len(set(engine.compose_log))


def test_bench_substrate_prepare_conch_data_disk_warm(
    benchmark, dblp_small, prepare_bench_inputs, tmp_path_factory
):
    """Cold-memory / warm-disk `prepare_conch_data` (second-process cost).

    A first run populates a tmp-dir ProductStore; every measured round
    then invalidates the engine's memory caches, so all chain products
    are reloaded from `.npz` instead of recomposed — the cost a fresh
    process pays on an unchanged dataset.
    """
    config, embeddings = prepare_bench_inputs
    cache_dir = str(tmp_path_factory.mktemp("product-store"))
    engine = get_engine(dblp_small.hin, cache_dir=cache_dir)
    try:
        # Populate from cold memory: write-through fires on composition,
        # so a memory-warm engine (earlier benches) would write nothing.
        engine.invalidate()
        prepare_conch_data(dblp_small, config, embeddings=embeddings)

        def prepare_disk_warm():
            engine.invalidate()
            return prepare_conch_data(dblp_small, config, embeddings=embeddings)

        data = benchmark.pedantic(prepare_disk_warm, rounds=3, iterations=1)
        # The warm store served every product: zero compositions.
        assert data.substrate_stats["composed_products"] == 0
        assert data.substrate_stats["disk_hits"] > 0
    finally:
        # Detach the tmp store and drop its loaded state so later benches
        # measure the plain in-memory engine.
        engine.set_cache_dir(None)
        engine.invalidate()


def test_bench_substrate_context_kernel_warm(benchmark, dblp_small):
    """Batched frontier enumeration with a fully warm engine cache.

    Times exactly the kernel (frontier expansion + suffix pruning +
    truncation) on the densest meta-path's retained pairs; chain,
    suffix products, and lookup keys are pre-composed.  This is the
    regression guard for the PR that replaced the per-pair Python DFS.
    """
    from repro.hin.context import enumerate_contexts

    metapath = dblp_small.metapaths[2]  # APCPA, the densest
    nf = NeighborFilter(k=5)
    pairs = nf.retained_pairs(dblp_small.hin, metapath)
    engine = get_engine(dblp_small.hin)
    engine.suffix_products(metapath)  # warm the pruning masks
    batch = benchmark(
        enumerate_contexts, dblp_small.hin, metapath, pairs, 8
    )
    assert batch.num_pairs == pairs.shape[0]
    assert batch.instance_ids.shape[0] > 0


def test_bench_substrate_context_kernel_cold(benchmark, dblp_small):
    """Same enumeration from an invalidated engine (cold composition).

    The cold/warm pair makes the composition cost visible separately
    from the kernel itself (ROADMAP's cold/warm annotation item): cold
    pays suffix-product composition, warm is pure frontier expansion.
    """
    from repro.hin.context import enumerate_contexts

    metapath = dblp_small.metapaths[2]
    nf = NeighborFilter(k=5)
    pairs = nf.retained_pairs(dblp_small.hin, metapath)
    engine = get_engine(dblp_small.hin)

    def cold_enumerate():
        engine.invalidate()
        return enumerate_contexts(dblp_small.hin, metapath, pairs, 8)

    batch = benchmark.pedantic(cold_enumerate, rounds=3, iterations=1)
    assert batch.num_pairs == pairs.shape[0]
    # Leave the engine warm for the benches that follow.
    engine.suffix_products(metapath)


def test_bench_substrate_pathsim_pairs(benchmark, dblp_small):
    """Bulk pair-score lookup (searchsorted, no n×n materialization)."""
    metapath = dblp_small.metapaths[2]
    rng = np.random.default_rng(0)
    n = dblp_small.num_targets
    pairs = np.stack(
        [rng.integers(0, n, size=5000), rng.integers(0, n, size=5000)], axis=1
    )
    scores = benchmark(pathsim_pairs, dblp_small.hin, metapath, pairs)
    assert scores.shape == (5000,)


def test_bench_substrate_topk_rows(benchmark, dblp_small):
    """Vectorized row-wise top-k over the densest similarity matrix."""
    from repro.hin.engine import csr_row_topk

    metapath = dblp_small.metapaths[2]
    matrix = similarity_matrix(dblp_small.hin, metapath, "pathsim")
    lists = benchmark(csr_row_topk, matrix, 10)
    assert len(lists) == matrix.shape[0]


def test_bench_pathsim_matrix(benchmark, dblp_small):
    metapath = dblp_small.metapaths[2]  # APCPA, the densest
    result = benchmark(pathsim_matrix, dblp_small.hin, metapath)
    assert result.nnz > 0


def test_bench_neighbor_filter(benchmark, dblp_small):
    nf = NeighborFilter(k=5)
    pairs = benchmark(nf.retained_pairs, dblp_small.hin, dblp_small.metapaths[0])
    assert pairs.shape[1] == 2


def test_bench_bipartite_build_with_instances(benchmark, dblp_small):
    nf = NeighborFilter(k=5)
    graph = benchmark.pedantic(
        build_bipartite_graph,
        args=(dblp_small.hin, dblp_small.metapaths[0], nf),
        kwargs={"enumerate_instances": True, "max_instances": 8},
        rounds=3,
        iterations=1,
    )
    assert graph.contexts is not None


def test_bench_bipartite_conv_forward_backward(benchmark):
    rng = np.random.default_rng(0)
    n, m, d = 500, 2000, 64
    rows = np.repeat(np.arange(m), 2) % n
    cols = np.repeat(np.arange(m), 2)
    incidence = sp.csr_matrix(
        (np.ones(2 * m), (rows, cols)), shape=(n, m)
    )
    conv = BipartiteConv(d, d, d, rng)
    h_x = Tensor(rng.normal(size=(n, d)), requires_grad=False)
    h_c = Tensor(rng.normal(size=(m, d)), requires_grad=False)

    def step():
        conv.zero_grad()
        new_x, new_c = conv(incidence, h_x, h_c)
        (new_x.sum() + new_c.sum()).backward()
        return new_x

    result = benchmark(step)
    assert result.shape == (n, d)


def test_bench_sparse_matmul(benchmark):
    rng = np.random.default_rng(0)
    matrix = sp.random(2000, 2000, density=0.005, random_state=0, format="csr")
    dense = Tensor(rng.normal(size=(2000, 64)))
    result = benchmark(sparse_matmul, matrix, dense)
    assert result.shape == (2000, 64)


def test_bench_segment_softmax(benchmark):
    rng = np.random.default_rng(0)
    scores = Tensor(rng.normal(size=20_000), requires_grad=False)
    ids = rng.integers(0, 1000, size=20_000)

    result = benchmark(ops.segment_softmax, scores, ids, 1000)
    assert result.shape == (20_000,)


def test_bench_skipgram_epoch(benchmark, dblp_small):
    rng = np.random.default_rng(0)
    walks = metapath_walks(
        dblp_small.hin, dblp_small.metapaths[0], num_walks=2, walk_length=15, rng=rng
    )
    config = SkipGramConfig(dim=32, epochs=1, seed=0)
    table = benchmark.pedantic(
        train_skipgram,
        args=(walks, dblp_small.hin.total_nodes, config),
        rounds=3,
        iterations=1,
    )
    assert table.shape == (dblp_small.hin.total_nodes, 32)


def test_bench_cross_entropy_backward(benchmark):
    from repro.nn import cross_entropy

    rng = np.random.default_rng(0)
    logits_data = rng.normal(size=(5000, 16))
    labels = rng.integers(0, 16, size=5000)

    def step():
        logits = Tensor(logits_data, requires_grad=True)
        loss = cross_entropy(logits, labels)
        loss.backward()
        return loss

    result = benchmark(step)
    assert np.isfinite(result.item())
