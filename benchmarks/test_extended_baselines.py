"""Extended method panel: the related-work baselines beyond Table I.

The paper's §II discusses — but does not tabulate — Grempt, GraphSAGE,
DGI and HIN2Vec.  This bench runs them against ConCH under the Table-I
protocol on DBLP and applies the statistics module: win counts with tie
tolerance, pairwise comparisons, and the Friedman omnibus over the panel.
Expected shape: ConCH leads or ties the panel; the feature-free classics
(Grempt) trail the feature-using GNN at moderate label budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import GNN_EPOCHS, TRAIN_FRACTIONS, conch_config
from repro.baselines import make_method
from repro.baselines.base import TrainSettings
from repro.baselines.registry import conch_method
from repro.eval.harness import run_contest, summarize_results
from repro.eval.statistics import (
    compare_methods,
    count_wins,
    friedman_test,
    mean_ranks,
    scores_by_contest,
)

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow


def _panel(dataset_name: str):
    settings = TrainSettings(epochs=GNN_EPOCHS, patience=40)
    return {
        "Grempt": make_method("Grempt"),
        "GraphSAGE": make_method("GraphSAGE", settings=settings),
        "DGI": make_method("DGI", epochs=60),
        "HIN2Vec": make_method("HIN2Vec", epochs=3),
        "ConCH": conch_method(base_config=conch_config(dataset_name)),
    }


def test_extended_panel_dblp(benchmark, dblp):
    results = benchmark.pedantic(
        lambda: run_contest(
            _panel(dblp.name), dblp, train_fractions=TRAIN_FRACTIONS, seed=0
        ),
        rounds=1,
        iterations=1,
    )

    table = summarize_results(results, metric="micro_f1")
    contests = sorted(
        {r.contest_id for r in results},
        key=lambda c: int(c.split("@")[1].rstrip("%")),
    )
    print("\nExtended panel — dblp — micro_f1")
    header = "method     | " + " | ".join(c.rjust(9) for c in contests)
    print(header)
    print("-" * len(header))
    for method in _panel(dblp.name):
        row = " | ".join(f"{table[method][c]:.4f}".rjust(9) for c in contests)
        print(f"{method:<10} | {row}")

    wins = count_wins(results, tie_tolerance=0.01)
    print(f"wins (±0.01 tie tolerance): {wins}")

    # Shape 1: ConCH wins or ties every contest in this panel.
    assert wins["ConCH"] >= len(contests) - 1

    # Shape 2: pairwise, ConCH's mean gap over each competitor is >= ~0.
    for competitor in ("Grempt", "GraphSAGE", "DGI", "HIN2Vec"):
        comparison = compare_methods(results, "ConCH", competitor)
        print(
            f"ConCH vs {competitor:<10} mean gap {comparison.mean_gap:+.4f} "
            f"(wins {comparison.wins_a}-{comparison.wins_b}-{comparison.ties}, "
            f"p={comparison.p_value:.3f})"
        )
        assert comparison.mean_gap > -0.02

    # Shape 3: the panel's rankings are systematic, not noise.
    pivot = scores_by_contest(results)
    methods = list(_panel(dblp.name))
    matrix = np.array(
        [[pivot[c][m] for m in methods] for c in contests]
    )
    if matrix.shape[0] >= 3:
        statistic, p_value = friedman_test(matrix)
        ranks = dict(zip(methods, mean_ranks(matrix)))
        print(f"Friedman chi2 {statistic:.2f} (p={p_value:.4f}); mean ranks {ranks}")
