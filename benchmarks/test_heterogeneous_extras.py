"""X6 — relation-typed extras: RGCN and GTN vs ConCH.

The paper's §II motivates ConCH against two other ways of using relation
types that Table I does not include: *relation-typed convolution* (RGCN,
[5]-style) and *learned* meta-paths (GTN, [56]).  This bench runs both
under the Table-I protocol on DBLP, next to HGT (the strongest typed
baseline in the paper's own panel) as a reference point.

Expected shape:
- ConCH leads or ties the panel (its curated meta-paths + contexts beat
  both 1-hop typed convolution and learned soft meta-paths at this scale);
- GTN's learned relation selections put non-trivial mass on the
  paper/venue hops — the signal behind APCPA, which ConCH's Fig-6
  attention also selects.
"""

from __future__ import annotations

import pytest

import numpy as np

from benchmarks.conftest import GNN_EPOCHS, TRAIN_FRACTIONS, conch_config
from repro.baselines import make_method
from repro.baselines.base import TrainSettings
from repro.baselines.registry import conch_method
from repro.eval.harness import run_contest, summarize_results
from repro.eval.statistics import compare_methods, count_wins

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow


def _panel(dataset_name: str):
    settings = TrainSettings(epochs=GNN_EPOCHS, patience=40)
    return {
        "RGCN": make_method("RGCN", settings=settings),
        "RGCN-bases": make_method("RGCN", num_bases=2, settings=settings),
        "GTN": make_method("GTN", settings=settings),
        "HGT": make_method("HGT", settings=settings, num_layers=1),
        "ConCH": conch_method(base_config=conch_config(dataset_name)),
    }


def test_relation_typed_panel_dblp(benchmark, dblp):
    results = benchmark.pedantic(
        lambda: run_contest(
            _panel(dblp.name), dblp, train_fractions=TRAIN_FRACTIONS, seed=0
        ),
        rounds=1,
        iterations=1,
    )

    table = summarize_results(results, metric="micro_f1")
    contests = sorted(
        {r.contest_id for r in results},
        key=lambda c: int(c.split("@")[1].rstrip("%")),
    )
    print("\nRelation-typed panel — dblp — micro_f1")
    header = "method      | " + " | ".join(c.rjust(9) for c in contests)
    print(header)
    print("-" * len(header))
    for method in _panel(dblp.name):
        row = " | ".join(f"{table[method][c]:.4f}".rjust(9) for c in contests)
        print(f"{method:<11} | {row}")

    wins = count_wins(results, tie_tolerance=0.01)
    print(f"wins (±0.01 tie tolerance): {wins}")

    # Shape 1: ConCH's mean gap over every relation-typed competitor >= ~0.
    for competitor in ("RGCN", "RGCN-bases", "GTN", "HGT"):
        comparison = compare_methods(results, "ConCH", competitor)
        print(
            f"ConCH vs {competitor:<11} mean gap {comparison.mean_gap:+.4f} "
            f"(wins {comparison.wins_a}-{comparison.wins_b}-{comparison.ties})"
        )
        assert comparison.mean_gap > -0.02

    # Shape 2: basis sharing stays within a few points of the full RGCN
    # (it is a parameter-count device, not an accuracy device).
    shared_vs_full = compare_methods(results, "RGCN-bases", "RGCN")
    print(f"RGCN-bases vs RGCN mean gap {shared_vs_full.mean_gap:+.4f}")
    assert abs(shared_vs_full.mean_gap) < 0.15


def test_gtn_learns_venue_hops(dblp):
    """GTN's learned selections should use the graph, not collapse to I."""
    split_method = make_method(
        "GTN", settings=TrainSettings(epochs=GNN_EPOCHS, patience=40)
    )
    from repro.data.splits import stratified_split

    split = stratified_split(dblp.labels, 0.2, seed=0)
    out = split_method(dblp, split, 0)
    weights = out.extras["relation_weights"]
    print("\nGTN learned relation selections (channel x hop):")
    graph_mass = []
    for channel_index, hops in enumerate(weights):
        for hop_index, selection in enumerate(hops):
            top = sorted(selection.items(), key=lambda kv: -kv[1])[:3]
            rendered = ", ".join(f"{name}={value:.2f}" for name, value in top)
            print(f"  channel {channel_index} hop {hop_index}: {rendered}")
            graph_mass.append(1.0 - selection["I"])
    # At least one hop must put meaningful mass on real relations.
    assert max(graph_mass) > 0.2
