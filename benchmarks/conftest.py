"""Shared fixtures and method panels for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures on the
synthetic datasets and prints the analogue next to the paper's expected
*shape* (who wins, where the gaps are).  Timing goes through
pytest-benchmark (one round per experiment — these are experiments, not
microbenchmarks; the microbenchmarks live in test_substrate_micro.py).

Environment knobs:

- ``REPRO_BENCH_FAST=1`` — restrict the train-fraction grid to {2%, 20%}
  and shrink training budgets, for a quick smoke of every bench.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.baselines import make_method
from repro.baselines.base import TrainSettings
from repro.baselines.registry import conch_method
from repro.core import ConCHConfig
from repro.data import load_dataset
from repro.data.registry import dataset_hyperparams

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

TRAIN_FRACTIONS = (0.02, 0.20) if FAST else (0.02, 0.05, 0.10, 0.20)
GNN_EPOCHS = 60 if FAST else 120
CONCH_EPOCHS = 100 if FAST else 200


def conch_config(dataset_name: str, **overrides) -> ConCHConfig:
    """Paper per-dataset hyper-parameters (§V-C) at reproduction scale."""
    params = dataset_hyperparams(dataset_name)
    base = dict(
        k=params.k,
        num_layers=params.num_layers,
        context_dim=params.context_dim,
        hidden_dim=64,
        out_dim=64,
        lambda_ss=params.lambda_ss,
        epochs=CONCH_EPOCHS,
        patience=60,
        embed_num_walks=6,
        embed_walk_length=30,
        embed_window=4,
        embed_epochs=3,
    )
    base.update(overrides)
    return ConCHConfig(**base)


def method_panel(dataset_name: str) -> Dict[str, object]:
    """The Table-I method panel with scale-appropriate budgets."""
    settings = TrainSettings(epochs=GNN_EPOCHS, patience=40)
    att_settings = TrainSettings(epochs=GNN_EPOCHS, patience=40)
    return {
        "node2vec": make_method("node2vec", num_walks=3, walk_length=15),
        "mp2vec": make_method("mp2vec", num_walks=3, walk_length=15),
        "GCN": make_method("GCN", settings=settings),
        "GAT": make_method("GAT", settings=att_settings, num_heads=2),
        "MVGRL": make_method("MVGRL", epochs=60),
        "HAN": make_method("HAN", settings=att_settings, num_heads=2),
        "HetGNN": make_method("HetGNN", epochs=60),
        "MAGNN": make_method("MAGNN", settings=att_settings, per_node_cap=32),
        "HGT": make_method("HGT", settings=settings, num_layers=1),
        "HDGI": make_method("HDGI", epochs=60),
        "HGCN": make_method("HGCN", settings=settings),
        "GNetMine": make_method("GNetMine"),
        "LabelProp": make_method("LabelProp"),
        "ConCH": conch_method(base_config=conch_config(dataset_name)),
    }


@pytest.fixture(scope="session")
def dblp():
    return load_dataset("dblp")


@pytest.fixture(scope="session")
def yelp():
    return load_dataset("yelp")


@pytest.fixture(scope="session")
def freebase():
    return load_dataset("freebase")


@pytest.fixture(scope="session")
def aminer():
    return load_dataset("aminer")
