"""Table II / Figure 8: the AMiner scalability study.

Paper: a large dblp-4area extract from AMiner (paper classification,
meta-paths {PAP, PCP}).  ConCH wins every contest; MVGRL and MAGNN run
out of memory; ConCH also converges fastest (Fig. 8).

The synthetic AMiner here is larger than the other datasets (2k papers by
default); MVGRL's dense diffusion guard and MAGNN's instance budget
reproduce the paper's OOM failures at this scale.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import GNN_EPOCHS, TRAIN_FRACTIONS, conch_config
from repro.baselines import make_method
from repro.baselines.base import TrainSettings
from repro.baselines.registry import conch_method
from repro.data import stratified_split
from repro.eval import format_contest_table, run_contest, summarize_results

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow


def _aminer_panel():
    settings = TrainSettings(epochs=GNN_EPOCHS, patience=40)
    return {
        "node2vec": make_method("node2vec", num_walks=2, walk_length=15),
        "mp2vec": make_method("mp2vec", num_walks=2, walk_length=15),
        "GCN": make_method("GCN", settings=settings),
        "GAT": make_method("GAT", settings=settings, num_heads=2),
        "MVGRL": make_method("MVGRL", max_nodes=1500),   # expected OOM
        "HAN": make_method("HAN", settings=settings, num_heads=2),
        "HetGNN": make_method("HetGNN", epochs=40),
        "MAGNN": make_method(
            "MAGNN", settings=settings, per_node_cap=64, instance_budget=100_000
        ),                                               # expected OOM
        "HGT": make_method("HGT", settings=settings, num_layers=1),
        "HDGI": make_method("HDGI", epochs=40),
        "HGCN": make_method("HGCN", settings=settings),
        "ConCH": conch_method(base_config=conch_config("aminer")),
    }


def test_table2_aminer(benchmark, aminer):
    fractions = TRAIN_FRACTIONS[:2] if len(TRAIN_FRACTIONS) == 2 else (0.02, 0.20)

    def run():
        results = []
        failures = {}
        for name, method in _aminer_panel().items():
            try:
                results.extend(
                    run_contest({name: method}, aminer, train_fractions=fractions)
                )
            except MemoryError as error:
                failures[name] = str(error)
        return results, failures

    results, failures = benchmark.pedantic(run, rounds=1, iterations=1)
    contests = sorted(
        {r.contest_id for r in results},
        key=lambda c: int(c.split("@")[1].rstrip("%")),
    )
    table = summarize_results(results, metric="micro_f1")
    print()
    print(
        format_contest_table(
            table,
            methods=[m for m in _aminer_panel() if m in table],
            contests=contests,
            title="Table II analogue — aminer — micro_f1",
        )
    )
    for name, reason in failures.items():
        print(f"  {name}: OOM — {reason[:80]}")

    # Paper shape: MVGRL and MAGNN fail at this scale.
    assert "MVGRL" in failures, "MVGRL should OOM on the AMiner-scale dataset"
    assert "MAGNN" in failures, "MAGNN should OOM on the AMiner-scale dataset"
    conch = [r.micro_f1 for r in results if r.method == "ConCH"]
    assert min(conch) > 1.5 / aminer.num_classes


def test_fig8_aminer_convergence(benchmark, aminer):
    """Fig. 8: convergence on AMiner for ConCH / HAN / HGT / HGCN."""
    settings = TrainSettings(epochs=GNN_EPOCHS, patience=10_000)
    split = stratified_split(aminer.labels, 0.20, seed=0)
    panel = {
        "HGCN": make_method("HGCN", settings=settings),
        "HGT": make_method("HGT", settings=settings, num_layers=1),
        "HAN": make_method("HAN", settings=settings, num_heads=2),
        "ConCH": conch_method(
            base_config=conch_config("aminer", epochs=GNN_EPOCHS, patience=10_000)
        ),
    }

    def run():
        return {
            name: method(aminer, split, 0).recorder
            for name, method in panel.items()
        }

    traces = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFig. 8 analogue — aminer — convergence at 20% train")
    for name, recorder in traces.items():
        print(
            f"{name:<8} total {recorder.total_seconds:>7.1f}s "
            f"best val {recorder.best_val:.4f}"
        )
    assert traces["ConCH"].best_val > 0.5
