"""Emit `BENCH_substrate.json` + `BENCH_serving.json`: the perf trajectory.

A standalone runner (not a pytest bench) that times the canonical paths
and writes machine-readable JSON files future PRs can diff.

``BENCH_substrate.json``:

- ``prepare_cold`` / ``prepare_warm`` / ``prepare_disk_warm`` — the
  three `prepare_conch_data` scenarios (full composition; memoized
  engine; cold memory over a warm `ProductStore`, i.e. the
  second-process case).
- ``context_kernel_cold`` / ``context_kernel_warm`` — the batched
  frontier-expansion kernel on the longest DBLP meta-path.
- ``pipeline_cold`` / ``pipeline_resumed`` — a staged
  `repro.api.Pipeline` prep against an empty store vs. the same store
  warm (all artifacts load, zero products composed).

``BENCH_serving.json`` (the `repro.serve` subsystem):

- ``cold_start_cold_store`` / ``cold_start_warm_store`` — opening a
  serving `ModelHandle` over a bundle with no sidecars (build + map)
  vs. existing sidecars (map only) — the worker cold-start story.
- ``single_request_latency`` — sequential per-node `predict_nodes`
  through the handle.
- ``server_concurrency_<n>`` — micro-batched throughput with ``n``
  concurrent client threads hammering a `ModelServer`, plus observed
  batch shape and latency quantiles.
- ``http_single_request_latency`` / ``http_concurrency_<n>`` (merged
  via ``--only http``) — the same shapes measured **over the wire**
  through the stdlib HTTP facade (`repro.serve.HttpServer` +
  `HttpServeClient`), with adaptive micro-batching and the hot-query
  cache on: request → JSON → socket → scheduler → JSON → response.
  Latency quantiles here are client-side (full round trip).
- ``obs_overhead_off`` / ``obs_overhead_on`` (merged via ``--only
  obs``) — `ModelServer` hammer throughput with the `repro.obs` span
  tracer disabled vs enabled (hot cache off, so every request pays the
  full scheduler + telemetry path); the ``_on`` entry carries
  ``overhead_pct``, the throughput cost of turning tracing on.

``analysis_full_tree`` (merged into ``BENCH_substrate.json``): the
wall-clock of one full ``repro.analysis`` run over ``src``, ``tests``,
``benchmarks``, and ``examples`` — the cost the tier-1 gate test adds
to every CI run, tracked so checker growth stays cheap.

``streaming_ingest_<n>`` (merged into ``BENCH_substrate.json``): the
delta-ingest substrate — ``Pipeline.ingest`` absorbing an ``n``-edge
batch (1/10/100) into live artifacts versus the cold rebuild a restart
pays (load the edited graph, retrain metapath2vec, full prepare).  Runs
on a larger DBLP fixture than the other substrate benches: row-scoped
invalidation is a locality story, and a 100-edge batch on a few hundred
nodes dirties everything.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py [--out BENCH_substrate.json]
        [--serving-out BENCH_serving.json]
        [--only substrate|serving|analysis|streaming|http|obs]
        [--rounds 3] [--authors 200 --papers 700 --conferences 12]

The numbers are wall-clock seconds on whatever machine runs this —
the JSON carries enough metadata (library versions, dataset size,
rounds) for a future reader to compare like with like.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np
import scipy


def _time_rounds(fn, rounds: int):
    seconds = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        seconds.append(time.perf_counter() - started)
    return seconds


def _summary(seconds):
    return {
        "seconds_mean": statistics.fmean(seconds),
        "seconds_min": min(seconds),
        "seconds_max": max(seconds),
        "rounds": len(seconds),
    }


def run_benches(authors: int, papers: int, conferences: int, rounds: int):
    from repro.api import Pipeline
    from repro.core import ConCHConfig
    from repro.core.trainer import prepare_conch_data
    from repro.data import DBLPConfig, load_dataset
    from repro.embedding.metapath2vec import metapath2vec_embeddings
    from repro.hin.context import enumerate_contexts
    from repro.hin.engine import get_engine
    from repro.hin.neighbors import NeighborFilter

    dataset = load_dataset(
        "dblp",
        config=DBLPConfig(
            num_authors=authors, num_papers=papers, num_conferences=conferences
        ),
    )
    config = ConCHConfig(
        k=5, context_dim=16, embed_num_walks=2, embed_walk_length=10,
        embed_epochs=1, max_instances=8,
    )
    # Precomputed embeddings isolate the substrate (filtering, retained
    # pairs, enumeration, feature assembly) from skip-gram training.
    embeddings = metapath2vec_embeddings(
        dataset.hin, dataset.metapaths, dim=config.context_dim,
        num_walks=2, walk_length=10, epochs=1, seed=0,
    )
    engine = get_engine(dataset.hin)
    results = {}

    # ---- prepare: cold / warm / disk-warm --------------------------- #
    def prepare_cold():
        engine.invalidate()
        prepare_conch_data(dataset, config, embeddings=embeddings)

    results["prepare_cold"] = _summary(_time_rounds(prepare_cold, rounds))

    prepare_conch_data(dataset, config, embeddings=embeddings)  # warm it
    results["prepare_warm"] = _summary(
        _time_rounds(
            lambda: prepare_conch_data(dataset, config, embeddings=embeddings),
            rounds,
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        disk_config = config.with_overrides(cache_dir=str(Path(tmp) / "store"))
        engine.invalidate()
        prepare_conch_data(dataset, disk_config, embeddings=embeddings)  # warm disk

        def prepare_disk_warm():
            engine.invalidate()  # cold memory, warm store
            prepare_conch_data(dataset, disk_config, embeddings=embeddings)

        results["prepare_disk_warm"] = _summary(
            _time_rounds(prepare_disk_warm, rounds)
        )
        engine.set_cache_dir(None)

    # ---- context kernel: cold / warm -------------------------------- #
    metapath = max(dataset.metapaths, key=lambda m: len(m.node_types))
    engine.invalidate()
    pairs = NeighborFilter(k=config.k).retained_pairs(dataset.hin, metapath)

    def kernel_cold():
        engine.invalidate()
        enumerate_contexts(
            dataset.hin, metapath, pairs, max_instances=config.max_instances
        )

    results["context_kernel_cold"] = _summary(_time_rounds(kernel_cold, rounds))
    results["context_kernel_warm"] = _summary(
        _time_rounds(
            lambda: enumerate_contexts(
                dataset.hin, metapath, pairs,
                max_instances=config.max_instances,
            ),
            rounds,
        )
    )

    # ---- staged pipeline: cold store vs. resumed -------------------- #
    cold_seconds, resumed_seconds, resumed_composed = [], [], []
    for _ in range(rounds):
        with tempfile.TemporaryDirectory() as tmp:
            engine.invalidate()
            started = time.perf_counter()
            Pipeline(dataset, config=config, store_dir=tmp).prepare()
            cold_seconds.append(time.perf_counter() - started)
            engine.invalidate()  # fresh-process simulation
            started = time.perf_counter()
            Pipeline(dataset, config=config, store_dir=tmp).prepare()
            resumed_seconds.append(time.perf_counter() - started)
            resumed_composed.append(len(engine.compose_log))
            engine.set_cache_dir(None)
    results["pipeline_cold"] = _summary(cold_seconds)
    results["pipeline_resumed"] = _summary(resumed_seconds)
    results["pipeline_resumed"]["products_composed"] = max(resumed_composed)

    meta = {
        "bench": "substrate",
        "generated_unix": time.time(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "dataset": {
            "name": "dblp-synthetic",
            "authors": authors,
            "papers": papers,
            "conferences": conferences,
        },
        "config": {
            "k": config.k, "context_dim": config.context_dim,
            "max_instances": config.max_instances,
        },
        "rounds": rounds,
    }
    return {"meta": meta, "results": results}


def run_serving_benches(
    authors: int,
    papers: int,
    conferences: int,
    rounds: int,
    concurrency_levels=(1, 4, 16),
    requests_per_level: int = 200,
):
    """Time the `repro.serve` subsystem; returns the BENCH_serving payload."""
    import shutil
    import threading

    from repro.api import ConCHEstimator, ModelHandle, Pipeline
    from repro.core import ConCHConfig
    from repro.data import DBLPConfig, load_dataset, stratified_split
    from repro.serve import ModelServer, ServeClient

    dataset = load_dataset(
        "dblp",
        config=DBLPConfig(
            num_authors=authors, num_papers=papers, num_conferences=conferences
        ),
    )
    config = ConCHConfig(
        k=5, context_dim=16, embed_num_walks=2, embed_walk_length=10,
        embed_epochs=1, max_instances=8, epochs=10, patience=5,
    )
    split = stratified_split(dataset.labels, 0.10, seed=0)
    estimator = ConCHEstimator(
        Pipeline(dataset, config=config).data, config
    ).fit(split)
    results = {}
    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "conch.npz"
        estimator.save(bundle)
        sidecar_dir = bundle.with_name(bundle.name + ".mmap")

        # ---- cold start: cold store (build sidecars) vs. warm ------- #
        def cold_store_load():
            shutil.rmtree(sidecar_dir, ignore_errors=True)
            ModelHandle.load(bundle)

        results["cold_start_cold_store"] = _summary(
            _time_rounds(cold_store_load, rounds)
        )
        ModelHandle.load(bundle)  # leave the sidecars warm
        results["cold_start_warm_store"] = _summary(
            _time_rounds(lambda: ModelHandle.load(bundle), rounds)
        )

        # ---- single-request latency (sequential, no server) --------- #
        handle = ModelHandle.load(bundle)
        rng = np.random.default_rng(0)
        single_ids = rng.integers(0, handle.num_objects, size=64)

        def single_requests():
            for node in single_ids:
                handle.predict_nodes(np.array([node]))

        seconds = _time_rounds(single_requests, rounds)
        entry = _summary(seconds)
        entry["per_request_mean"] = entry["seconds_mean"] / single_ids.size
        results["single_request_latency"] = entry

        # ---- batched throughput at several concurrency levels ------- #
        request_ids = [
            rng.integers(0, handle.num_objects, size=1 + index % 4)
            for index in range(requests_per_level)
        ]
        for concurrency in concurrency_levels:
            with ModelServer(
                handle, max_batch_size=64, max_wait_ms=2,
                num_workers=min(2, concurrency), max_queue=1024,
            ) as server:
                client = ServeClient(server)

                def hammer(start: int) -> None:
                    for index in range(start, len(request_ids), concurrency):
                        client.predict_nodes(request_ids[index])

                started = time.perf_counter()
                threads = [
                    threading.Thread(target=hammer, args=(start,))
                    for start in range(concurrency)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - started
                stats = server.stats()
            results[f"server_concurrency_{concurrency}"] = {
                "seconds_total": elapsed,
                "requests": len(request_ids),
                "throughput_rps": len(request_ids) / elapsed,
                "batches": stats["batches"],
                "batch_size_mean": stats.get("batch_size_mean", 1.0),
                "latency_p50": stats["latency_seconds"]["p50"],
                "latency_p95": stats["latency_seconds"]["p95"],
            }
    meta = {
        "bench": "serving",
        "generated_unix": time.time(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "dataset": {
            "name": "dblp-synthetic",
            "authors": authors,
            "papers": papers,
            "conferences": conferences,
        },
        "rounds": rounds,
        "requests_per_level": requests_per_level,
    }
    return {"meta": meta, "results": results}


def run_http_benches(
    authors: int,
    papers: int,
    conferences: int,
    rounds: int,
    concurrency_levels=(1, 4, 16),
    requests_per_level: int = 200,
):
    """Time the HTTP tier end to end; merged into BENCH_serving.json.

    Every number includes the full wire cost (JSON encode, socket,
    threaded handler, JSON decode) on top of the scheduler, with the
    production posture on: ``adaptive_wait=True`` and a hot-query
    cache.  The single-request ids never repeat across rounds, so that
    entry stays a *miss* latency; the concurrency levels reuse one
    request mix per level, so their ``cache_hits`` column shows what
    the cache absorbs under repetition.
    """
    import threading

    from repro.api import ConCHEstimator, ModelHandle, Pipeline
    from repro.core import ConCHConfig
    from repro.data import DBLPConfig, load_dataset, stratified_split
    from repro.serve import HttpServeClient, HttpServer, ModelServer

    dataset = load_dataset(
        "dblp",
        config=DBLPConfig(
            num_authors=authors, num_papers=papers, num_conferences=conferences
        ),
    )
    config = ConCHConfig(
        k=5, context_dim=16, embed_num_walks=2, embed_walk_length=10,
        embed_epochs=1, max_instances=8, epochs=10, patience=5,
    )
    split = stratified_split(dataset.labels, 0.10, seed=0)
    estimator = ConCHEstimator(
        Pipeline(dataset, config=config).data, config
    ).fit(split)
    results = {}
    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "conch.npz"
        estimator.save(bundle)
        handle = ModelHandle.load(bundle)
        rng = np.random.default_rng(0)

        def make_server():
            return ModelServer(
                handle, max_batch_size=64, max_wait_ms=2, num_workers=2,
                max_queue=1024, adaptive_wait=True, hot_cache_size=512,
            )

        # ---- over-the-wire single-request latency (cache misses) ---- #
        per_round = 64
        fresh_ids = rng.choice(
            handle.num_objects, size=rounds * per_round, replace=False
        )
        with make_server() as server, HttpServer(server) as http:
            client = HttpServeClient(http.url)
            cursor = {"round": 0}

            def single_requests():
                start = cursor["round"] * per_round
                cursor["round"] += 1
                for node in fresh_ids[start : start + per_round]:
                    client.predict_nodes([int(node)])

            entry = _summary(_time_rounds(single_requests, rounds))
            entry["per_request_mean"] = entry["seconds_mean"] / per_round
            results["http_single_request_latency"] = entry

        # ---- over-the-wire throughput at 1 / 4 / 16 clients --------- #
        request_ids = [
            rng.integers(0, handle.num_objects, size=1 + index % 4)
            for index in range(requests_per_level)
        ]
        for concurrency in concurrency_levels:
            with make_server() as server, HttpServer(server) as http:
                client = HttpServeClient(http.url)
                latencies: list = []
                latencies_lock = threading.Lock()

                def hammer(start: int) -> None:
                    mine = []
                    for index in range(start, len(request_ids), concurrency):
                        began = time.perf_counter()
                        client.predict_nodes(request_ids[index])
                        mine.append(time.perf_counter() - began)
                    with latencies_lock:
                        latencies.extend(mine)

                started = time.perf_counter()
                threads = [
                    threading.Thread(target=hammer, args=(start,))
                    for start in range(concurrency)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - started
                stats = server.stats()
            wire = np.asarray(latencies, dtype=np.float64)
            results[f"http_concurrency_{concurrency}"] = {
                "seconds_total": elapsed,
                "requests": len(request_ids),
                "throughput_rps": len(request_ids) / elapsed,
                "batches": stats["batches"],
                "batch_size_mean": stats.get("batch_size_mean", 1.0),
                "cache_hits": stats["cache_hits"],
                # Client-side quantiles: the full over-the-wire round trip.
                "latency_p50": float(np.percentile(wire, 50)),
                "latency_p95": float(np.percentile(wire, 95)),
            }
    results["http_meta"] = {
        "transport": "stdlib http.server (threaded) + urllib client",
        "adaptive_wait": True,
        "hot_cache_size": 512,
        "requests_per_level": requests_per_level,
        "latency_vantage": "client-side round trip",
    }
    return results


def run_obs_benches(
    authors: int,
    papers: int,
    conferences: int,
    rounds: int,
    concurrency: int = 8,
    requests_total: int = 400,
):
    """Serving throughput with tracing off vs on; merged into BENCH_serving.json.

    Same hammer-thread shape as ``server_concurrency_<n>`` but with the
    hot-query cache off, so every request pays the full scheduler path —
    the worst case for per-request telemetry.  The ``_on`` entry runs
    with the global tracer enabled (spans recorded for submit, batch,
    forward, and the per-request phase breakdown); ``overhead_pct`` is
    the throughput cost of turning it on, which the tentpole promises
    stays within a few percent.
    """
    import threading

    from repro.api import ConCHEstimator, ModelHandle, Pipeline
    from repro.core import ConCHConfig
    from repro.data import DBLPConfig, load_dataset, stratified_split
    from repro.obs import TRACER
    from repro.serve import ModelServer, ServeClient

    dataset = load_dataset(
        "dblp",
        config=DBLPConfig(
            num_authors=authors, num_papers=papers, num_conferences=conferences
        ),
    )
    config = ConCHConfig(
        k=5, context_dim=16, embed_num_walks=2, embed_walk_length=10,
        embed_epochs=1, max_instances=8, epochs=10, patience=5,
    )
    split = stratified_split(dataset.labels, 0.10, seed=0)
    estimator = ConCHEstimator(
        Pipeline(dataset, config=config).data, config
    ).fit(split)
    results = {}
    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "conch.npz"
        estimator.save(bundle)
        handle = ModelHandle.load(bundle)
        rng = np.random.default_rng(0)
        request_ids = [
            rng.integers(0, handle.num_objects, size=1 + index % 4)
            for index in range(requests_total)
        ]

        def one_pass(enable_tracing: bool):
            if enable_tracing:
                TRACER.enable()
            try:
                with ModelServer(
                    handle, max_batch_size=64, max_wait_ms=2,
                    num_workers=2, max_queue=1024, hot_cache_size=0,
                ) as server:
                    client = ServeClient(server)

                    def hammer(start: int) -> None:
                        for index in range(
                            start, len(request_ids), concurrency
                        ):
                            client.predict_nodes(request_ids[index])

                    started = time.perf_counter()
                    threads = [
                        threading.Thread(target=hammer, args=(start,))
                        for start in range(concurrency)
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    elapsed = time.perf_counter() - started
                    stats = server.stats()
            finally:
                TRACER.disable()
                TRACER.clear()
            return len(request_ids) / elapsed, stats

        # Warm the operators and allocator before timing, then
        # interleave off/on rounds so machine drift (a shared, noisy
        # box) hits both arms equally; best-of-rounds is the comparison
        # (noise only subtracts throughput, never adds it).
        one_pass(False)
        runs = {"off": [], "on": []}
        last_stats = {"off": {}, "on": {}}
        for _ in range(rounds):
            for label, enable in (("off", False), ("on", True)):
                rps, stats = one_pass(enable)
                runs[label].append(rps)
                last_stats[label] = stats

        for label, enable in (("off", False), ("on", True)):
            stats = last_stats[label]
            results[f"obs_overhead_{label}"] = {
                "throughput_rps": max(runs[label]),
                "throughput_rps_mean": statistics.fmean(runs[label]),
                "requests": requests_total,
                "concurrency": concurrency,
                "rounds": rounds,
                "tracing": enable,
                "batch_size_mean": stats.get("batch_size_mean", 1.0),
                "latency_p50": stats["latency_seconds"]["p50"],
                "latency_p95": stats["latency_seconds"]["p95"],
            }
    off_rps = results["obs_overhead_off"]["throughput_rps"]
    on_rps = results["obs_overhead_on"]["throughput_rps"]
    results["obs_overhead_on"]["overhead_pct"] = (
        (off_rps - on_rps) / off_rps * 100.0 if off_rps > 0 else 0.0
    )
    return results


def run_streaming_benches(
    rounds: int,
    authors: int = 5000,
    papers: int = 17500,
    conferences: int = 500,
    batch_sizes=(1, 10, 100),
):
    """Time delta ingest against the cold rebuild it replaces.

    The live path owns a prepared :class:`~repro.api.Pipeline` and pays
    only :meth:`~repro.api.Pipeline.ingest` (embeddings are retained —
    the documented live-serving contract).  The cold path is what a
    restart costs on the edited graph: load, train metapath2vec from
    scratch, full staged prepare.  Edit batches are shaped like real
    publication events (~4 authors per touched paper) rather than
    uniform scatter, which no streaming workload resembles.
    """
    import statistics as _stats

    from repro.api import Pipeline
    from repro.core import ConCHConfig
    from repro.data import DBLPConfig, load_dataset
    from repro.embedding.metapath2vec import metapath2vec_embeddings
    from repro.hin.engine import get_engine
    from repro.hin.graph import EdgeDelta

    embed_settings = dict(dim=16, num_walks=2, walk_length=10, epochs=1, seed=0)
    config = ConCHConfig(
        k=5, context_dim=16, embed_num_walks=2, embed_walk_length=10,
        embed_epochs=1, max_instances=8,
    )

    def fresh():
        return load_dataset(
            "dblp",
            config=DBLPConfig(
                num_authors=authors,
                num_papers=papers,
                num_conferences=conferences,
            ),
        )

    base = fresh()
    embeddings = metapath2vec_embeddings(
        base.hin, base.metapaths, **embed_settings
    )

    rng = np.random.default_rng(7)
    results = {}
    for batch in batch_sizes:
        ingest_seconds, cold_seconds = [], []
        patched_products = patched_views = patched_rows = 0
        for _ in range(rounds):
            touched = rng.choice(papers, size=max(1, batch // 4), replace=False)
            delta = EdgeDelta.additions(
                "writes",
                rng.integers(0, authors, size=batch),
                rng.choice(touched, size=batch),
            )

            live = fresh()
            engine = get_engine(live.hin)
            engine.invalidate()
            pipeline = Pipeline(live, config=config)
            pipeline.prepare(embeddings=embeddings)
            started = time.perf_counter()
            pipeline.ingest(delta)
            ingest_seconds.append(time.perf_counter() - started)
            stats = engine.stats()
            patched_products = stats["patched_products"]
            patched_views = stats["patched_views"]
            patched_rows = stats["patched_rows"]

            started = time.perf_counter()
            cold = fresh()
            cold.hin.apply_delta(delta)
            get_engine(cold.hin).invalidate()
            cold_embeddings = metapath2vec_embeddings(
                cold.hin, cold.metapaths, **embed_settings
            )
            Pipeline(cold, config=config).prepare(embeddings=cold_embeddings)
            cold_seconds.append(time.perf_counter() - started)

        entry = _summary(ingest_seconds)
        entry["cold_rebuild_seconds_mean"] = _stats.fmean(cold_seconds)
        entry["cold_rebuild_seconds_min"] = min(cold_seconds)
        entry["speedup_vs_cold"] = (
            entry["cold_rebuild_seconds_mean"] / entry["seconds_mean"]
        )
        entry["edges_per_batch"] = batch
        entry["patched_products"] = patched_products
        entry["patched_views"] = patched_views
        entry["patched_rows"] = patched_rows
        results[f"streaming_ingest_{batch}"] = entry

    results["streaming_meta"] = {
        "dataset": {
            "name": "dblp-synthetic",
            "authors": authors,
            "papers": papers,
            "conferences": conferences,
        },
        "rounds": rounds,
        "edit_shape": "~4 authors per touched paper",
        "cold_rebuild": "load + metapath2vec + full prepare",
    }
    return results


def run_analysis_bench(rounds: int):
    """Time the static-analysis gate over the repo's own gated trees."""
    import tempfile

    from repro.analysis import AnalysisCache, analyze_paths, default_rules

    repo_root = Path(__file__).resolve().parent.parent
    paths = [
        repo_root / name
        for name in ("src", "tests", "benchmarks", "examples")
        if (repo_root / name).is_dir()
    ]
    rules = default_rules()
    probe = analyze_paths(paths, rules=rules)
    results = {
        "analysis_full_tree": {
            **_summary(
                _time_rounds(lambda: analyze_paths(paths, rules=rules), rounds)
            ),
            "files_scanned": probe.files_scanned,
            "findings": len(probe.findings),
        }
    }
    for rule in rules:
        results[f"analysis_rule_{rule.rule_id}"] = _summary(
            _time_rounds(lambda: analyze_paths(paths, rules=[rule]), rounds)
        )

    # Content-hash cache: cold pays parsing + per-file rules +
    # call-graph summarization for every file; warm re-loads cached
    # findings/summaries and recomputes only the project-wide rules.
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = Path(tmp) / "analysis-cache.json"

        def cold_run():
            cache_path.unlink(missing_ok=True)
            analyze_paths(paths, rules=rules, cache=AnalysisCache(cache_path))

        results["analysis_cache_cold"] = _summary(
            _time_rounds(cold_run, rounds)
        )
        cold_run()  # leave a populated cache for the warm rounds

        def warm_run():
            analyze_paths(paths, rules=rules, cache=AnalysisCache(cache_path))

        warm = _summary(_time_rounds(warm_run, rounds))
        probe_cache = AnalysisCache(cache_path)
        analyze_paths(paths, rules=rules, cache=probe_cache)
        warm["hits"] = probe_cache.hits
        warm["misses"] = probe_cache.misses
        warm["speedup_vs_cold"] = (
            results["analysis_cache_cold"]["seconds_mean"]
            / max(warm["seconds_mean"], 1e-9)
        )
        results["analysis_cache_warm"] = warm
    return results


def _print_results(payload) -> None:
    for name, entry in sorted(payload["results"].items()):
        if "seconds_mean" in entry:
            print(
                f"  {name:<24} mean {entry['seconds_mean'] * 1000:8.1f} ms  "
                f"min {entry['seconds_min'] * 1000:8.1f} ms"
            )
        elif "throughput_rps" in entry:
            print(
                f"  {name:<24} {entry['throughput_rps']:8.0f} req/s  "
                f"batch mean {entry['batch_size_mean']:5.1f}  "
                f"p95 {entry['latency_p95'] * 1000:6.2f} ms"
            )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_substrate.json",
        help="substrate JSON path (default: ./BENCH_substrate.json)",
    )
    parser.add_argument(
        "--serving-out", default="BENCH_serving.json",
        help="serving JSON path (default: ./BENCH_serving.json)",
    )
    parser.add_argument(
        "--only",
        choices=("substrate", "serving", "analysis", "streaming", "http", "obs"),
        default=None,
        help="run just one bench family (default: all)",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--authors", type=int, default=200)
    parser.add_argument("--papers", type=int, default=700)
    parser.add_argument("--conferences", type=int, default=12)
    args = parser.parse_args()

    if args.only in (None, "substrate"):
        payload = run_benches(
            args.authors, args.papers, args.conferences, args.rounds
        )
        out = Path(args.out)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
        _print_results(payload)
    if args.only in (None, "serving"):
        payload = run_serving_benches(
            args.authors, args.papers, args.conferences, args.rounds
        )
        out = Path(args.serving_out)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
        _print_results(payload)
    for family, runner, outname in (
        ("analysis", lambda: run_analysis_bench(args.rounds), args.out),
        ("streaming", lambda: run_streaming_benches(args.rounds), args.out),
        (
            "http",
            lambda: run_http_benches(
                args.authors, args.papers, args.conferences, args.rounds
            ),
            args.serving_out,
        ),
        (
            "obs",
            lambda: run_obs_benches(
                args.authors, args.papers, args.conferences, args.rounds
            ),
            args.serving_out,
        ),
    ):
        if args.only not in (None, family):
            continue
        # Merged into an existing file: analysis/streaming ride the
        # substrate trajectory, the HTTP tier rides the serving one.
        out = Path(outname)
        if out.exists():
            payload = json.loads(out.read_text())
        else:
            payload = {
                "meta": {
                    "python": platform.python_version(),
                    "numpy": np.__version__,
                    "scipy": scipy.__version__,
                    "rounds": args.rounds,
                },
                "results": {},
            }
        payload["results"].update(runner())
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out} ({family})")
        _print_results({"results": {
            name: entry
            for name, entry in payload["results"].items()
            if name.startswith(f"{family}_") and isinstance(entry, dict)
        }})
        if family == "streaming":
            for name, entry in sorted(payload["results"].items()):
                if name.startswith("streaming_ingest_"):
                    print(
                        f"  {name:<24} speedup vs cold rebuild "
                        f"{entry['speedup_vs_cold']:.1f}x"
                    )


if __name__ == "__main__":
    main()
