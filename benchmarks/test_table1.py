"""Table I: the full classification contest.

Paper: 12 methods × {DBLP, Yelp, Freebase} × {2, 5, 10, 20}% × {Micro-F1,
Macro-F1}; ConCH wins all 24 contests, with the widest margins at 2%.

Known divergences reproduced on purpose:
- MAGNN runs out of memory on Yelp (instance blow-up) — shown as ``OOM``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TRAIN_FRACTIONS, method_panel
from repro.eval import format_contest_table, run_contest, summarize_results

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow


def _run_dataset_contest(dataset):
    methods = method_panel(dataset.name)
    results = []
    failures = {}
    for name, method in methods.items():
        try:
            results.extend(
                run_contest(
                    {name: method},
                    dataset,
                    train_fractions=TRAIN_FRACTIONS,
                    repeats=1,
                )
            )
        except MemoryError as error:
            failures[name] = f"OOM ({error})"
    return results, failures, list(methods)


def _report(dataset, results, failures, method_names):
    contests = sorted(
        {r.contest_id for r in results},
        key=lambda c: int(c.split("@")[1].rstrip("%")),
    )
    for metric in ("micro_f1", "macro_f1"):
        table = summarize_results(results, metric=metric)
        print()
        print(
            format_contest_table(
                table,
                methods=[m for m in method_names if m in table],
                contests=contests,
                title=f"Table I analogue — {dataset.name} — {metric}",
            )
        )
    for name, reason in failures.items():
        print(f"  {name}: {reason}")
    conch = {r.contest_id: r.micro_f1 for r in results if r.method == "ConCH"}
    best_other = {
        contest: max(
            r.micro_f1 for r in results
            if r.method != "ConCH" and r.contest_id == contest
        )
        for contest in contests
    }
    wins = sum(conch[c] >= best_other[c] for c in contests)
    print(f"\nConCH wins {wins}/{len(contests)} contests (paper: all).")


@pytest.mark.parametrize("dataset_name", ["dblp", "yelp", "freebase"])
def test_table1(benchmark, dataset_name, request):
    dataset = request.getfixturevalue(dataset_name)

    def run():
        return _run_dataset_contest(dataset)

    results, failures, names = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(dataset, results, failures, names)
    assert results, "contest produced no results"
    # Sanity: ConCH ran everywhere and is competitive (>= chance by far).
    conch_scores = [r.micro_f1 for r in results if r.method == "ConCH"]
    assert len(conch_scores) == len(TRAIN_FRACTIONS)
    assert min(conch_scores) > 1.5 / dataset.num_classes
