"""Extra ablation: the neighbor filter's ranking function.

The paper fixes PathSim (Eq. 1) as the ranking function of the top-k
filter and ablates only ranked-vs-random (``ConCH_rd``).  This bench
widens the comparison to the other standard HIN similarity measures
(HeteSim, JoinSim, cosine) — the claim under test is that *ranked
filtering of any sensible kind* beats random selection, i.e. the win of
ConCH over ConCH_rd is not an artifact of PathSim specifically.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from benchmarks.conftest import TRAIN_FRACTIONS, conch_config
from repro.baselines.registry import conch_method
from repro.data import stratified_split
from repro.eval.harness import run_method_on_split
from repro.hin.similarity import SIMILARITY_MEASURES, measure_agreement

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow

STRATEGIES = list(SIMILARITY_MEASURES) + ["random"]


def _run_panel(dataset) -> Dict[str, Dict[float, float]]:
    scores: Dict[str, Dict[float, float]] = {s: {} for s in STRATEGIES}
    for fraction in TRAIN_FRACTIONS:
        split = stratified_split(dataset.labels, fraction, seed=0)
        for strategy in STRATEGIES:
            method = conch_method(
                base_config=conch_config(dataset.name, neighbor_strategy=strategy)
            )
            outcome = run_method_on_split(method, dataset, split, seed=0)
            scores[strategy][fraction] = outcome["micro_f1"]
    return scores


def test_filtering_similarity_ablation(benchmark, dblp):
    scores = benchmark.pedantic(lambda: _run_panel(dblp), rounds=1, iterations=1)

    print("\nFiltering-measure ablation — dblp — micro_f1")
    header = "strategy  | " + " | ".join(
        f"@{int(f * 100)}%".rjust(6) for f in TRAIN_FRACTIONS
    )
    print(header)
    print("-" * len(header))
    for strategy in STRATEGIES:
        row = " | ".join(
            f"{scores[strategy][f]:.4f}" for f in TRAIN_FRACTIONS
        )
        print(f"{strategy:<9} | {row}")

    # Shape check: every *ranked* measure beats random on average.
    random_mean = np.mean(list(scores["random"].values()))
    for measure in SIMILARITY_MEASURES:
        ranked_mean = np.mean(list(scores[measure].values()))
        print(f"{measure:<9} mean {ranked_mean:.4f} vs random {random_mean:.4f}")
        assert ranked_mean > random_mean - 0.02, (
            f"{measure} filtering should not trail random selection"
        )


def test_measure_overlap_diagnostic(benchmark, dblp):
    """How different are the selected neighbor sets, per measure pair?"""

    def compute():
        metapath = dblp.metapaths[-1]  # APCPA, the informative one
        k = conch_config(dblp.name).k
        rows = {}
        for other in ("hetesim", "joinsim", "cosine"):
            rows[other] = measure_agreement(dblp.hin, metapath, "pathsim", other, k)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\nTop-k set agreement with PathSim (Jaccard, APCPA)")
    for measure, agreement in rows.items():
        print(f"  pathsim vs {measure:<8} {agreement:.3f}")
        assert 0.0 <= agreement <= 1.0
