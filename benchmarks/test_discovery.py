"""Meta-path discovery bench: hand-written vs automatically selected sets.

The paper takes the meta-path set as given input.  Its §IV-A motivation
("meta-paths obtained via automatic methods") raises the natural question
this bench answers: if the meta-path set is *discovered* from the schema
and the training labels (``repro.hin.discovery``), does ConCH retain its
accuracy?  Expected shape: the discovered set performs within a small gap
of the curated set, because discovery ranks by exactly the homophily
signal the curated sets were chosen for.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

import pytest

from benchmarks.conftest import conch_config
from repro.baselines.registry import conch_method
from repro.data import stratified_split
from repro.data.base import HINDataset
from repro.eval.harness import run_method_on_split
from repro.hin.discovery import select_metapaths

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow

FRACTION = 0.20


def _discovered_dataset(dataset, split) -> HINDataset:
    selected = select_metapaths(
        dataset.hin,
        dataset.target_type,
        dataset.labels,
        train_idx=split.train,     # semi-supervised: train labels only
        max_length=4,
        limit=3,
        min_coverage=0.05,
    )
    return HINDataset(
        name=f"{dataset.name}-discovered",
        hin=dataset.hin,
        target_type=dataset.target_type,
        metapaths=[entry.metapath for entry in selected],
        class_names=dataset.class_names,
    ).validate()


@pytest.mark.parametrize("dataset_name", ["dblp", "freebase"])
def test_discovered_vs_curated_metapaths(benchmark, dataset_name, request):
    dataset = request.getfixturevalue(dataset_name)

    def run() -> Dict[str, object]:
        split = stratified_split(dataset.labels, FRACTION, seed=0)
        discovered = _discovered_dataset(dataset, split)
        config = conch_config(dataset.name)
        curated_score = run_method_on_split(
            conch_method(base_config=config), dataset, split, seed=0
        )["micro_f1"]
        discovered_score = run_method_on_split(
            conch_method(base_config=config), discovered, split, seed=0
        )["micro_f1"]
        return {
            "curated": curated_score,
            "discovered": discovered_score,
            "curated_paths": [m.name for m in dataset.metapaths],
            "discovered_paths": [m.name for m in discovered.metapaths],
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nDiscovery bench — {dataset.name} @ {int(FRACTION * 100)}%")
    print(f"  curated    {result['curated_paths']}  micro-F1 {result['curated']:.4f}")
    print(
        f"  discovered {result['discovered_paths']}  "
        f"micro-F1 {result['discovered']:.4f}"
    )

    # Shape: automatic selection stays competitive with the curated set.
    assert result["discovered"] > result["curated"] - 0.08, (
        "discovered meta-path set should be competitive with the curated one"
    )
