"""Extension study: robustness to training-label noise.

Not in the paper, but probes a natural conjecture from its central claim:
does the self-supervised term ``λ·L_ss``, which rescues ConCH when labels
are *scarce* (§V-E, ConCH_su ablation), also soften the damage when
labels are *wrong*?  We flip a fraction of the training labels uniformly
and compare full multi-task ConCH against supervised-only ``ConCH_su``.

Measured answer (recorded in EXPERIMENTS.md): **no** — at moderate noise
both variants degrade gracefully and comparably, and at heavy noise
(40%) the multi-task model can degrade *more*.  ``L_ss`` regularizes
embeddings toward graph structure, not toward label correctness, so it
does not counteract wrong labels the way it compensates for missing
ones.  The assertions below check only the robust shapes: high clean
accuracy, graceful degradation at moderate noise, and overall monotone
damage.
"""

from __future__ import annotations

import os
from typing import Dict, List

import numpy as np
import pytest

from benchmarks.conftest import conch_config
from repro.core import ConCHTrainer, prepare_conch_data
from repro.core.variants import variant_config
from repro.data import corrupt_labels, stratified_split
from repro.eval.metrics import micro_f1

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"
NOISE_RATES = (0.0, 0.2, 0.4) if FAST else (0.0, 0.1, 0.2, 0.3, 0.4)
FRACTION = 0.20


def _run_noise_sweep(dataset) -> Dict[str, List[float]]:
    base = conch_config(dataset.name)
    split = stratified_split(dataset.labels, FRACTION, seed=0)
    data = prepare_conch_data(dataset, base)

    scores: Dict[str, List[float]] = {"ConCH": [], "ConCH_su": []}
    clean_labels = data.labels.copy()
    for noise in NOISE_RATES:
        noisy = corrupt_labels(
            clean_labels, split.train, noise, dataset.num_classes, seed=7
        )
        for name, config in [
            ("ConCH", base),
            ("ConCH_su", variant_config("su", base)),
        ]:
            data.labels = noisy
            trainer = ConCHTrainer(data, config).fit(split)
            predictions = trainer.predict(split.test)
            # Score against the *clean* test labels.
            scores[name].append(
                micro_f1(clean_labels[split.test], predictions)
            )
    data.labels = clean_labels
    return scores


def test_label_noise_robustness(benchmark, dblp):
    scores = benchmark.pedantic(
        lambda: _run_noise_sweep(dblp), rounds=1, iterations=1
    )

    print("\nLabel-noise robustness — dblp @ 20% train — micro_f1")
    header = "variant   | " + " | ".join(f"{n:>5.0%}" for n in NOISE_RATES)
    print(header)
    print("-" * len(header))
    for name, row in scores.items():
        print(f"{name:<9} | " + " | ".join(f"{s:.3f}" for s in row))

    conch = np.asarray(scores["ConCH"])
    supervised = np.asarray(scores["ConCH_su"])
    print(
        f"degradation at {NOISE_RATES[-1]:.0%} noise: "
        f"ConCH {conch[0] - conch[-1]:+.3f} vs "
        f"ConCH_su {supervised[0] - supervised[-1]:+.3f}"
    )

    # Both start strong on clean labels.
    assert conch[0] > 0.8 and supervised[0] > 0.8
    # Graceful degradation at moderate (20%) noise for both variants.
    moderate = NOISE_RATES.index(0.2)
    assert conch[moderate] > conch[0] - 0.10
    assert supervised[moderate] > supervised[0] - 0.10
    # Damage is monotone-ish: the noisiest setting is the worst (or ties).
    assert conch[-1] <= conch[0] + 1e-9
    assert supervised[-1] <= supervised[0] + 1e-9
