"""Figures 3-5: the ablation study.

Paper: ConCH vs ConCH_nc / _rd / _su / _ft / _ew on three datasets × four
training fractions.  Expected shape: the full model leads; _nc hurts most
on Yelp/Freebase; the _su gap grows as the training set shrinks; _ft
trails multi-task; _ew trails attention.

An extra ablation beyond the paper compares the sum aggregator (paper
text) with the mean aggregator (this reproduction's default).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TRAIN_FRACTIONS, conch_config
from repro.baselines.registry import conch_method
from repro.eval import format_contest_table, run_contest, summarize_results

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow

VARIANTS = ["full", "nc", "rd", "su", "ft", "ew"]


@pytest.mark.parametrize("dataset_name", ["dblp", "yelp", "freebase"])
def test_ablation(benchmark, dataset_name, request):
    dataset = request.getfixturevalue(dataset_name)
    methods = {
        f"ConCH_{v}" if v != "full" else "ConCH": conch_method(
            v, base_config=conch_config(dataset_name)
        )
        for v in VARIANTS
    }

    def run():
        return run_contest(
            methods, dataset, train_fractions=TRAIN_FRACTIONS, repeats=1
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    contests = sorted(
        {r.contest_id for r in results},
        key=lambda c: int(c.split("@")[1].rstrip("%")),
    )
    for metric in ("macro_f1", "micro_f1"):
        print()
        print(
            format_contest_table(
                summarize_results(results, metric=metric),
                methods=list(methods),
                contests=contests,
                title=f"Figs. 3-5 analogue — {dataset.name} — {metric}",
            )
        )

    by_method = summarize_results(results, metric="micro_f1")
    full_mean = sum(by_method["ConCH"].values()) / len(contests)
    for variant in ("ConCH_nc", "ConCH_rd"):
        variant_mean = sum(by_method[variant].values()) / len(contests)
        print(f"{variant} mean gap vs full: {full_mean - variant_mean:+.4f}")
    assert full_mean > 1.5 / dataset.num_classes


def test_aggregator_ablation(benchmark, dblp):
    """Extra ablation: sum (paper text) vs mean (reproduction default)."""
    methods = {
        "ConCH(mean)": conch_method(base_config=conch_config("dblp", aggregator="mean")),
        "ConCH(sum)": conch_method(base_config=conch_config("dblp", aggregator="sum")),
    }

    def run():
        return run_contest(methods, dblp, train_fractions=[0.02, 0.20], repeats=1)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    contests = sorted({r.contest_id for r in results})
    print()
    print(
        format_contest_table(
            summarize_results(results, metric="micro_f1"),
            methods=list(methods),
            contests=contests,
            title="Aggregator ablation — dblp — micro_f1",
        )
    )
    assert results
