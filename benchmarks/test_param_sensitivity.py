"""Figure 9: hyper-parameter sensitivity of ConCH (20% train, Micro-F1).

Paper shape: accuracy improves with output embedding dimensionality and
is stable over wide ranges of k and λ; very large input context dims can
hurt (noise) — Freebase shows a drop at 128.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import FAST, conch_config
from repro.core import ConCHTrainer, prepare_conch_data
from repro.data import stratified_split

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow


def _score(dataset, config, split, embeddings=None):
    data = prepare_conch_data(dataset, config, embeddings=embeddings)
    trainer = ConCHTrainer(data, config).fit(split)
    return trainer.evaluate(split.test)["micro_f1"]


def _sweep(dataset, name, values, override):
    from repro.embedding.metapath2vec import metapath2vec_embeddings

    split = stratified_split(dataset.labels, 0.20, seed=0)
    # metapath2vec only depends on context_dim among the swept knobs;
    # reuse one embedding table for the other sweeps.
    base = conch_config(dataset.name)
    shared = None
    if name != "context_dim":
        shared = metapath2vec_embeddings(
            dataset.hin,
            dataset.metapaths,
            dim=base.context_dim,
            num_walks=base.embed_num_walks,
            walk_length=base.embed_walk_length,
            window=base.embed_window,
            epochs=base.embed_epochs,
            seed=base.seed,
        )
    scores = []
    for value in values:
        config = conch_config(dataset.name, **override(value))
        scores.append(_score(dataset, config, split, embeddings=shared))
    print(f"\nFig. 9 analogue — {dataset.name} — {name}")
    for value, score in zip(values, scores):
        print(f"  {name}={value:<8} micro-F1 {score:.4f}")
    return np.asarray(scores)


DIMS = [8, 32, 128] if FAST else [8, 16, 32, 64, 128]
KS = [5, 15, 25] if FAST else [5, 10, 15, 20, 25]
LAMBDAS = [0.001, 0.1, 1.0] if FAST else [0.0001, 0.001, 0.01, 0.1, 1.0]


@pytest.mark.parametrize("dataset_name", ["dblp", "freebase"])
def test_output_dim_sensitivity(benchmark, dataset_name, request):
    dataset = request.getfixturevalue(dataset_name)
    scores = benchmark.pedantic(
        lambda: _sweep(
            dataset, "out_dim", DIMS,
            lambda d: {"out_dim": d, "hidden_dim": d},
        ),
        rounds=1,
        iterations=1,
    )
    # Paper: small dims cannot capture enough information.
    assert scores[-1] >= scores[0] - 0.05


@pytest.mark.parametrize("dataset_name", ["dblp", "freebase"])
def test_context_dim_sensitivity(benchmark, dataset_name, request):
    dataset = request.getfixturevalue(dataset_name)
    scores = benchmark.pedantic(
        lambda: _sweep(
            dataset, "context_dim", DIMS, lambda d: {"context_dim": d}
        ),
        rounds=1,
        iterations=1,
    )
    assert np.all(scores > 1.2 / dataset.num_classes)


@pytest.mark.parametrize("dataset_name", ["dblp", "yelp"])
def test_k_sensitivity(benchmark, dataset_name, request):
    dataset = request.getfixturevalue(dataset_name)
    scores = benchmark.pedantic(
        lambda: _sweep(dataset, "k", KS, lambda k: {"k": k}),
        rounds=1,
        iterations=1,
    )
    # Paper: ConCH is stable in k — even small k performs well.
    assert scores.max() - scores.min() < 0.25


@pytest.mark.parametrize("dataset_name", ["dblp", "yelp"])
def test_lambda_sensitivity(benchmark, dataset_name, request):
    dataset = request.getfixturevalue(dataset_name)
    scores = benchmark.pedantic(
        lambda: _sweep(
            dataset, "lambda_ss", LAMBDAS, lambda l: {"lambda_ss": l}
        ),
        rounds=1,
        iterations=1,
    )
    # Paper: stable over a wide range of λ.
    assert scores.max() - scores.min() < 0.25
