"""X7 — unsupervised embedding quality: clustering and link prediction.

The paper evaluates embeddings only through classification (Table I).
This bench applies the two other standard downstream protocols from the
embedding literature the paper builds on (metapath2vec, HIN2Vec, LINE,
PTE) to the same synthetic DBLP:

* **Clustering** — k-means on target-node embeddings, scored by NMI /
  ARI / purity against the research-area labels.
* **Link prediction** — hold out 20% of the paper→conference edges,
  re-embed the reduced HIN, rank held-out pairs vs never-linked pairs.

Expected shape (verified): *walk-based* methods (node2vec, mp2vec),
whose windows span multiple hops, cluster authors almost perfectly,
while *edge-sampling* methods (LINE, PTE), whose objectives are strictly
1-hop, degrade — PTE's pure second-order proximity collapses because
co-authorship (shared direct paper neighbors) is sparse.  This is the
paper's §I argument that "complex semantic relations between objects are
often exhibited by multi-hop paths instead of single links", measured
without any labels in the loop.  On link prediction all learned
embeddings beat random once second-order methods are scored with the
vertex·context statistic their objective optimizes.
"""

from __future__ import annotations

import pytest

from typing import Dict

import numpy as np

from benchmarks.conftest import conch_config
from repro.baselines.registry import conch_method
from repro.core.config import ConCHConfig
from repro.core.trainer import ConCHTrainer, prepare_conch_data
from repro.data.splits import stratified_split
from repro.embedding.line import LINEConfig, line_embeddings
from repro.embedding.metapath2vec import metapath2vec_target_embeddings
from repro.embedding.node2vec import node2vec_embeddings
from repro.embedding.pte import pte_embeddings, pte_target_embeddings
from repro.eval.clustering import clustering_report
from repro.eval.linkpred import holdout_relation_split, link_prediction_report

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow


def _target_embedding_panel(dataset, seed: int = 0) -> Dict[str, np.ndarray]:
    """Unsupervised target-node embeddings, one table per method."""
    hin = dataset.hin
    offsets = hin.global_offsets()
    start = offsets[dataset.target_type]
    stop = start + dataset.num_targets

    adjacency = hin.to_homogeneous()
    panel = {
        "node2vec": node2vec_embeddings(
            adjacency, dim=64, num_walks=5, walk_length=30, seed=seed
        )[start:stop],
        "LINE": line_embeddings(
            adjacency, config=LINEConfig(dim=64, seed=seed)
        )[start:stop],
        "mp2vec": metapath2vec_target_embeddings(
            hin, dataset.metapaths[-1], dim=64, num_walks=8, walk_length=40, seed=seed
        ),
        "PTE": pte_target_embeddings(
            hin, dataset.target_type, config=LINEConfig(dim=64, order="second", seed=seed)
        ),
    }
    return panel


def test_clustering_quality_dblp(benchmark, dblp):
    def run():
        panel = _target_embedding_panel(dblp)
        # ConCH's supervised embeddings as the upper reference point.
        config = conch_config(dblp.name)
        data = prepare_conch_data(dblp, config)
        split = stratified_split(dblp.labels, 0.2, seed=0)
        trainer = ConCHTrainer(data, config).fit(split)
        panel["ConCH"] = trainer.embeddings()
        return {
            name: clustering_report(embeddings, dblp.labels, dblp.num_classes, seed=0)
            for name, embeddings in panel.items()
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nClustering quality — dblp (kmeans on target embeddings)")
    print("method   |    nmi |    ari | purity")
    print("-" * 38)
    for name, report in reports.items():
        print(
            f"{name:<8} | {report['nmi']:.4f} | {report['ari']:.4f} "
            f"| {report['purity']:.4f}"
        )

    # Shape 1: multi-hop (walk-window) methods cluster authors well.
    for name in ("node2vec", "mp2vec", "ConCH"):
        assert reports[name]["nmi"] > 0.5, name

    # Shape 2: every multi-hop method beats every strictly-1-hop method —
    # the paper's §I multi-hop-semantics argument, label-free.
    multi_hop_worst = min(reports[name]["nmi"] for name in ("node2vec", "mp2vec"))
    one_hop_best = max(reports[name]["nmi"] for name in ("LINE", "PTE"))
    assert multi_hop_worst > one_hop_best + 0.1

    # Shape 3: within the 1-hop family, LINE's first-order half (authors
    # pulled toward their own papers) retains signal that PTE's pure
    # second-order objective cannot (co-authorship is sparse).
    assert reports["LINE"]["nmi"] > reports["PTE"]["nmi"]


def test_link_prediction_quality_dblp(benchmark, dblp):
    def run():
        split = holdout_relation_split(dblp.hin, "published_at", 0.2, seed=0)
        hin = split.hin
        adjacency = hin.to_homogeneous()
        rng = np.random.default_rng(0)
        # Second-order methods are scored with the vertex-context dot
        # product their objective optimizes; symmetric methods with the
        # plain dot product.
        line_vertex, line_context = line_embeddings(
            adjacency,
            config=LINEConfig(dim=64, order="second", seed=0),
            return_context=True,
        )
        pte_vertex, pte_context = pte_embeddings(
            hin, config=LINEConfig(dim=64, order="second", seed=0), return_context=True
        )
        tables = {
            "random": (rng.normal(size=(hin.total_nodes, 64)), None),
            "node2vec": (
                node2vec_embeddings(
                    adjacency, dim=64, num_walks=5, walk_length=30, seed=0
                ),
                None,
            ),
            "LINE-2nd": (line_vertex, line_context),
            "PTE": (pte_vertex, pte_context),
        }
        return {
            name: link_prediction_report(table, split, context_embeddings=context)
            for name, (table, context) in tables.items()
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nLink prediction — dblp published_at (20% held out)")
    print("method   |    auc |     ap")
    print("-" * 28)
    for name, report in reports.items():
        print(f"{name:<8} | {report['auc']:.4f} | {report['ap']:.4f}")

    # Shape 1: every learned embedding beats the random control.
    for name in ("node2vec", "LINE-2nd", "PTE"):
        assert reports[name]["auc"] > reports["random"]["auc"] + 0.05, name

    # Shape 2: type-correct negatives (PTE) do not hurt vs flattened
    # sampling (LINE) on the same second-order objective.
    assert reports["PTE"]["auc"] > reports["LINE-2nd"]["auc"] - 0.02
