"""Figure 7: the efficiency study.

(a)-(c) Training-time vs validation Micro-F1 convergence for the
semi-supervised HIN methods (ConCH, HAN, MAGNN, HGT, HGCN) at 20% train.
Paper shape: ConCH converges fastest to the best score; MAGNN/HGT reach
good scores but need far longer; MAGNN cannot run on Yelp (OOM).

(d) ConCH per-epoch runtime vs k: should grow roughly linearly.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import GNN_EPOCHS, conch_config
from repro.autograd.tensor import Tensor
from repro.baselines import make_method
from repro.baselines.base import TrainSettings
from repro.baselines.registry import conch_method
from repro.core import ConCHTrainer, prepare_conch_data
from repro.data import stratified_split
from repro.eval.harness import run_method_on_split

#: Experiment-scale benchmark (full training runs); excluded from the
#: fast lane `pytest -m "not slow"` (see pytest.ini).
pytestmark = pytest.mark.slow


def _efficiency_panel(dataset_name):
    settings = TrainSettings(epochs=GNN_EPOCHS, patience=10_000)  # no early stop
    return {
        "HGCN": make_method("HGCN", settings=settings),
        "HAN": make_method("HAN", settings=settings, num_heads=2),
        "HGT": make_method("HGT", settings=settings, num_layers=1),
        "MAGNN": make_method("MAGNN", settings=settings, per_node_cap=32),
        "ConCH": conch_method(
            base_config=conch_config(
                dataset_name, epochs=GNN_EPOCHS, patience=10_000
            )
        ),
    }


@pytest.mark.parametrize("dataset_name", ["dblp", "yelp", "freebase"])
def test_convergence_curves(benchmark, dataset_name, request):
    dataset = request.getfixturevalue(dataset_name)
    split = stratified_split(dataset.labels, 0.20, seed=0)
    panel = _efficiency_panel(dataset_name)

    def run():
        traces = {}
        failures = {}
        for name, method in panel.items():
            try:
                output = method(dataset, split, 0)
                traces[name] = output.recorder
            except MemoryError as error:
                failures[name] = str(error)
        return traces, failures

    traces, failures = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\nFig. 7 analogue — {dataset.name} — convergence at 20% train")
    print(f"{'method':<8} {'secs':>8} {'best val':>9} {'t(best-5%)':>11}")
    best_overall = max(t.best_val for t in traces.values())
    for name, recorder in traces.items():
        reach = recorder.time_to_reach(best_overall - 0.05)
        reach_str = f"{reach:.1f}s" if reach is not None else "never"
        print(
            f"{name:<8} {recorder.total_seconds:>7.1f}s {recorder.best_val:>9.4f} "
            f"{reach_str:>11}"
        )
    for name, reason in failures.items():
        print(f"{name:<8} OOM: {reason[:70]}")

    assert "ConCH" in traces
    conch = traces["ConCH"]
    reach_conch = conch.time_to_reach(best_overall - 0.05)
    assert reach_conch is not None, "ConCH never got within 5% of the best score"


def test_epoch_runtime_vs_k(benchmark, dblp, yelp, freebase):
    """Fig. 7(d): ConCH per-epoch runtime grows ~linearly with k."""
    from repro.embedding.metapath2vec import metapath2vec_embeddings

    datasets = {"dblp": dblp, "yelp": yelp, "freebase": freebase}
    ks = [5, 10, 15, 20, 25]

    def run():
        rows = {}
        for name, dataset in datasets.items():
            split = stratified_split(dataset.labels, 0.20, seed=0)
            base = conch_config(name)
            # metapath2vec does not depend on k: train it once per dataset.
            embeddings = metapath2vec_embeddings(
                dataset.hin,
                dataset.metapaths,
                dim=base.context_dim,
                num_walks=base.embed_num_walks,
                walk_length=base.embed_walk_length,
                window=base.embed_window,
                epochs=base.embed_epochs,
                seed=base.seed,
            )
            times = []
            for k in ks:
                config = conch_config(name, k=k, epochs=5, patience=10_000)
                data = prepare_conch_data(dataset, config, embeddings=embeddings)
                trainer = ConCHTrainer(data, config)
                start = time.perf_counter()
                trainer.fit(split)
                times.append((time.perf_counter() - start) / 5.0)
            rows[name] = times
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFig. 7(d) analogue — ConCH per-epoch seconds vs k")
    print("k:        " + "  ".join(f"{k:>6}" for k in ks))
    for name, times in rows.items():
        print(f"{name:<9} " + "  ".join(f"{t:>6.3f}" for t in times))
        # Linearity check: runtime at k=25 should not be wildly superlinear.
        assert times[-1] < 12 * max(times[0], 1e-3), f"{name} superlinear in k"
