"""`repro.serve` under concurrent load: micro-batching, shedding, stats.

Demonstrates the serving subsystem end to end:

1. Train once, save a bundle, open it through the **zero-copy tier** —
   operators and features are memory-mapped from sidecar files, so
   every co-located worker shares one OS-resident copy.
2. Run a `ModelServer` and hammer it with concurrent clients — the
   micro-batching scheduler coalesces the flood into a handful of
   union-slice forwards, and every answer matches a direct sequential
   `ModelHandle` call exactly.
3. Shrink the queue to watch **admission control** shed load (and the
   client's bounded retry absorb it).

Usage:  python examples/serving_under_load.py
"""

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.api import ModelHandle, Pipeline
from repro.data import load_dataset, stratified_split
from repro.hin.cache import is_mmap_backed
from repro.serve import ModelServer, ServeClient


def main() -> None:
    dataset = load_dataset("dblp")
    split = stratified_split(dataset.labels, train_fraction=0.10, seed=0)

    with tempfile.TemporaryDirectory() as tmp:
        # ---- Train once, bundle, open through the mmap tier. --------- #
        pipeline = Pipeline(dataset, store_dir=Path(tmp) / "run")
        estimator = pipeline.fit(split=split)
        bundle = Path(tmp) / "conch.npz"
        estimator.save(bundle)
        handle = ModelHandle.load(bundle)  # sidecars built on first load
        mapped = all(is_mmap_backed(op) for op in handle._operators)
        print(f"Serving handle: {handle}")
        print(f"Operators memory-mapped (shared across workers): {mapped}\n")

        # ---- Concurrent load through the micro-batcher. -------------- #
        rng = np.random.default_rng(0)
        requests = [
            rng.integers(0, handle.num_objects, size=1 + i % 4)
            for i in range(200)
        ]
        expected = [handle.predict_nodes(ids) for ids in requests]
        answers: dict = {}
        with ModelServer(
            handle, max_batch_size=64, max_wait_ms=5, num_workers=2
        ) as server:
            client = ServeClient(server)

            def worker(start: int) -> None:
                for index in range(start, len(requests), 8):
                    answers[index] = client.predict_nodes(requests[index])

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = server.stats()

        exact = all(
            np.array_equal(answers[i], expected[i])
            for i in range(len(requests))
        )
        latency = stats["latency_seconds"]
        print(f"{stats['answered']} requests answered in "
              f"{stats['batches']} batches "
              f"(mean batch {stats['batch_size_mean']:.1f}, "
              f"max {stats['batch_size_max']})")
        print(f"Throughput: {stats['throughput_rps']:.0f} req/s   "
              f"latency p50 {1000 * latency['p50']:.2f} ms, "
              f"p95 {1000 * latency['p95']:.2f} ms")
        print(f"All {len(requests)} answers identical to sequential "
              f"ModelHandle calls: {exact}\n")

        # ---- Admission control: a tiny queue under the same flood. --- #
        with ModelServer(
            handle, max_batch_size=8, max_wait_ms=0, max_queue=4,
            num_workers=1,
        ) as server:
            client = ServeClient(server, retries=25, backoff_s=0.002)
            threads = [
                threading.Thread(
                    target=lambda s=start: [
                        client.predict_nodes(requests[i])
                        for i in range(s, len(requests), 8)
                    ],
                )
                for start in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = server.stats()
        print("With max_queue=4 under the same flood:")
        print(f"  shed {stats['shed']} submissions "
              f"(client retried {client.retried}, dropped {client.dropped}); "
              f"still answered {stats['answered']}")


if __name__ == "__main__":
    main()
