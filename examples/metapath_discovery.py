"""Automatic meta-path discovery on a schema you have never hand-analyzed.

The paper assumes a curated meta-path set per dataset.  This example
shows the alternative workflow for a new HIN:

1. enumerate every symmetric meta-path the schema allows,
2. rank them by training-label homophily × coverage (using *only* the
   labeled training nodes, as the semi-supervised setting demands),
3. greedily select a non-redundant subset,
4. train ConCH on the discovered set and compare against the curated one.

Usage:  python examples/metapath_discovery.py
"""

from repro.core import ConCHConfig, ConCHTrainer, prepare_conch_data
from repro.data import load_dataset, stratified_split
from repro.data.base import HINDataset
from repro.hin.discovery import discover_metapaths, rank_metapaths, select_metapaths


def main() -> None:
    dataset = load_dataset("dblp")
    split = stratified_split(dataset.labels, train_fraction=0.10, seed=0)

    # 1. Enumerate candidates from the schema alone.
    candidates = discover_metapaths(dataset.hin, dataset.target_type, max_length=4)
    print(f"Schema admits {len(candidates)} symmetric candidates:")
    print(f"  {[c.name for c in candidates]}")

    # 2. Rank by homophily on *training* labels only.
    ranked = rank_metapaths(
        dataset.hin, candidates, dataset.labels, train_idx=split.train
    )
    print("\nRanked candidates (train-label homophily x coverage):")
    for entry in ranked:
        print(
            f"  {entry.metapath.name:<8} homophily {entry.homophily:.3f}  "
            f"coverage {entry.coverage:.3f}  score {entry.score:.3f}  "
            f"({entry.labeled_pairs} labeled pairs)"
        )

    # 3. Select a compact non-redundant set.
    selected = select_metapaths(
        dataset.hin,
        dataset.target_type,
        dataset.labels,
        train_idx=split.train,
        max_length=4,
        limit=3,
    )
    discovered_names = [entry.metapath.name for entry in selected]
    print(f"\nSelected meta-path set: {discovered_names}")

    # 4. Train ConCH on curated vs discovered sets, same split.
    config = ConCHConfig(
        k=5, num_layers=2, context_dim=32, epochs=150, patience=50,
        embed_num_walks=4, embed_walk_length=20, embed_epochs=2,
    )
    for label, paths in [
        ("curated   ", dataset.metapaths),
        ("discovered", [entry.metapath for entry in selected]),
    ]:
        bundle = HINDataset(
            name=f"dblp-{label.strip()}",
            hin=dataset.hin,
            target_type=dataset.target_type,
            metapaths=list(paths),
            class_names=dataset.class_names,
        ).validate()
        data = prepare_conch_data(bundle, config)
        trainer = ConCHTrainer(data, config).fit(split)
        scores = trainer.evaluate(split.test)
        names = [m.name for m in paths]
        print(
            f"{label} {str(names):<30} test micro-F1 {scores['micro_f1']:.4f}  "
            f"macro-F1 {scores['macro_f1']:.4f}"
        )


if __name__ == "__main__":
    main()
