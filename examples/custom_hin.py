"""Build your own HIN from scratch and classify it with ConCH.

Constructs a small e-commerce network (Users, Items, Brands, Categories),
plants a user-segment labeling, defines meta-paths, and runs the full
ConCH pipeline — demonstrating every public API a downstream user needs
to apply this library to their own data.

Usage:  python examples/custom_hin.py
"""

import numpy as np

from repro.core import ConCHConfig, ConCHTrainer, prepare_conch_data
from repro.data.base import HINDataset
from repro.data.splits import stratified_split
from repro.hin import HIN, MetaPath


def build_ecommerce_hin(seed: int = 0) -> HINDataset:
    """Users buy items; items have a brand and a category.

    Users are labeled by shopping segment; segments prefer certain
    categories, so the meta-path U-I-C-I-U (bought items of the same
    category) carries the signal, while U-I-U (co-purchase) is sparser.
    """
    rng = np.random.default_rng(seed)
    num_users, num_items, num_brands, num_categories = 150, 400, 20, 12
    num_segments = 3

    user_segment = rng.integers(0, num_segments, size=num_users)
    # Force coverage of all segments.
    user_segment[:num_segments] = np.arange(num_segments)
    category_segment = rng.integers(0, num_segments, size=num_categories)
    category_segment[:num_segments] = np.arange(num_segments)
    item_category = rng.integers(0, num_categories, size=num_items)
    item_brand = rng.integers(0, num_brands, size=num_items)

    category_pools = [
        np.flatnonzero(category_segment == s) for s in range(num_segments)
    ]

    # Purchases: users mostly buy items in categories of their own segment.
    ui_src, ui_dst = [], []
    for user in range(num_users):
        segment = user_segment[user]
        for _ in range(rng.integers(3, 9)):
            if rng.random() < 0.75:
                category = int(rng.choice(category_pools[segment]))
                candidates = np.flatnonzero(item_category == category)
            else:
                candidates = np.arange(num_items)
            if candidates.size == 0:
                candidates = np.arange(num_items)
            ui_src.append(user)
            ui_dst.append(int(rng.choice(candidates)))

    hin = HIN(name="ecommerce")
    hin.add_node_type("U", num_users)
    hin.add_node_type("I", num_items)
    hin.add_node_type("B", num_brands)
    hin.add_node_type("C", num_categories)
    hin.add_edges("buys", "U", "I", ui_src, ui_dst)
    hin.add_edges("branded", "I", "B", np.arange(num_items), item_brand)
    hin.add_edges("in_category", "I", "C", np.arange(num_items), item_category)

    # Features: weak segment signal for users, category one-hots for items.
    hin.set_features(
        "U", np.eye(num_segments)[user_segment] + rng.normal(0, 1.0, (num_users, 3))
    )
    hin.set_features("I", np.eye(num_categories)[item_category])
    hin.set_features("B", rng.normal(size=(num_brands, 4)))
    hin.set_features("C", np.eye(num_categories))
    hin.set_labels("U", user_segment)

    return HINDataset(
        name="ecommerce",
        hin=hin,
        target_type="U",
        metapaths=[MetaPath.parse("UIU"), MetaPath.parse("UICIU")],
        class_names=["bargain", "brand-loyal", "premium"],
    ).validate()


def main() -> None:
    dataset = build_ecommerce_hin()
    print(f"Custom dataset: {dataset}")
    print(f"Schema: {dataset.hin.schema()}")

    split = stratified_split(dataset.labels, train_fraction=0.15, seed=0)
    config = ConCHConfig(
        k=5, num_layers=1, context_dim=16, hidden_dim=32, out_dim=32,
        lambda_ss=0.3, epochs=150, patience=50, max_instances=8,
    )
    data = prepare_conch_data(dataset, config)
    trainer = ConCHTrainer(data, config).fit(split)

    scores = trainer.evaluate(split.test)
    print(f"\nTest Micro-F1: {scores['micro_f1']:.4f}")
    print(f"Test Macro-F1: {scores['macro_f1']:.4f}")
    weights = trainer.attention_weights()
    print("\nMeta-path attention:")
    for metapath, weight in zip(dataset.metapaths, weights):
        print(f"  {metapath.name:<7} {weight:.3f}")


if __name__ == "__main__":
    main()
