"""Live delta ingest: update a serving model without a restart.

Builds the DBLP pipeline, trains ConCH, puts the model behind the
micro-batching server, then streams edge-batch edits (new papers being
written, stale authorships retracted) through the whole substrate:

- ``HIN.apply_delta`` bumps the graph version and chains the content
  hash,
- the commuting engine patches only the dirty rows of its cached
  products and resplices the affected top-k neighbor lists,
- the pipeline re-enumerates only dirty-rooted contexts and splices
  the rest (``StageEvent.action == "patched"``),
- ``ModelHandle.refresh`` publishes the new operators as one atomic
  generation swap — queries in flight keep being answered throughout.

The final section verifies the live path against a cold rebuild of the
mutated graph: predictions agree exactly, with no restart and no
retraining.

Usage:  python examples/streaming_updates.py
"""

import time

import numpy as np

from repro.api import ConCHEstimator, ModelHandle, Pipeline
from repro.core import ConCHConfig
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.embedding import metapath2vec_embeddings
from repro.hin.graph import EdgeDelta
from repro.serve import ModelServer


def main() -> None:
    rng = np.random.default_rng(0)
    config = ConCHConfig(
        k=4,
        num_layers=2,
        context_dim=16,
        max_instances=8,
        embed_num_walks=2,
        embed_walk_length=10,
        embed_epochs=1,
        epochs=20,
        patience=8,
    )
    dataset = load_dataset(
        "dblp",
        config=DBLPConfig(num_authors=200, num_papers=700, num_conferences=12),
    )
    num_authors = dataset.hin.num_nodes("A")
    num_papers = dataset.hin.num_nodes("P")

    # ---- Train once, serve forever ---------------------------------- #
    embeddings = metapath2vec_embeddings(
        dataset.hin,
        dataset.metapaths,
        dim=config.context_dim,
        num_walks=config.embed_num_walks,
        walk_length=config.embed_walk_length,
        epochs=config.embed_epochs,
        seed=config.seed,
    )
    pipeline = Pipeline(dataset, config=config)
    pipeline.prepare(embeddings=embeddings)
    split = stratified_split(dataset.labels, 0.2, seed=0)
    estimator = ConCHEstimator(pipeline.data, config).fit(split)
    handle = ModelHandle.from_estimator(estimator)

    watched = np.arange(16)
    with ModelServer(handle, max_wait_ms=1, pipeline=pipeline) as server:
        before = server.predict_nodes(watched, timeout=30.0)
        print(f"serving generation {handle.generation}, "
              f"graph version {dataset.hin.version}")

        # ---- Stream three edit batches through the live server ------ #
        for round_index in range(3):
            batch = 8 * (round_index + 1)
            delta = EdgeDelta.additions(
                "writes",
                rng.integers(0, num_authors, size=batch),
                rng.integers(0, num_papers, size=batch),
            )
            started = time.perf_counter()
            summary = server.ingest(delta)
            elapsed = time.perf_counter() - started
            stats = pipeline.engine.stats()
            print(
                f"ingested {batch:2d} edges in {elapsed * 1000:6.1f} ms -> "
                f"generation {summary['generation']}, "
                f"graph version {summary['graph_version']}, "
                f"stages {[action for _, action in summary['stages']]}, "
                f"patched rows so far {stats['patched_rows']}"
            )
            applied = delta
        after = server.predict_nodes(watched, timeout=30.0)

    moved = int((before != after).sum())
    print(f"watched predictions changed for {moved}/{watched.size} authors "
          f"without a restart")

    # ---- Cold rebuild cross-check (same weights, mutated graph) ----- #
    cold = Pipeline(dataset, config=config)
    cold.prepare(embeddings=embeddings)
    cold_handle = ModelHandle(cold.data, config, estimator.trainer.model)
    agreement = np.array_equal(
        handle.predict_nodes(watched), cold_handle.predict_nodes(watched)
    )
    print(f"live ingest == cold rebuild on the mutated graph: {agreement}")
    assert agreement
    assert applied.num_edits == 24


if __name__ == "__main__":
    main()
