"""Staged pipeline + serving: artifacts, resume, and per-node queries.

Demonstrates the three layers of `repro.api`:

1. `Pipeline` with a store directory — each stage (discover → compose →
   enumerate → featurize → fit) persists a typed, content-keyed artifact,
   and composed commuting products write through to a disk store.
2. Resume — a second pipeline over the same dataset + config loads every
   artifact, composes **zero** products, and reproduces the first run's
   predictions bit-exactly.
3. `ModelHandle` — a serving process loads the saved estimator bundle
   and answers per-node label queries through row slices of the cached
   operators, never re-running preprocessing.

Usage:  python examples/pipeline_and_serving.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.api import ModelHandle, Pipeline
from repro.data import load_dataset, stratified_split
from repro.hin.engine import get_engine


def main() -> None:
    dataset = load_dataset("dblp")
    split = stratified_split(dataset.labels, train_fraction=0.10, seed=0)

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "dblp-run"

        # ---- First run: every stage computes and persists. ----------- #
        pipeline = Pipeline(dataset, store_dir=store)
        estimator = pipeline.fit(split=split)
        print("First run stages:")
        for event in pipeline.describe():
            print(f"  {event['stage']:<10} {event['action']:<9} "
                  f"{event['seconds']:.3f}s")
        scores = estimator.evaluate(split.test)
        print(f"Test Micro-F1: {scores['micro_f1']:.4f}\n")

        # ---- Second run: cold memory, warm store. -------------------- #
        engine = get_engine(dataset.hin)
        engine.invalidate()  # simulate a fresh process
        resumed = Pipeline(dataset, store_dir=store)
        estimator2 = resumed.fit(split=split)
        # Bypassed stages (compose/enumerate) log nothing: featurize's
        # artifact makes them unnecessary.
        print("Resumed run stages (all loaded, zero products composed):")
        for event in resumed.describe():
            print(f"  {event['stage']:<10} {event['action']:<9} "
                  f"{event['seconds']:.3f}s")
        print(f"Products composed on resume: {len(engine.compose_log)}")
        print(f"Predictions bit-identical: "
              f"{np.array_equal(estimator.predict(), estimator2.predict())}\n")

        # ---- Serving: load the bundle, query individual nodes. ------- #
        bundle = store / "conch-bundle.npz"
        estimator.save(bundle)
        handle = ModelHandle.load(bundle)
        query = np.array([3, 141, 59])
        print(f"Serving handle: {handle}")
        print(f"predict_nodes({query.tolist()}) -> "
              f"{handle.predict_nodes(query).tolist()}")
        stats = handle.last_query_stats
        print(f"Receptive field: {stats['subgraph_objects']} of "
              f"{stats['total_objects']} objects "
              f"({100 * stats['object_fraction']:.1f}%) touched")


if __name__ == "__main__":
    main()
