"""Scarce-label contest on DBLP (a Table-I slice at 2% training labels).

The paper's central claim: with very few labeled nodes, ConCH's
self-supervision and context modeling keep it accurate while baselines
degrade.  This example runs a small method panel on identical 2% splits.

Usage:  python examples/dblp_scarce_labels.py
"""

from repro.baselines import make_method
from repro.baselines.base import TrainSettings
from repro.baselines.registry import conch_method
from repro.core import ConCHConfig
from repro.data import load_dataset
from repro.eval import format_contest_table, run_contest, summarize_results


def main() -> None:
    dataset = load_dataset("dblp")
    settings = TrainSettings(epochs=100, patience=40)

    methods = {
        "GNetMine": make_method("GNetMine"),
        "LabelProp": make_method("LabelProp"),
        "GCN": make_method("GCN", settings=settings),
        "HDGI": make_method("HDGI"),
        "HGCN": make_method("HGCN", settings=settings),
        "ConCH": conch_method(
            base_config=ConCHConfig(
                k=5, num_layers=2, context_dim=32, hidden_dim=64, out_dim=64,
                lambda_ss=0.3, epochs=200, patience=60,
            )
        ),
    }

    results = run_contest(
        methods,
        dataset,
        train_fractions=[0.02, 0.20],
        repeats=1,
        verbose=True,
    )

    contests = sorted({r.contest_id for r in results})
    table = summarize_results(results, metric="micro_f1")
    print()
    print(
        format_contest_table(
            table,
            methods=list(methods),
            contests=contests,
            title="Micro-F1 (winner per contest marked *)",
        )
    )
    print(
        "\nExpected shape (paper Table I): ConCH wins both contests, and the "
        "gap over the runner-up is widest at 2%."
    )


if __name__ == "__main__":
    main()
