"""The telemetry subsystem end to end: one trace from client to forward.

Demonstrates `repro.obs` over the live HTTP serving stack:

1. Train once, serve over HTTP, turn the tracer on
   (`repro.obs.TRACER.enable()` — or `REPRO_TRACE=1` in the
   environment), and drive concurrent load.
2. Every request stitches into **one trace**: the client's
   `http.client.predict` span ships its context as a `traceparent`
   header; the server parents `http.predict` under it; the scheduler
   re-emits `server.request` (with queue-wait / batch-assembly /
   forward children) into the same trace; the model handle's
   `handle.sliced_forward` joins via the scheduler thread's context
   stack. The whole tree exports as Chrome `trace_event` JSON —
   load it in `chrome://tracing` or https://ui.perfetto.dev.
3. `GET /metrics` renders the process-wide registry — engine, caches,
   server, HTTP — as a Prometheus text page, and
   `stats()["slow_requests"]` keeps the worst-N end-to-end requests
   with their phase breakdown, tracer on or off.

Usage:  python examples/observability.py
"""

import json
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.api import ModelHandle, Pipeline
from repro.data import load_dataset, stratified_split
from repro.obs import TRACER, build_span_tree
from repro.serve import HttpServeClient, HttpServer, ModelServer


def render_tree(node, depth=0):
    pad = "  " * depth
    print(f"{pad}{node['name']:<28} {node['duration_s'] * 1e3:8.3f} ms  "
          f"[{node['thread_name']}]")
    for child in node["children"]:
        render_tree(child, depth + 1)


def main() -> None:
    dataset = load_dataset("dblp")
    split = stratified_split(dataset.labels, train_fraction=0.10, seed=0)

    with tempfile.TemporaryDirectory() as tmp:
        pipeline = Pipeline(dataset, store_dir=Path(tmp) / "run")
        estimator = pipeline.fit(split=split)
        handle = ModelHandle(pipeline.data, estimator.config,
                             estimator.trainer.model)
        server = ModelServer(
            handle, max_batch_size=64, max_wait_ms=2, num_workers=2,
        )
        with server, HttpServer(server) as http:
            client = HttpServeClient(http.url)
            print(f"Serving {handle} at {http.url}\n")

            TRACER.enable()

            # ---- Concurrent load, every request traced end to end. -- #
            rng = np.random.default_rng(0)
            requests = [
                rng.integers(0, handle.num_objects, size=1 + i % 4)
                for i in range(64)
            ]

            def worker(start: int) -> None:
                for index in range(start, len(requests), 8):
                    client.predict_nodes(requests[index])

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            # ---- One request's span tree, client -> forward. -------- #
            roots = [
                s for s in TRACER.finished()
                if s.name == "http.client.predict"
            ]
            root = roots[-1]
            tree = build_span_tree(
                root, TRACER.spans_for_trace(root.trace_id)
            )
            print(f"Trace {root.trace_id} "
                  f"({len(TRACER.spans_for_trace(root.trace_id))} spans):")
            render_tree(tree)

            # ---- Chrome trace_event export. ------------------------- #
            trace_path = Path(tmp) / "trace.json"
            events = TRACER.export_chrome(str(trace_path))
            print(f"\nWrote {len(events)} trace events -> {trace_path.name} "
                  f"(open in chrome://tracing or ui.perfetto.dev)")

            # ---- Prometheus metrics page. --------------------------- #
            text = client.metrics_text()
            wanted = ("repro_http_requests_total",
                      "repro_server_latency_seconds_count",
                      "repro_engine_", "repro_cache_")
            shown = [
                line for line in text.splitlines()
                if line.startswith(wanted)
            ]
            print(f"\nGET /metrics ({len(text.splitlines())} lines); "
                  f"a sample:")
            for line in shown[:8]:
                print(f"  {line}")

            # ---- Slow-request log + opt-in timings. ----------------- #
            slow = server.stats()["slow_requests"]
            print(f"\nWorst request seen: {slow[0]['duration_s'] * 1e3:.3f} "
                  f"ms, phases: " + ", ".join(
                      f"{c['name'].split('.')[-1]} "
                      f"{c['duration_s'] * 1e3:.3f} ms"
                      for c in slow[0]["children"]))
            out = client._request(
                "POST", "/predict",
                {"ids": [int(i) for i in requests[0]], "timings": True},
            )
            print("Opt-in /predict timings: "
                  + json.dumps(out["timings"], default=float))
            TRACER.disable()
            TRACER.clear()


if __name__ == "__main__":
    main()
