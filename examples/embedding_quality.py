"""Compare embedding methods off the classification axis.

The paper evaluates methods by classification F1 only.  This example runs
the two other standard downstream protocols on the synthetic DBLP:

1. k-means clustering of author embeddings against research-area labels
   (NMI / ARI / purity), and
2. link prediction on held-out paper→conference edges (ROC-AUC / AP).

It contrasts heterogeneity-blind embeddings (node2vec, LINE) with their
heterogeneity-aware counterparts (metapath2vec, PTE) — the §II claim that
typed semantics matter shows up without any labels in the loop.

Run:  python examples/embedding_quality.py
"""

from __future__ import annotations

import numpy as np

from repro.data import load_dataset
from repro.embedding import (
    LINEConfig,
    line_embeddings,
    node2vec_embeddings,
    pte_embeddings,
    pte_target_embeddings,
)
from repro.embedding.metapath2vec import metapath2vec_target_embeddings
from repro.eval import (
    clustering_report,
    holdout_relation_split,
    link_prediction_report,
)


def main() -> None:
    dataset = load_dataset("dblp")
    hin = dataset.hin
    offsets = hin.global_offsets()
    start = offsets[dataset.target_type]
    stop = start + dataset.num_targets

    print(f"dataset: {dataset}")

    # ---------------------------------------------------------------- #
    # 1. Clustering: k-means on author embeddings vs research areas.
    # ---------------------------------------------------------------- #
    adjacency = hin.to_homogeneous()
    panel = {
        "node2vec": node2vec_embeddings(
            adjacency, dim=64, num_walks=5, walk_length=30, seed=0
        )[start:stop],
        "LINE": line_embeddings(adjacency, config=LINEConfig(dim=64, seed=0))[
            start:stop
        ],
        "mp2vec(APCPA)": metapath2vec_target_embeddings(
            hin, dataset.metapaths[-1], dim=64, num_walks=8, walk_length=40, seed=0
        ),
        "PTE": pte_target_embeddings(
            hin, dataset.target_type, config=LINEConfig(dim=64, order="second", seed=0)
        ),
    }

    print("\nClustering authors by research area (k-means on embeddings)")
    print("method        |    nmi |    ari | purity")
    print("-" * 44)
    for name, embeddings in panel.items():
        report = clustering_report(embeddings, dataset.labels, dataset.num_classes)
        print(
            f"{name:<13} | {report['nmi']:.4f} | {report['ari']:.4f} "
            f"| {report['purity']:.4f}"
        )

    # ---------------------------------------------------------------- #
    # 2. Link prediction: held-out paper -> conference edges.
    # ---------------------------------------------------------------- #
    split = holdout_relation_split(hin, "published_at", fraction=0.2, seed=0)
    reduced = split.hin
    reduced_adjacency = reduced.to_homogeneous()
    rng = np.random.default_rng(0)
    # Second-order methods are scored with the vertex-context statistic
    # their objective optimizes (pass the context table explicitly).
    line_vertex, line_context = line_embeddings(
        reduced_adjacency,
        config=LINEConfig(dim=64, order="second", seed=0),
        return_context=True,
    )
    pte_vertex, pte_context = pte_embeddings(
        reduced, config=LINEConfig(dim=64, order="second", seed=0), return_context=True
    )
    tables = {
        "random": (rng.normal(size=(reduced.total_nodes, 64)), None),
        "node2vec": (
            node2vec_embeddings(
                reduced_adjacency, dim=64, num_walks=5, walk_length=30, seed=0
            ),
            None,
        ),
        "LINE-2nd": (line_vertex, line_context),
        "PTE": (pte_vertex, pte_context),
    }

    print("\nPredicting held-out published_at edges")
    print("method        |    auc |     ap")
    print("-" * 32)
    for name, (table, context) in tables.items():
        report = link_prediction_report(table, split, context_embeddings=context)
        print(f"{name:<13} | {report['auc']:.4f} | {report['ap']:.4f}")


if __name__ == "__main__":
    main()
