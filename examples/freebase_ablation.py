"""Ablation study on Freebase movies (Fig. 5 analogue).

Compares full ConCH against its five ablation variants (§V-E):
no-contexts (nc), random neighbors (rd), supervised-only (su),
pretrain+finetune (ft), and equal meta-path weights (ew).

Usage:  python examples/freebase_ablation.py
"""

from repro.baselines.registry import conch_method
from repro.core import ConCHConfig
from repro.data import load_dataset
from repro.eval import run_contest, summarize_results, format_contest_table

VARIANT_LABELS = {
    "full": "ConCH",
    "nc": "ConCH_nc",
    "rd": "ConCH_rd",
    "su": "ConCH_su",
    "ft": "ConCH_ft",
    "ew": "ConCH_ew",
}


def main() -> None:
    dataset = load_dataset("freebase")
    print(f"Dataset: {dataset}")

    # Paper §V-C: k=10, L=1, context dim 32 on Freebase.
    base = ConCHConfig(
        k=10,
        num_layers=1,
        context_dim=32,
        hidden_dim=64,
        out_dim=64,
        lambda_ss=0.3,
        epochs=150,
        patience=50,
    )
    methods = {
        label: conch_method(variant, base_config=base)
        for variant, label in VARIANT_LABELS.items()
    }

    results = run_contest(
        methods, dataset, train_fractions=[0.05, 0.20], repeats=1, verbose=True
    )
    contests = sorted({r.contest_id for r in results})
    print()
    print(
        format_contest_table(
            summarize_results(results, metric="macro_f1"),
            methods=list(methods),
            contests=contests,
            title="Macro-F1 ablations (winner per contest marked *)",
        )
    )
    print(
        "\nExpected shape (paper Figs. 3-5): the full model leads; dropping "
        "contexts (nc) hurts most on Freebase; the su gap grows as labels shrink."
    )


if __name__ == "__main__":
    main()
