"""Swapping the neighbor filter's ranking function.

ConCH filters each node's meta-path neighbors to the top-k by PathSim
(Eq. 1).  The ranking function is pluggable: this example trains the same
model with HeteSim, JoinSim, cosine structural equivalence, and random
selection, and reports how much the choice matters — and how much the
selected neighbor sets actually overlap.

Usage:  python examples/similarity_filtering.py
"""

from repro.core import ConCHConfig, ConCHTrainer, prepare_conch_data
from repro.data import load_dataset, stratified_split
from repro.hin.similarity import SIMILARITY_MEASURES, measure_agreement


def main() -> None:
    dataset = load_dataset("dblp")
    split = stratified_split(dataset.labels, train_fraction=0.05, seed=0)
    print(f"Dataset: {dataset}; {split.sizes['train']} labeled authors")

    base = ConCHConfig(
        k=5, num_layers=2, context_dim=32, epochs=150, patience=50,
        embed_num_walks=4, embed_walk_length=20, embed_epochs=2,
    )

    # 1. How similar are the top-k sets the measures pick?  (APCPA)
    metapath = dataset.metapaths[-1]
    print(f"\nTop-{base.k} neighbor-set agreement with PathSim on {metapath.name}:")
    for measure in ("hetesim", "joinsim", "cosine"):
        agreement = measure_agreement(
            dataset.hin, metapath, "pathsim", measure, base.k
        )
        print(f"  {measure:<8} Jaccard {agreement:.3f}")

    # 2. Train ConCH once per ranking strategy on the same split.
    print("\nConCH test scores by filtering strategy:")
    for strategy in list(SIMILARITY_MEASURES) + ["random"]:
        config = base.with_overrides(neighbor_strategy=strategy)
        data = prepare_conch_data(dataset, config)
        trainer = ConCHTrainer(data, config).fit(split)
        scores = trainer.evaluate(split.test)
        print(
            f"  {strategy:<8} micro-F1 {scores['micro_f1']:.4f}  "
            f"macro-F1 {scores['macro_f1']:.4f}"
        )
    print(
        "\nExpected shape: all ranked measures cluster together, random"
        " trails — the ConCH_rd gap is about *ranking*, not PathSim per se."
    )


if __name__ == "__main__":
    main()
