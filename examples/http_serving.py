"""The HTTP tier end to end: a real network front door for the model.

Demonstrates the deployable service built over `repro.serve`:

1. Train once, bundle, and put an `HttpServer` in front of a
   `ModelServer` running with the production posture — **adaptive
   micro-batching** (the effective wait follows the observed request
   inter-arrival rate) and the **hot-query cache** (repeats skip the
   receptive-field gather entirely).
2. Query it with `HttpServeClient`: the in-process `ServeClient`
   surface, over the wire — answers bit-identical, error messages
   identical, load-shed retried with the same bounded backoff.
3. Push an edge delta through `POST /ingest` and watch the operator
   generation swap invalidate the hot cache atomically: post-ingest
   answers come from the new graph, never from a stale cache entry.

Usage:  python examples/http_serving.py
"""

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.api import ModelHandle, Pipeline
from repro.data import load_dataset, stratified_split
from repro.hin.graph import EdgeDelta
from repro.serve import HttpServeClient, HttpServer, ModelServer


def main() -> None:
    dataset = load_dataset("dblp")
    split = stratified_split(dataset.labels, train_fraction=0.10, seed=0)

    with tempfile.TemporaryDirectory() as tmp:
        # ---- Train once; keep the pipeline so /ingest works live. ---- #
        pipeline = Pipeline(dataset, store_dir=Path(tmp) / "run")
        estimator = pipeline.fit(split=split)
        handle = ModelHandle(pipeline.data, estimator.config,
                             estimator.trainer.model)
        server = ModelServer(
            handle,
            max_batch_size=64,
            max_wait_ms=2,
            num_workers=2,
            adaptive_wait=True,
            hot_cache_size=256,
            pipeline=pipeline,
        )
        with server, HttpServer(server) as http:
            client = HttpServeClient(http.url)
            print(f"Serving {handle} at {http.url}\n")

            # ---- Equivalence over the wire. ------------------------- #
            rng = np.random.default_rng(0)
            requests = [
                rng.integers(0, handle.num_objects, size=1 + i % 4)
                for i in range(120)
            ]
            expected = [handle.predict_nodes(ids) for ids in requests]
            answers: dict = {}

            def worker(start: int) -> None:
                for index in range(start, len(requests), 8):
                    answers[index] = client.predict_nodes(requests[index])

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            exact = all(
                np.array_equal(answers[i], expected[i])
                for i in range(len(requests))
            )
            print(f"{len(requests)} concurrent HTTP queries, all "
                  f"bit-identical to in-process answers: {exact}")

            # ---- A hot repeat: answered from the cache. ------------- #
            favorite = requests[0]
            client.predict_nodes(favorite)
            client.predict_nodes(favorite)
            stats = client.stats()
            print(f"Hot-query cache: {stats['cache_hits']} hits, "
                  f"{stats['hot_cache_entries']} entries resident")
            print(f"Adaptive wait: effective "
                  f"{stats['effective_wait_ms']:.3f} ms against an "
                  f"inter-arrival EWMA of "
                  f"{stats['interarrival_ewma_ms']:.3f} ms\n")

            # ---- Errors keep their exact in-process form. ----------- #
            try:
                client.predict_nodes([handle.num_objects + 10])
            except IndexError as exc:
                print(f"Out-of-range over HTTP -> IndexError: {exc}")
            try:
                client.predict_nodes([1.5])
            except TypeError as exc:
                print(f"Float ids over HTTP   -> TypeError: {exc}\n")

            # ---- Live ingest: generation swap + cache invalidation. - #
            generation = handle.generation
            summary = client.ingest(
                EdgeDelta.additions("writes", [0, 1, 2], [5, 6, 7])
            )
            stats = client.stats()
            print(f"POST /ingest: generation {generation} -> "
                  f"{summary['generation']}, graph version "
                  f"{summary['graph_version']}")
            print(f"Hot cache after the swap: "
                  f"{stats['hot_cache_entries']} entries (invalidated)")
            fresh = client.predict_nodes(favorite)
            agrees = np.array_equal(
                fresh, handle.predict_nodes(np.asarray(favorite))
            )
            print(f"Post-ingest answers match the new in-process "
                  f"generation: {agrees}")


if __name__ == "__main__":
    main()
