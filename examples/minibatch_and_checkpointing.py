"""Mini-batch training and model checkpointing.

Two deployment concerns the paper's full-batch prototype leaves open:

1. **Memory-bounded training** — the top-k filter bounds each object's
   contexts by k, so slicing the bipartite graphs to object batches keeps
   the working set O(batch) instead of O(n).
   (:class:`repro.core.minibatch.MiniBatchConCHTrainer`)
2. **Reusing a trained model** — `save_model` / `load_model` round-trip
   the config and every parameter through a single ``.npz`` file.

This example deliberately stays on the legacy `prepare_conch_data` /
`ConCHTrainer` entry points (now thin shims over `repro.api.Pipeline`)
to prove the pre-pipeline surface keeps working verbatim; see
`examples/pipeline_and_serving.py` for the staged `repro.api` flow.

Usage:  python examples/minibatch_and_checkpointing.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.core import (
    ConCHConfig,
    ConCHTrainer,
    MiniBatchConCHTrainer,
    load_model,
    prepare_conch_data,
    save_model,
)
from repro.data import load_dataset, stratified_split


def main() -> None:
    dataset = load_dataset("dblp")
    split = stratified_split(dataset.labels, train_fraction=0.10, seed=0)
    config = ConCHConfig(
        k=5, num_layers=2, context_dim=32, epochs=120, patience=40,
        embed_num_walks=4, embed_walk_length=20, embed_epochs=2,
    )
    data = prepare_conch_data(dataset, config)

    # --- Full-batch vs mini-batch training ----------------------------- #
    full = ConCHTrainer(data, config).fit(split)
    full_scores = full.evaluate(split.test)
    print(f"full-batch   test micro-F1 {full_scores['micro_f1']:.4f}")

    for batch_size in (64, 128):
        mini = MiniBatchConCHTrainer(data, config, batch_size=batch_size).fit(split)
        scores = mini.evaluate(split.test)
        print(
            f"batch={batch_size:<4} test micro-F1 {scores['micro_f1']:.4f} "
            f"({len(mini.recorder.records)} epochs run)"
        )

    # --- Checkpoint round-trip ----------------------------------------- #
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "conch.npz"
        save_model(full.model, path)
        print(f"\ncheckpoint written: {path.stat().st_size / 1024:.1f} KiB")

        restored = load_model(path)
        operators = [m.incidence for m in data.metapath_data]
        contexts = [Tensor(m.context_features) for m in data.metapath_data]
        with no_grad():
            logits, _ = restored(Tensor(data.features), operators, contexts)
        predictions = logits.argmax(axis=1)[split.test]
        agreement = (predictions == full.predict(split.test)).mean()
        print(f"restored model prediction agreement: {agreement:.1%}")
        assert agreement == 1.0


if __name__ == "__main__":
    main()
