"""Meta-path attention analysis on Yelp (Fig. 6b analogue).

The paper finds that ConCH's semantic attention gives the keyword
meta-path BRKRB ("restaurants whose reviews contain the same food
keyword") a much larger weight than BRURB ("restaurants visited by the
same customer") — keywords directly indicate the food category while
customers visit restaurants of many categories.

Usage:  python examples/yelp_metapath_attention.py
"""

from repro.core import ConCHConfig, ConCHTrainer, prepare_conch_data
from repro.data import load_dataset, stratified_split


def bar(weight: float, width: int = 40) -> str:
    filled = int(round(weight * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    dataset = load_dataset("yelp")
    print(f"Dataset: {dataset}")
    split = stratified_split(dataset.labels, train_fraction=0.20, seed=0)

    # Paper §V-C: k=10 and L=1 on Yelp.
    config = ConCHConfig(
        k=10,
        num_layers=1,
        context_dim=32,
        hidden_dim=64,
        out_dim=64,
        lambda_ss=0.3,
        epochs=200,
        patience=60,
    )
    data = prepare_conch_data(dataset, config)
    trainer = ConCHTrainer(data, config).fit(split)

    scores = trainer.evaluate(split.test)
    print(f"Test Micro-F1: {scores['micro_f1']:.4f}")

    weights = trainer.attention_weights()
    print("\nLearned meta-path attention (Fig. 6b analogue):")
    for metapath, weight in zip(dataset.metapaths, weights):
        print(f"  {metapath.name:<7} {weight:.3f}  {bar(weight)}")
    print(
        "\nExpected shape: BRKRB (shared food keyword) outweighs BRURB "
        "(shared customer)."
    )


if __name__ == "__main__":
    main()
