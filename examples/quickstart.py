"""Quickstart: train ConCH on the synthetic DBLP network via `repro.api`.

One call does it all — `api.fit` loads the dataset with its paper
hyper-parameters, runs the staged pipeline (discover meta-paths, compose
commuting matrices, enumerate contexts, build features) and trains; the
returned estimator answers the shared fit/predict/evaluate contract that
every model in this repo (ConCH, its ablations, the whole baseline zoo)
implements.

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro import api
from repro.data import load_dataset, stratified_split


def main() -> None:
    # 1. Load a dataset and make a stratified split (10% labeled authors).
    dataset = load_dataset("dblp")
    print(f"Dataset: {dataset}")
    split = stratified_split(dataset.labels, train_fraction=0.10, seed=0)

    # 2. Train.  Swap model="conch" for any registry baseline ("HAN",
    #    "GCN", "LabelProp", ...): steps 2-4 use only the shared
    #    Estimator contract and work for every model.
    estimator = api.fit(dataset, model="conch", split=split, seed=0)

    # 3. Evaluate on the held-out test set.
    scores = estimator.evaluate(split.test)
    print(f"\nTest Micro-F1: {scores['micro_f1']:.4f}")
    print(f"Test Macro-F1: {scores['macro_f1']:.4f}")

    # 4. Class probabilities and (where the model has them) embeddings.
    proba = estimator.predict_proba(split.test[:5])
    print(f"\nFirst 5 test authors, class probabilities:\n{np.round(proba, 3)}")
    z = estimator.embeddings()
    if z is not None:
        print(f"Fused embedding matrix: {z.shape}")

    # 5. ConCH-specific introspection: the learned meta-path attention
    #    (Fig. 6a analogue) lives on the underlying trainer.
    weights = estimator.trainer.attention_weights()
    print("\nLearned meta-path weights:")
    for metapath, weight in zip(estimator.data.metapaths, weights):
        print(f"  {metapath.name:<8} {weight:.3f}")


if __name__ == "__main__":
    main()
