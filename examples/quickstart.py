"""Quickstart: train ConCH on the synthetic DBLP network.

Runs the full pipeline — dataset generation, PathSim neighbor filtering,
meta-path context extraction, and multi-task training — then reports
test-set Micro/Macro-F1 and the learned meta-path attention weights.

Usage:  python examples/quickstart.py
"""

from repro.core import ConCHConfig, ConCHTrainer, prepare_conch_data
from repro.data import load_dataset, stratified_split


def main() -> None:
    # 1. Load a dataset (synthetic stand-in for the paper's DBLP extract).
    dataset = load_dataset("dblp")
    print(f"Dataset: {dataset}")

    # 2. Make a stratified split with 10% labeled authors.
    split = stratified_split(dataset.labels, train_fraction=0.10, seed=0)
    print(f"Split sizes: {split.sizes}")

    # 3. Configure ConCH (paper §V-C: k=5 and L=2 on DBLP).
    config = ConCHConfig(
        k=5,
        num_layers=2,
        context_dim=32,
        hidden_dim=64,
        out_dim=64,
        lambda_ss=0.3,
        epochs=200,
        patience=60,
    )

    # 4. Preprocess: PathSim top-k filtering, context features, bipartite graphs.
    data = prepare_conch_data(dataset, config)
    print(
        f"Preprocessing took {data.preprocess_seconds:.1f}s; "
        f"contexts per meta-path: "
        f"{[m.num_contexts for m in data.metapath_data]}"
    )

    # 5. Train with the multi-task objective (Eq. 14) and early stopping.
    trainer = ConCHTrainer(data, config).fit(split, verbose=True)

    # 6. Evaluate.
    scores = trainer.evaluate(split.test)
    print(f"\nTest Micro-F1: {scores['micro_f1']:.4f}")
    print(f"Test Macro-F1: {scores['macro_f1']:.4f}")

    # 7. Inspect the learned meta-path attention (Fig. 6a analogue).
    weights = trainer.attention_weights()
    print("\nLearned meta-path weights:")
    for metapath, weight in zip(dataset.metapaths, weights):
        print(f"  {metapath.name:<8} {weight:.3f}")


if __name__ == "__main__":
    main()
