"""Repo-wide test fixtures.

The commuting engine's disk-backed product store is opt-in via the
``REPRO_CACHE_DIR`` environment variable (see :mod:`repro.hin.cache`).
An ambient value would silently serve cached products to the cold-path
benches and compose-spy tests — and write ``.npz`` files into a shared
directory.  Strip it for every test, suite-wide: disk-store tests pass
explicit ``tmp_path`` cache dirs instead.
"""

import pytest


@pytest.fixture(autouse=True)
def _no_ambient_product_store(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
