"""RGCN (Schlichtkrull et al., ESWC 2018) — relational graph convolution.

The paper's related work (§II, [5]) motivates *relation-aware* graph
convolution on HINs: a single shared aggregator discards edge-type
information.  RGCN is the canonical relation-typed GCN and completes the
related-work panel:

``h_i' = σ( W_0 h_i + Σ_r Σ_{j ∈ N_r(i)} (1 / |N_r(i)|) W_r h_j )``

Each registered relation (including the automatic reverse relations, so
messages flow both ways) gets its own transform ``W_r``.  The optional
*basis decomposition* shares parameters across relations,
``W_r = Σ_b a_{rb} V_b``, which is RGCN's device for keeping the
per-relation parameter count bounded on relation-rich graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd.sparse import row_normalize, sparse_matmul
from repro.autograd.tensor import Tensor
from repro.baselines.base import SemiSupervisedTrainer, TrainSettings
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.hin.graph import HIN
from repro.nn.init import glorot_uniform
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, ModuleList, Parameter


def relation_message_operators(hin: HIN) -> List[Tuple[str, str, sp.csr_matrix]]:
    """Mean-aggregation operator per relation.

    For a relation with biadjacency ``A`` of shape ``(n_src, n_dst)`` the
    returned matrix is ``row_normalize(A.T)`` of shape ``(n_dst, n_src)``:
    applying it to source embeddings averages each destination node's
    relation-``r`` neighborhood, i.e. the ``1/c_{i,r}`` normalization of
    the RGCN propagation rule.
    """
    operators = []
    for relation in hin.relations:
        matrix = hin.relation_matrix(relation.name)
        operators.append(
            (
                relation.src_type,
                relation.dst_type,
                row_normalize(sp.csr_matrix(matrix.T)),
            )
        )
    return operators


class RelationalConv(Module):
    """One RGCN layer over typed node embeddings of a common width.

    Parameters
    ----------
    node_types:
        All node types of the HIN (each gets a self-loop transform).
    operators:
        Output of :func:`relation_message_operators`.
    dim:
        Embedding width (input and output; RGCN stacks at fixed width
        after the input projection).
    num_bases:
        If given, use basis decomposition ``W_r = Σ_b a_{rb} V_b`` with
        this many shared bases instead of independent per-relation
        transforms.
    """

    def __init__(
        self,
        node_types: List[str],
        operators: List[Tuple[str, str, sp.csr_matrix]],
        dim: int,
        rng: np.random.Generator,
        num_bases: Optional[int] = None,
    ):
        super().__init__()
        if num_bases is not None and num_bases < 1:
            raise ValueError(f"num_bases must be >= 1, got {num_bases}")
        self.node_types = node_types
        self.operators = operators
        self.num_bases = num_bases
        for node_type in node_types:
            self.register_module(f"self_{node_type}", Linear(dim, dim, rng))
        if num_bases is None:
            for index, _ in enumerate(operators):
                self.register_module(
                    f"rel_{index}", Linear(dim, dim, rng, bias=False)
                )
        else:
            self.register_parameter(
                "bases", Parameter(glorot_uniform((num_bases, dim, dim), rng))
            )
            for index, _ in enumerate(operators):
                self.register_parameter(
                    f"coeff_{index}",
                    Parameter(rng.normal(0.0, 1.0 / np.sqrt(num_bases), size=num_bases)),
                )

    def _relation_transform(self, index: int, h_src: Tensor) -> Tensor:
        if self.num_bases is None:
            return self._modules[f"rel_{index}"](h_src)
        bases = self._parameters["bases"]
        coeff = self._parameters[f"coeff_{index}"]
        weight = (coeff.reshape(self.num_bases, 1, 1) * bases).sum(axis=0)
        return h_src @ weight

    def forward(self, h: Dict[str, Tensor]) -> Dict[str, Tensor]:
        accumulated: Dict[str, Tensor] = {
            t: self._modules[f"self_{t}"](h[t]) for t in self.node_types
        }
        for index, (src_type, dst_type, operator) in enumerate(self.operators):
            message = sparse_matmul(operator, self._relation_transform(index, h[src_type]))
            accumulated[dst_type] = accumulated[dst_type] + message
        return {t: accumulated[t].relu() for t in self.node_types}


class RGCN(Module):
    """Per-type input projections + L relational conv layers + linear head."""

    def __init__(
        self,
        type_dims: Dict[str, int],
        operators: List[Tuple[str, str, sp.csr_matrix]],
        target_type: str,
        dim: int,
        num_classes: int,
        rng: np.random.Generator,
        num_layers: int = 2,
        num_bases: Optional[int] = None,
        dropout: float = 0.5,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.target_type = target_type
        self.node_types = sorted(type_dims)
        for node_type in self.node_types:
            self.register_module(
                f"in_{node_type}", Linear(type_dims[node_type], dim, rng)
            )
        self.layers = ModuleList(
            [
                RelationalConv(self.node_types, operators, dim, rng, num_bases=num_bases)
                for _ in range(num_layers)
            ]
        )
        self.dropout = Dropout(dropout, rng)
        self.head = Linear(dim, num_classes, rng)

    def forward(self, features: Dict[str, Tensor]) -> Tensor:
        h = {t: self._modules[f"in_{t}"](features[t]).tanh() for t in self.node_types}
        for layer in self.layers:
            h = layer(h)
        return self.head(self.dropout(h[self.target_type]))


def RGCNMethod(
    dim: int = 32,
    num_layers: int = 2,
    num_bases: Optional[int] = None,
    settings: Optional[TrainSettings] = None,
):
    """Harness-compatible RGCN (semi-supervised on the full typed graph)."""
    settings = settings or TrainSettings()

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        rng = np.random.default_rng(seed)
        hin = dataset.hin
        operators = relation_message_operators(hin)
        features = {t: Tensor(hin.features(t)) for t in hin.node_types}
        type_dims = {t: hin.features(t).shape[1] for t in hin.node_types}
        model = RGCN(
            type_dims,
            operators,
            dataset.target_type,
            dim,
            dataset.num_classes,
            rng,
            num_layers=num_layers,
            num_bases=num_bases,
        )
        trainer = SemiSupervisedTrainer(
            model,
            forward=lambda m: m(features),
            labels=dataset.labels,
            settings=settings,
            method_name="RGCN",
        ).fit(split)
        return MethodOutput(
            test_predictions=trainer.predict(split.test),
            test_scores=trainer.predict_proba(split.test),
            recorder=trainer.recorder,
        )

    return method
