"""MVGRL (Hassani & Khasahmadi, 2020): contrastive multi-view learning.

Two structural views of the (meta-path-projected) graph — the normalized
adjacency (local) and a PPR diffusion matrix (global) — are encoded by
separate GCN layers; a bilinear discriminator contrasts node embeddings
of one view against the *other* view's graph summary, with row-shuffled
features as negatives.  Unsupervised; embeddings go to logistic
regression.

Note: the diffusion matrix is dense (``n × n``).  On the AMiner-scale
dataset this is exactly the out-of-memory failure mode the paper reports;
the registry marks MVGRL as unavailable there.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.autograd.sparse import normalize_adjacency, sparse_matmul
from repro.autograd.tensor import Tensor, no_grad
from repro.baselines.base import choose_best_metapath
from repro.baselines.logreg import logreg_validation_score
from repro.core.discriminator import shuffle_features
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.nn.layers import Bilinear, Linear
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module
from repro.nn.optim import Adam


def ppr_diffusion(adjacency: sp.spmatrix, alpha: float = 0.2) -> np.ndarray:
    """Personalized-PageRank diffusion ``α (I − (1−α) Â)^{-1}`` (dense)."""
    norm = normalize_adjacency(adjacency).toarray()
    n = norm.shape[0]
    return alpha * np.linalg.inv(np.eye(n) - (1.0 - alpha) * norm)


class _GCNEncoder(Module):
    """Single-layer GCN encoder (dense or sparse operator)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng)

    def forward(self, operator, features: Tensor) -> Tensor:
        projected = self.linear(features)
        if sp.issparse(operator):
            return sparse_matmul(operator, projected).relu()
        return (Tensor(operator) @ projected).relu()


class MVGRLModel(Module):
    """Two encoders + cross-view bilinear discriminator."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.encoder_local = _GCNEncoder(in_dim, out_dim, rng)
        self.encoder_global = _GCNEncoder(in_dim, out_dim, rng)
        self.discriminator = Bilinear(out_dim, out_dim, rng)

    def loss(
        self,
        adj_op,
        diff_op,
        features: Tensor,
        shuffled: Tensor,
    ) -> Tensor:
        h_local = self.encoder_local(adj_op, features)
        h_global = self.encoder_global(diff_op, features)
        h_local_neg = self.encoder_local(adj_op, shuffled)
        h_global_neg = self.encoder_global(diff_op, shuffled)
        s_local = h_local.mean(axis=0)
        s_global = h_global.mean(axis=0)

        n = features.shape[0]
        ones = np.ones(n)
        zeros = np.zeros(n)
        # Cross-view contrast: local nodes vs global summary and vice versa.
        terms = [
            (self.discriminator(h_local, s_global), ones),
            (self.discriminator(h_global, s_local), ones),
            (self.discriminator(h_local_neg, s_global), zeros),
            (self.discriminator(h_global_neg, s_local), zeros),
        ]
        total = None
        for logits, target in terms:
            term = binary_cross_entropy_with_logits(logits, target)
            total = term if total is None else total + term
        return total * 0.25

    def embed(self, adj_op, diff_op, features: Tensor) -> np.ndarray:
        with no_grad():
            h_local = self.encoder_local(adj_op, features)
            h_global = self.encoder_global(diff_op, features)
        return (h_local.data + h_global.data).copy()


def mvgrl_embeddings(
    adjacency: sp.spmatrix,
    features: np.ndarray,
    dim: int = 32,
    epochs: int = 100,
    lr: float = 0.005,
    alpha: float = 0.2,
    seed: int = 0,
) -> np.ndarray:
    """Train MVGRL unsupervised; return fused node embeddings."""
    rng = np.random.default_rng(seed)
    adj_op = normalize_adjacency(adjacency)
    diff_op = ppr_diffusion(adjacency, alpha)
    x = Tensor(features)
    model = MVGRLModel(features.shape[1], dim, rng)
    optimizer = Adam(model.parameters(), lr=lr)
    for _ in range(epochs):
        model.train()
        optimizer.zero_grad()
        shuffled = Tensor(shuffle_features(features, rng))
        loss = model.loss(adj_op, diff_op, x, shuffled)
        loss.backward()
        optimizer.step()
    model.eval()
    return model.embed(adj_op, diff_op, x)


def MVGRLMethod(dim: int = 32, epochs: int = 80, max_nodes: int = 1500):
    """Harness-compatible MVGRL (best meta-path projection, then logreg).

    Raises ``MemoryError`` beyond ``max_nodes`` to mirror the paper's
    out-of-memory failure on AMiner (the dense diffusion matrix).
    """

    cache = {}

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        if dataset.num_targets > max_nodes:
            raise MemoryError(
                f"MVGRL diffusion matrix would be dense "
                f"{dataset.num_targets}x{dataset.num_targets} "
                f"(paper reports the same OOM on AMiner)"
            )

        def run(adjacency, metapath):
            # Unsupervised embeddings are split-independent: cache them.
            key = (id(dataset), metapath.name, seed)
            if key not in cache:
                cache[key] = mvgrl_embeddings(
                    adjacency, dataset.features, dim=dim, epochs=epochs, seed=seed
                )
            return logreg_validation_score(
                cache[key], dataset.labels, split, dataset.num_classes, seed=seed
            )

        outcome = choose_best_metapath(dataset, split, run)
        return MethodOutput(
            test_predictions=np.asarray(outcome["test_predictions"]),
            test_scores=outcome.get("test_scores"),
            extras={"metapath": outcome["metapath"].name},
        )

    return method
