"""GNetMine (Ji et al., ECML-PKDD 2010): graph-regularized transduction.

The classic pre-deep-learning HIN classifier: per-type predictive score
matrices ``F_t`` are iteratively smoothed over every relation's
symmetrically-normalized biadjacency while labeled target nodes are
anchored to their one-hot labels:

    F_t ← (1−α)·mean_r( S_r F_{t'} ) + α·Y_t

where ``S_r = D_src^{-1/2} R D_dst^{-1/2}`` and ``Y_t`` is nonzero only
for the labeled target nodes.  No features, no learning — structure only.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.hin.graph import HIN


def _symmetric_normalize(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """``D_row^{-1/2} R D_col^{-1/2}`` with zero-degree safety."""
    matrix = sp.csr_matrix(matrix, dtype=np.float64)
    row_deg = np.asarray(matrix.sum(axis=1)).ravel()
    col_deg = np.asarray(matrix.sum(axis=0)).ravel()
    row_inv = np.zeros_like(row_deg)
    col_inv = np.zeros_like(col_deg)
    row_inv[row_deg > 0] = row_deg[row_deg > 0] ** -0.5
    col_inv[col_deg > 0] = col_deg[col_deg > 0] ** -0.5
    return sp.csr_matrix(sp.diags(row_inv) @ matrix @ sp.diags(col_inv))


def gnetmine_scores(
    hin: HIN,
    target_type: str,
    train_indices: np.ndarray,
    train_labels: np.ndarray,
    num_classes: int,
    alpha: float = 0.4,
    iterations: int = 50,
) -> np.ndarray:
    """Run the propagation; returns target-type score matrix ``(n, r)``."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    # Seed matrix for the target type.
    seeds: Dict[str, np.ndarray] = {
        t: np.zeros((hin.num_nodes(t), num_classes)) for t in hin.node_types
    }
    seeds[target_type][train_indices, train_labels] = 1.0
    scores = {t: seeds[t].copy() for t in hin.node_types}

    normalized = [
        (
            hin.relation_info(rel.name).src_type,
            hin.relation_info(rel.name).dst_type,
            _symmetric_normalize(hin.relation_matrix(rel.name)),
        )
        for rel in hin.relations
    ]
    incoming: Dict[str, List] = {t: [] for t in hin.node_types}
    for src_type, dst_type, matrix in normalized:
        # Propagation into src_type from dst_type scores.
        incoming[src_type].append((matrix, dst_type))

    for _ in range(iterations):
        updated: Dict[str, np.ndarray] = {}
        for node_type in hin.node_types:
            terms = [
                matrix @ scores[other] for matrix, other in incoming[node_type]
            ]
            if terms:
                propagated = np.mean(terms, axis=0)
            else:
                propagated = np.zeros_like(scores[node_type])
            updated[node_type] = (1.0 - alpha) * propagated + alpha * seeds[node_type]
        scores = updated
    return scores[target_type]


def GNetMineMethod(alpha: float = 0.4, iterations: int = 50):
    """Harness-compatible GNetMine."""

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        del seed  # deterministic
        scores = gnetmine_scores(
            dataset.hin,
            dataset.target_type,
            split.train,
            dataset.labels[split.train],
            dataset.num_classes,
            alpha=alpha,
            iterations=iterations,
        )
        return MethodOutput(
            test_predictions=scores[split.test].argmax(axis=1),
            test_scores=scores[split.test],
        )

    return method
