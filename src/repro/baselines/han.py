"""HAN (Wang et al., WWW 2019): Heterogeneous graph Attention Network.

Per meta-path, a node-level GAT attention aggregates *all* meta-path
neighbors (no filtering — the paper contrasts this with ConCH's top-k);
a semantic-level attention then fuses the per-meta-path embeddings.  HAN
does not use meta-path contexts, which is exactly the property the
ConCH_nc comparison probes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.baselines.base import SemiSupervisedTrainer, TrainSettings
from repro.baselines.gat import GATLayer, edges_with_self_loops
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.hin.adjacency import metapath_binary_adjacency
from repro.nn.init import glorot_uniform
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, ModuleList, Parameter


class HANSemanticAttention(Module):
    """HAN's semantic attention: per-path score = mean_i q·tanh(W h_i + b)."""

    def __init__(self, in_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.project = Linear(in_dim, hidden_dim, rng)
        self.q = Parameter(glorot_uniform((hidden_dim,), rng), name="q")

    def forward(self, per_path: List[Tensor]) -> Tuple[Tensor, np.ndarray]:
        scores = []
        for h in per_path:
            transformed = self.project(h).tanh()       # (n, hidden)
            scores.append((transformed @ self.q).mean())
        raw = ops.stack(scores)                         # (num_paths,)
        weights = ops.softmax(raw, axis=0)
        stacked = ops.stack(per_path, axis=0)           # (q, n, d)
        expanded = weights.reshape(-1, 1, 1)
        fused = (stacked * expanded).sum(axis=0)
        return fused, weights.data.copy()


class HAN(Module):
    """Node-level attention per meta-path + semantic fusion + linear head."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_metapaths: int,
        rng: np.random.Generator,
        num_heads: int = 4,
        semantic_dim: int = 32,
        dropout: float = 0.5,
    ):
        super().__init__()
        self.node_attention = ModuleList(
            [
                GATLayer(in_dim, hidden_dim, num_heads, rng, concat=True)
                for _ in range(num_metapaths)
            ]
        )
        fused_dim = hidden_dim * num_heads
        self.semantic = HANSemanticAttention(fused_dim, semantic_dim, rng)
        self.dropout = Dropout(dropout, rng)
        self.head = Linear(fused_dim, num_classes, rng)
        self._last_weights: Optional[np.ndarray] = None

    def forward(
        self,
        edge_lists: List[Tuple[np.ndarray, np.ndarray]],
        features: Tensor,
    ) -> Tensor:
        per_path = [
            layer(src, dst, features).elu()
            for layer, (src, dst) in zip(self.node_attention, edge_lists)
        ]
        fused, weights = self.semantic(per_path)
        self._last_weights = weights
        return self.head(self.dropout(fused))

    def semantic_weights(self) -> Optional[np.ndarray]:
        return self._last_weights


def HANMethod(
    hidden_dim: int = 16,
    num_heads: int = 4,
    settings: Optional[TrainSettings] = None,
):
    """Harness-compatible HAN method."""
    settings = settings or TrainSettings()

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        rng = np.random.default_rng(seed)
        edge_lists = [
            edges_with_self_loops(metapath_binary_adjacency(dataset.hin, mp))
            for mp in dataset.metapaths
        ]
        x = Tensor(dataset.features)
        model = HAN(
            dataset.features.shape[1],
            hidden_dim,
            dataset.num_classes,
            len(dataset.metapaths),
            rng,
            num_heads=num_heads,
        )
        trainer = SemiSupervisedTrainer(
            model,
            forward=lambda m: m(edge_lists, x),
            labels=dataset.labels,
            settings=settings,
            method_name="HAN",
        ).fit(split)
        return MethodOutput(
            test_predictions=trainer.predict(split.test),
            test_scores=trainer.predict_proba(split.test),
            recorder=trainer.recorder,
            extras={"semantic_weights": model.semantic_weights()},
        )

    return method
