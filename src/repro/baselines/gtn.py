"""GTN (Yun et al., NeurIPS 2019) — Graph Transformer Networks.

The paper's related work (§II, [56]) cites GTN as the line of work that
*learns* meta-paths instead of taking them as input: each "graph
transformer" hop selects a soft convex combination of the HIN's relation
adjacencies (plus the identity, so shorter paths survive), and stacking
hops composes the selections into a soft meta-path per channel.

This is the memory-friendly FastGTN formulation: instead of materializing
the dense composed adjacency ``A = Q_L ⋯ Q_1`` (the original GTN's
``n × n`` products, which its authors later replaced for exactly this
reason), each hop is applied directly to the feature matrix:

``H ← Σ_r softmax(w)_r · Ã_r H``

with ``Ã_r`` the row-normalized global adjacency of relation ``r``.
Per-channel soft meta-paths end in a shared linear head over the target
type's rows; :meth:`GTN.relation_weights` exposes the learned selections,
the GTN analogue of ConCH's Fig-6 attention readout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.sparse import row_normalize, sparse_matmul
from repro.autograd.tensor import Tensor
from repro.baselines.base import SemiSupervisedTrainer, TrainSettings
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.hin.graph import HIN
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, ModuleList, Parameter


def global_relation_operators(hin: HIN) -> Tuple[List[str], List[sp.csr_matrix]]:
    """Row-normalized global ``(total, total)`` operator per relation + identity.

    Operator ``M_r`` has ``M_r[dst, src] = 1/deg`` for every edge of the
    relation, so ``M_r @ H`` pulls averaged source embeddings into the
    destination rows — one typed hop.  The identity operator (named
    ``"I"``) lets a channel realize meta-paths shorter than the number of
    stacked hops, exactly as in GTN.
    """
    offsets = hin.global_offsets()
    total = hin.total_nodes
    names: List[str] = ["I"]
    operators: List[sp.csr_matrix] = [sp.identity(total, format="csr")]
    for relation in hin.relations:
        matrix = hin.relation_matrix(relation.name).tocoo()
        rows = matrix.col + offsets[relation.dst_type]
        cols = matrix.row + offsets[relation.src_type]
        data = np.ones(rows.shape[0], dtype=np.float64)
        global_matrix = sp.csr_matrix((data, (rows, cols)), shape=(total, total))
        names.append(relation.name)
        operators.append(row_normalize(global_matrix))
    return names, operators


class GTChannel(Module):
    """One soft meta-path: ``num_hops`` learned relation selections."""

    def __init__(
        self,
        num_relations: int,
        num_hops: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        if num_hops < 1:
            raise ValueError(f"num_hops must be >= 1, got {num_hops}")
        self.num_hops = num_hops
        for hop in range(num_hops):
            self.register_parameter(
                f"select_{hop}",
                Parameter(rng.normal(0.0, 0.1, size=num_relations)),
            )

    def hop_weights(self, hop: int) -> Tensor:
        return ops.softmax(self._parameters[f"select_{hop}"])

    def forward(self, operators: List[sp.csr_matrix], h: Tensor) -> Tensor:
        for hop in range(self.num_hops):
            alpha = self.hop_weights(hop)
            mixed = None
            for index, operator in enumerate(operators):
                term = sparse_matmul(operator, h) * alpha[index]
                mixed = term if mixed is None else mixed + term
            h = mixed
        return h


class GTN(Module):
    """Per-type input projection + C soft meta-path channels + linear head."""

    def __init__(
        self,
        type_dims: Dict[str, int],
        relation_names: List[str],
        target_type: str,
        dim: int,
        num_classes: int,
        rng: np.random.Generator,
        num_channels: int = 2,
        num_hops: int = 2,
        dropout: float = 0.5,
    ):
        super().__init__()
        if num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {num_channels}")
        self.target_type = target_type
        self.relation_names = relation_names
        self.node_types = sorted(type_dims)
        for node_type in self.node_types:
            self.register_module(
                f"in_{node_type}", Linear(type_dims[node_type], dim, rng)
            )
        self.channels = ModuleList(
            [GTChannel(len(relation_names), num_hops, rng) for _ in range(num_channels)]
        )
        self.dropout = Dropout(dropout, rng)
        self.head = Linear(dim * num_channels, num_classes, rng)

    def _global_features(self, features: Dict[str, Tensor], offsets: Dict[str, int]) -> Tensor:
        projected = [
            self._modules[f"in_{t}"](features[t]).tanh()
            for t in sorted(offsets, key=offsets.get)
        ]
        return ops.concatenate(projected, axis=0)

    def forward(
        self,
        operators: List[sp.csr_matrix],
        features: Dict[str, Tensor],
        offsets: Dict[str, int],
        target_rows: np.ndarray,
    ) -> Tensor:
        h = self._global_features(features, offsets)
        outputs = [channel(operators, h) for channel in self.channels]
        combined = ops.concatenate(outputs, axis=1).relu()
        target = combined.index_select(target_rows)
        return self.head(self.dropout(target))

    def relation_weights(self) -> List[List[Dict[str, float]]]:
        """Learned soft meta-path per channel: one name→weight dict per hop."""
        readout: List[List[Dict[str, float]]] = []
        for channel in self.channels:
            hops = []
            for hop in range(channel.num_hops):
                weights = channel.hop_weights(hop).numpy()
                hops.append(
                    {name: float(w) for name, w in zip(self.relation_names, weights)}
                )
            readout.append(hops)
        return readout


def GTNMethod(
    dim: int = 32,
    num_channels: int = 2,
    num_hops: int = 2,
    settings: Optional[TrainSettings] = None,
):
    """Harness-compatible GTN (learned soft meta-paths, semi-supervised)."""
    settings = settings or TrainSettings()

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        rng = np.random.default_rng(seed)
        hin = dataset.hin
        names, operators = global_relation_operators(hin)
        offsets = hin.global_offsets()
        start = offsets[dataset.target_type]
        target_rows = np.arange(start, start + dataset.num_targets)
        features = {t: Tensor(hin.features(t)) for t in hin.node_types}
        type_dims = {t: hin.features(t).shape[1] for t in hin.node_types}
        model = GTN(
            type_dims,
            names,
            dataset.target_type,
            dim,
            dataset.num_classes,
            rng,
            num_channels=num_channels,
            num_hops=num_hops,
        )
        trainer = SemiSupervisedTrainer(
            model,
            forward=lambda m: m(operators, features, offsets, target_rows),
            labels=dataset.labels,
            settings=settings,
            method_name="GTN",
        ).fit(split)
        return MethodOutput(
            test_predictions=trainer.predict(split.test),
            test_scores=trainer.predict_proba(split.test),
            recorder=trainer.recorder,
            extras={"relation_weights": model.relation_weights()},
        )

    return method
