"""GAT (Velickovic et al., ICLR 2018).

Graph attention over a fixed edge list: per-edge scores
``LeakyReLU(a_src·h_u + a_dst·h_v)`` normalized by a segment softmax over
each destination's incoming edges, multi-head concatenation in the hidden
layer and head averaging at the output.  HIN protocol as for GCN: best
meta-path projection by validation score.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.tensor import Tensor, no_grad
from repro.baselines.base import SemiSupervisedTrainer, TrainSettings, choose_best_metapath
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.eval.metrics import micro_f1
from repro.nn.init import glorot_uniform
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, ModuleList, Parameter


def edges_with_self_loops(adjacency: sp.spmatrix) -> Tuple[np.ndarray, np.ndarray]:
    """(src, dst) arrays of the adjacency plus one self-loop per node."""
    coo = sp.coo_matrix(adjacency)
    n = adjacency.shape[0]
    src = np.concatenate([coo.row, np.arange(n)])
    dst = np.concatenate([coo.col, np.arange(n)])
    return src.astype(np.int64), dst.astype(np.int64)


class GATLayer(Module):
    """One multi-head graph-attention layer."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_heads: int,
        rng: np.random.Generator,
        concat: bool = True,
        negative_slope: float = 0.2,
    ):
        super().__init__()
        self.num_heads = num_heads
        self.concat = concat
        self.negative_slope = negative_slope
        self.projections = ModuleList(
            [Linear(in_dim, out_dim, rng, bias=False) for _ in range(num_heads)]
        )
        self.attn_src = ModuleList()
        self.attn_dst = ModuleList()
        for head in range(num_heads):
            self.register_parameter(
                f"a_src_{head}", Parameter(glorot_uniform((out_dim,), rng))
            )
            self.register_parameter(
                f"a_dst_{head}", Parameter(glorot_uniform((out_dim,), rng))
            )

    def forward(self, src: np.ndarray, dst: np.ndarray, h: Tensor) -> Tensor:
        n = h.shape[0]
        head_outputs: List[Tensor] = []
        for head in range(self.num_heads):
            projected = self.projections[head](h)            # (n, d)
            a_src = self._parameters[f"a_src_{head}"]
            a_dst = self._parameters[f"a_dst_{head}"]
            score_src = (projected @ a_src).index_select(src)
            score_dst = (projected @ a_dst).index_select(dst)
            scores = (score_src + score_dst).leaky_relu(self.negative_slope)
            alpha = ops.segment_softmax(scores, dst, n)      # normalize per dst
            messages = projected.index_select(src) * alpha.reshape(-1, 1)
            head_outputs.append(ops.segment_sum(messages, dst, n))
        if self.concat:
            return ops.concatenate(head_outputs, axis=1)
        total = head_outputs[0]
        for out in head_outputs[1:]:
            total = total + out
        return total * (1.0 / self.num_heads)


class GAT(Module):
    """Two-layer GAT classifier."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        rng: np.random.Generator,
        num_heads: int = 4,
        dropout: float = 0.5,
    ):
        super().__init__()
        self.layer1 = GATLayer(in_dim, hidden_dim, num_heads, rng, concat=True)
        self.layer2 = GATLayer(
            hidden_dim * num_heads, num_classes, 1, rng, concat=False
        )
        self.dropout = Dropout(dropout, rng)

    def forward(self, src: np.ndarray, dst: np.ndarray, features: Tensor) -> Tensor:
        hidden = self.layer1(src, dst, features).elu()
        hidden = self.dropout(hidden)
        return self.layer2(src, dst, hidden)


def _run_gat_on_graph(
    adjacency: sp.csr_matrix,
    features: np.ndarray,
    labels: np.ndarray,
    split: Split,
    num_classes: int,
    seed: int,
    hidden_dim: int,
    num_heads: int,
    settings: TrainSettings,
) -> Dict[str, object]:
    rng = np.random.default_rng(seed)
    src, dst = edges_with_self_loops(adjacency)
    x = Tensor(features)
    model = GAT(features.shape[1], hidden_dim, num_classes, rng, num_heads)
    trainer = SemiSupervisedTrainer(
        model,
        forward=lambda m: m(src, dst, x),
        labels=labels,
        settings=settings,
        method_name="GAT",
    ).fit(split)
    val_pred = trainer.predict(split.val)
    return {
        "val_metric": micro_f1(labels[split.val], val_pred),
        "test_predictions": trainer.predict(split.test),
        "test_scores": trainer.predict_proba(split.test),
        "recorder": trainer.recorder,
    }


def GATMethod(
    hidden_dim: int = 16,
    num_heads: int = 4,
    settings: Optional[TrainSettings] = None,
):
    """Harness-compatible GAT method (best meta-path projection)."""
    settings = settings or TrainSettings()

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        outcome = choose_best_metapath(
            dataset,
            split,
            lambda adjacency, metapath: _run_gat_on_graph(
                adjacency,
                dataset.features,
                dataset.labels,
                split,
                dataset.num_classes,
                seed,
                hidden_dim,
                num_heads,
                settings,
            ),
        )
        return MethodOutput(
            test_predictions=np.asarray(outcome["test_predictions"]),
            test_scores=outcome.get("test_scores"),
            recorder=outcome.get("recorder"),
            extras={"metapath": outcome["metapath"].name},
        )

    return method
