"""Multinomial logistic regression.

The downstream classifier for all unsupervised baselines (node2vec,
metapath2vec, MVGRL, HetGNN, HDGI): embeddings in, labels out.
Trained full-batch with Adam and early stopping on validation accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.splits import Split
from repro.eval.metrics import micro_f1, softmax
from repro.nn.layers import Linear
from repro.nn.losses import cross_entropy
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.schedulers import EarlyStopping


@dataclass
class LogRegSettings:
    lr: float = 0.05
    weight_decay: float = 0.0005
    epochs: int = 300
    patience: int = 50


class LogisticRegressionClassifier(Module):
    """Softmax regression ``logits = X W^T + b``."""

    def __init__(self, in_dim: int, num_classes: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(in_dim, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.linear(x)


def _standardize(features: np.ndarray) -> np.ndarray:
    mean = features.mean(axis=0, keepdims=True)
    std = features.std(axis=0, keepdims=True)
    std[std == 0] = 1.0
    return (features - mean) / std


def fit_logreg_on_embeddings(
    embeddings: np.ndarray,
    labels: np.ndarray,
    split: Split,
    num_classes: int,
    seed: int = 0,
    settings: Optional[LogRegSettings] = None,
    return_scores: bool = False,
):
    """Train logreg on train embeddings; return test predictions.

    Features are standardized (embedding scales vary wildly across
    methods, and logreg is scale-sensitive).

    With ``return_scores=True`` returns ``(test_pred, test_scores)``
    where ``test_scores`` are the softmax class probabilities of the
    same logits the predictions argmax over — so embedding baselines
    can report calibrated ``predict_proba`` instead of a one-hot
    fallback.  The predictions themselves are unchanged either way.
    """
    settings = settings or LogRegSettings()
    labels = np.asarray(labels)
    features = Tensor(_standardize(np.asarray(embeddings, dtype=np.float64)))
    rng = np.random.default_rng(seed)
    model = LogisticRegressionClassifier(
        features.shape[1], num_classes, rng
    )
    optimizer = Adam(
        model.parameters(), lr=settings.lr, weight_decay=settings.weight_decay
    )
    stopper = EarlyStopping(patience=settings.patience, mode="max")

    train_x = features[split.train]
    train_y = labels[split.train]
    for epoch in range(settings.epochs):
        model.train()
        optimizer.zero_grad()
        loss = cross_entropy(model(train_x), train_y)
        loss.backward()
        optimizer.step()

        model.eval()
        with no_grad():
            val_pred = model(features[split.val]).argmax(axis=1)
        val_metric = micro_f1(labels[split.val], val_pred)
        if stopper.step(val_metric, model, epoch):
            break
    stopper.restore(model)

    model.eval()
    with no_grad():
        test_logits = model(features[split.test])
    test_pred = test_logits.argmax(axis=1)
    if return_scores:
        return test_pred, softmax(test_logits.data)
    return test_pred


def logreg_validation_score(
    embeddings: np.ndarray,
    labels: np.ndarray,
    split: Split,
    num_classes: int,
    seed: int = 0,
    settings: Optional[LogRegSettings] = None,
) -> Dict[str, object]:
    """Fit logreg and report both val metric and test predictions.

    Used when a method must choose among several embedding variants
    (e.g. metapath2vec picks its best single meta-path on validation).
    """
    settings = settings or LogRegSettings()
    labels = np.asarray(labels)
    features = Tensor(_standardize(np.asarray(embeddings, dtype=np.float64)))
    rng = np.random.default_rng(seed)
    model = LogisticRegressionClassifier(features.shape[1], num_classes, rng)
    optimizer = Adam(
        model.parameters(), lr=settings.lr, weight_decay=settings.weight_decay
    )
    stopper = EarlyStopping(patience=settings.patience, mode="max")
    for epoch in range(settings.epochs):
        model.train()
        optimizer.zero_grad()
        loss = cross_entropy(model(features[split.train]), labels[split.train])
        loss.backward()
        optimizer.step()
        model.eval()
        with no_grad():
            val_pred = model(features[split.val]).argmax(axis=1)
        if stopper.step(micro_f1(labels[split.val], val_pred), model, epoch):
            break
    stopper.restore(model)
    model.eval()
    with no_grad():
        val_pred = model(features[split.val]).argmax(axis=1)
        test_logits = model(features[split.test])
    test_pred = test_logits.argmax(axis=1)
    return {
        "val_metric": micro_f1(labels[split.val], val_pred),
        "test_predictions": test_pred,
        "test_scores": softmax(test_logits.data),
    }
