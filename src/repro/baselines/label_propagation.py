"""Label propagation (Zhou et al., NeurIPS 2004) on meta-path projections.

Local-and-global-consistency propagation ``F ← β·S·F + (1−β)·Y`` on the
symmetric-normalized adjacency of each meta-path projection; the
validation set picks the best meta-path (same protocol as the other
homogeneous baselines).
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import scipy.sparse as sp

from repro.autograd.sparse import normalize_adjacency
from repro.baselines.base import choose_best_metapath
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.eval.metrics import micro_f1


def propagate_labels(
    adjacency: sp.spmatrix,
    train_indices: np.ndarray,
    train_labels: np.ndarray,
    num_nodes: int,
    num_classes: int,
    beta: float = 0.9,
    iterations: int = 50,
) -> np.ndarray:
    """Return the propagated score matrix ``(n, r)``."""
    if not 0.0 < beta < 1.0:
        raise ValueError(f"beta must be in (0, 1), got {beta}")
    operator = normalize_adjacency(adjacency, add_self_loops=False)
    seeds = np.zeros((num_nodes, num_classes))
    seeds[train_indices, train_labels] = 1.0
    scores = seeds.copy()
    for _ in range(iterations):
        scores = beta * (operator @ scores) + (1.0 - beta) * seeds
    return scores


def LabelPropagationMethod(beta: float = 0.9, iterations: int = 50):
    """Harness-compatible label propagation (best meta-path projection)."""

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        del seed  # deterministic

        def run(adjacency, metapath):
            scores = propagate_labels(
                adjacency,
                split.train,
                dataset.labels[split.train],
                dataset.num_targets,
                dataset.num_classes,
                beta=beta,
                iterations=iterations,
            )
            val_pred = scores[split.val].argmax(axis=1)
            return {
                "val_metric": micro_f1(dataset.labels[split.val], val_pred),
                "test_predictions": scores[split.test].argmax(axis=1),
                "test_scores": scores[split.test],
            }

        outcome = choose_best_metapath(dataset, split, run)
        return MethodOutput(
            test_predictions=np.asarray(outcome["test_predictions"]),
            test_scores=outcome.get("test_scores"),
            extras={"metapath": outcome["metapath"].name},
        )

    return method
