"""GCN (Kipf & Welling, ICLR 2017).

Two-layer graph convolution ``softmax(Â ReLU(Â X W0) W1)`` with the
symmetric normalization ``Â = D^{-1/2}(A+I)D^{-1/2}``.  Applied to an HIN
by projecting it onto each meta-path's binary adjacency and reporting the
best validation result (paper §V-B protocol).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.autograd.sparse import normalize_adjacency, sparse_matmul
from repro.autograd.tensor import Tensor, no_grad
from repro.baselines.base import SemiSupervisedTrainer, TrainSettings, choose_best_metapath
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.eval.metrics import micro_f1
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module


class GCN(Module):
    """Two-layer GCN over a fixed normalized adjacency."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        rng: np.random.Generator,
        dropout: float = 0.5,
    ):
        super().__init__()
        self.layer1 = Linear(in_dim, hidden_dim, rng)
        self.layer2 = Linear(hidden_dim, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, norm_adj: sp.csr_matrix, features: Tensor) -> Tensor:
        hidden = sparse_matmul(norm_adj, self.layer1(features)).relu()
        hidden = self.dropout(hidden)
        return sparse_matmul(norm_adj, self.layer2(hidden))


def _run_gcn_on_graph(
    adjacency: sp.csr_matrix,
    features: np.ndarray,
    labels: np.ndarray,
    split: Split,
    num_classes: int,
    seed: int,
    hidden_dim: int,
    settings: TrainSettings,
) -> Dict[str, object]:
    rng = np.random.default_rng(seed)
    norm_adj = normalize_adjacency(adjacency)
    x = Tensor(features)
    model = GCN(features.shape[1], hidden_dim, num_classes, rng)
    trainer = SemiSupervisedTrainer(
        model,
        forward=lambda m: m(norm_adj, x),
        labels=labels,
        settings=settings,
        method_name="GCN",
    ).fit(split)
    val_pred = trainer.predict(split.val)
    return {
        "val_metric": micro_f1(labels[split.val], val_pred),
        "test_predictions": trainer.predict(split.test),
        "test_scores": trainer.predict_proba(split.test),
        "recorder": trainer.recorder,
    }


def GCNMethod(
    hidden_dim: int = 32,
    settings: Optional[TrainSettings] = None,
):
    """Harness-compatible GCN method (best meta-path projection)."""
    settings = settings or TrainSettings()

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        outcome = choose_best_metapath(
            dataset,
            split,
            lambda adjacency, metapath: _run_gcn_on_graph(
                adjacency,
                dataset.features,
                dataset.labels,
                split,
                dataset.num_classes,
                seed,
                hidden_dim,
                settings,
            ),
        )
        return MethodOutput(
            test_predictions=np.asarray(outcome["test_predictions"]),
            test_scores=outcome.get("test_scores"),
            recorder=outcome.get("recorder"),
            extras={"metapath": outcome["metapath"].name},
        )

    return method
