"""MAGNN (Fu et al., WebConf 2020) — architecture-level reproduction.

MAGNN aggregates *every* meta-path instance independently: per target
node, each instance is encoded (here: mean of the type-projected features
of its nodes — the paper's "mean" instance encoder variant), an
instance-level attention weighs the instances of each node, and a
semantic attention fuses meta-paths.  Semi-supervised.

This faithful instance-level treatment is exactly why MAGNN is expensive:
the number of instances explodes with meta-path length and hub degree.
``instance_budget`` caps the total; exceeding it raises ``MemoryError`` —
mirroring the paper's out-of-memory failure on Yelp, whose keyword hubs
generate enormous instance sets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor, no_grad
from repro.baselines.base import SemiSupervisedTrainer, TrainSettings
from repro.baselines.han import HANSemanticAttention
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.hin.adjacency import relation_chain
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath
from repro.nn.init import glorot_uniform
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, ModuleList, Parameter


def enumerate_instances_from_all(
    hin: HIN,
    metapath: MetaPath,
    per_node_cap: int = 64,
    instance_budget: int = 200_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """All path instances of ``metapath`` starting at every source node.

    Returns ``(instances, anchors)``: an ``(m, len(metapath))`` array of
    node ids (one column per meta-path position) and the ``(m,)`` array of
    anchor (start) node ids.  Raises ``MemoryError`` when the total
    instance count exceeds ``instance_budget``.
    """
    chain = [m.tocsr() for m in relation_chain(hin, metapath)]
    hops = len(chain)
    num_sources = hin.num_nodes(metapath.source_type)

    instances: List[Tuple[int, ...]] = []
    for start in range(num_sources):
        found = 0
        stack: List[Tuple[int, Tuple[int, ...]]] = [(0, (start,))]
        while stack and found < per_node_cap:
            depth, path = stack.pop()
            node = path[-1]
            adj = chain[depth]
            neighbors = adj.indices[adj.indptr[node]: adj.indptr[node + 1]]
            for neighbor in neighbors:
                extended = path + (int(neighbor),)
                if depth == hops - 1:
                    if extended[0] != extended[-1]:  # skip self-instances
                        instances.append(extended)
                        found += 1
                        if len(instances) > instance_budget:
                            raise MemoryError(
                                f"meta-path {metapath.name!r} generated more than "
                                f"{instance_budget} instances (MAGNN's storage blow-up; "
                                f"the paper reports the same OOM on Yelp)"
                            )
                        if found >= per_node_cap:
                            break
                else:
                    stack.append((depth + 1, extended))
    if not instances:
        return (
            np.empty((0, hops + 1), dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    array = np.asarray(instances, dtype=np.int64)
    return array, array[:, 0]


class MAGNN(Module):
    """Instance-level + semantic attention over meta-path instances."""

    def __init__(
        self,
        type_dims: Dict[str, int],
        metapaths: List[MetaPath],
        hidden_dim: int,
        num_classes: int,
        rng: np.random.Generator,
        dropout: float = 0.5,
    ):
        super().__init__()
        self.metapaths = metapaths
        # Type-specific feature projections into a common space.
        self.type_names = sorted(type_dims)
        self.projections = ModuleList(
            [Linear(type_dims[t], hidden_dim, rng) for t in self.type_names]
        )
        # Instance-level attention per meta-path.
        for index in range(len(metapaths)):
            self.register_parameter(
                f"attn_{index}", Parameter(glorot_uniform((2 * hidden_dim,), rng))
            )
        self.semantic = HANSemanticAttention(hidden_dim, 32, rng)
        self.dropout = Dropout(dropout, rng)
        self.head = Linear(hidden_dim, num_classes, rng)

    def project_features(self, features: Dict[str, Tensor]) -> Dict[str, Tensor]:
        projected: Dict[str, Tensor] = {}
        for projection, name in zip(self.projections, self.type_names):
            projected[name] = projection(features[name])
        return projected

    def _instance_embeddings(
        self,
        metapath: MetaPath,
        instances: np.ndarray,
        projected: Dict[str, Tensor],
    ) -> Tensor:
        """Mean encoder over the instance's type-projected node features."""
        parts: List[Tensor] = []
        for position, node_type in enumerate(metapath.node_types):
            parts.append(projected[node_type].index_select(instances[:, position]))
        total = parts[0]
        for part in parts[1:]:
            total = total + part
        return total * (1.0 / len(parts))

    def forward(
        self,
        features: Dict[str, Tensor],
        instance_data: List[Tuple[np.ndarray, np.ndarray]],
    ) -> Tensor:
        projected = self.project_features(features)
        target_type = self.metapaths[0].source_type
        h_target = projected[target_type]
        n = h_target.shape[0]

        per_path: List[Tensor] = []
        for index, (metapath, (instances, anchors)) in enumerate(
            zip(self.metapaths, instance_data)
        ):
            if instances.shape[0] == 0:
                per_path.append(h_target)
                continue
            h_instances = self._instance_embeddings(metapath, instances, projected)
            attn = self._parameters[f"attn_{index}"]
            anchor_h = h_target.index_select(anchors)
            joined = ops.concatenate([anchor_h, h_instances], axis=1)
            scores = (joined @ attn).leaky_relu(0.2)
            alpha = ops.segment_softmax(scores, anchors, n)
            weighted = h_instances * alpha.reshape(-1, 1)
            aggregated = ops.segment_sum(weighted, anchors, n)
            per_path.append(aggregated.elu())

        fused, _ = self.semantic(per_path)
        return self.head(self.dropout(fused))


def MAGNNMethod(
    hidden_dim: int = 32,
    per_node_cap: int = 64,
    instance_budget: int = 200_000,
    settings: Optional[TrainSettings] = None,
):
    """Harness-compatible MAGNN (semi-supervised)."""
    settings = settings or TrainSettings()

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        rng = np.random.default_rng(seed)
        hin = dataset.hin
        instance_data = [
            enumerate_instances_from_all(
                hin, mp, per_node_cap=per_node_cap, instance_budget=instance_budget
            )
            for mp in dataset.metapaths
        ]
        features = {t: Tensor(hin.features(t)) for t in hin.node_types}
        type_dims = {t: hin.features(t).shape[1] for t in hin.node_types}
        model = MAGNN(
            type_dims,
            dataset.metapaths,
            hidden_dim,
            dataset.num_classes,
            rng,
        )
        trainer = SemiSupervisedTrainer(
            model,
            forward=lambda m: m(features, instance_data),
            labels=dataset.labels,
            settings=settings,
            method_name="MAGNN",
        ).fit(split)
        return MethodOutput(
            test_predictions=trainer.predict(split.test),
            test_scores=trainer.predict_proba(split.test),
            recorder=trainer.recorder,
            extras={
                "num_instances": [d[0].shape[0] for d in instance_data],
            },
        )

    return method
