"""Shared baseline plumbing.

``SemiSupervisedTrainer`` factors out the full-batch training loop every
supervised GNN baseline uses (Adam + cross entropy + early stopping on
validation micro-F1, same protocol as ConCH for fairness, §V-C).

``choose_best_metapath`` implements the paper's protocol for homogeneous
methods: "we apply them by converting an HIN to a homogeneous network
using meta-paths and report the best result" — the choice is made on the
validation set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor, no_grad
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.eval.metrics import macro_f1, micro_f1, softmax
from repro.eval.timing import ConvergenceRecorder
from repro.hin.adjacency import metapath_binary_adjacency
from repro.hin.metapath import MetaPath
from repro.nn.losses import cross_entropy
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.schedulers import EarlyStopping


@dataclass
class TrainSettings:
    """Optimization settings shared by the supervised baselines."""

    lr: float = 0.005
    weight_decay: float = 0.0005
    epochs: int = 200
    patience: int = 50

    def __post_init__(self):
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")


class SemiSupervisedTrainer:
    """Full-batch semi-supervised trainer for logits-producing models.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.module.Module`.
    forward:
        Callable ``forward(model) -> Tensor`` producing logits ``(n, r)``
        over *all* target nodes (the closure owns features/adjacency).
    labels:
        Full label vector.
    settings:
        Optimization settings.
    """

    def __init__(
        self,
        model: Module,
        forward: Callable[[Module], Tensor],
        labels: np.ndarray,
        settings: Optional[TrainSettings] = None,
        method_name: str = "",
    ):
        self.model = model
        self.forward = forward
        self.labels = np.asarray(labels)
        self.settings = settings or TrainSettings()
        self.recorder = ConvergenceRecorder(method=method_name)

    def fit(self, split: Split) -> "SemiSupervisedTrainer":
        optimizer = Adam(
            self.model.parameters(),
            lr=self.settings.lr,
            weight_decay=self.settings.weight_decay,
        )
        stopper = EarlyStopping(patience=self.settings.patience, mode="max")
        self.recorder.start()
        for epoch in range(self.settings.epochs):
            self.model.train()
            optimizer.zero_grad()
            logits = self.forward(self.model)
            loss = cross_entropy(logits[split.train], self.labels[split.train])
            loss.backward()
            optimizer.step()

            val_pred = self.predict(split.val)
            val_metric = micro_f1(self.labels[split.val], val_pred)
            self.recorder.log(epoch, loss.item(), val_metric)
            if stopper.step(val_metric, self.model, epoch):
                break
        stopper.restore(self.model)
        return self

    def _logits(self) -> Tensor:
        """One eval-mode forward over all nodes (shared by predictions)."""
        self.model.eval()
        with no_grad():
            return self.forward(self.model)

    def predict(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        predictions = self._logits().argmax(axis=1)
        if indices is None:
            return predictions
        return predictions[np.asarray(indices)]

    def predict_proba(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Softmax class probabilities over all (or the given) nodes.

        The estimator-contract counterpart of :meth:`predict`
        (:class:`repro.api.Estimator`).
        """
        proba = softmax(self._logits().data)
        if indices is None:
            return proba
        return proba[np.asarray(indices)]

    def evaluate(self, indices: np.ndarray, num_classes: int) -> Dict[str, float]:
        indices = np.asarray(indices)
        predictions = self.predict(indices)
        truth = self.labels[indices]
        return {
            "micro_f1": micro_f1(truth, predictions),
            "macro_f1": macro_f1(truth, predictions, num_classes),
        }


def choose_best_metapath(
    dataset: HINDataset,
    split: Split,
    run_on_graph: Callable[[sp.csr_matrix, MetaPath], Dict[str, object]],
) -> Dict[str, object]:
    """Paper protocol for homogeneous baselines on HINs.

    Runs ``run_on_graph(adjacency, metapath)`` for every meta-path's binary
    projection; each call must return a dict with at least ``val_metric``
    and ``test_predictions``.  The result with the best validation metric
    is returned (augmented with the winning meta-path under ``metapath``).
    """
    best: Optional[Dict[str, object]] = None
    for metapath in dataset.metapaths:
        adjacency = metapath_binary_adjacency(dataset.hin, metapath)
        outcome = run_on_graph(adjacency, metapath)
        if "val_metric" not in outcome or "test_predictions" not in outcome:
            raise KeyError("run_on_graph must return val_metric and test_predictions")
        if best is None or outcome["val_metric"] > best["val_metric"]:
            best = dict(outcome)
            best["metapath"] = metapath
    assert best is not None  # dataset.metapaths is non-empty by validation
    return best
