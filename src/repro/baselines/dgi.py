"""Deep Graph Infomax (Veličković et al., ICLR 2019).

DGI is the self-supervised objective ConCH's ``L_ss`` is modeled on
(§IV-E cites [45] directly): a GCN encoder produces node embeddings
``h_i``; the graph summary is ``s = σ(mean_i h_i)``; a bilinear
discriminator is trained to score ``(h_i, s)`` pairs high and
``(ĥ_j, s)`` pairs — encodings of *feature-shuffled* corruptions — low.

Running plain DGI next to ConCH isolates what the heterogeneous parts of
ConCH add on top of the bare mutual-information objective.  Unsupervised;
embeddings go to logistic regression via the best-meta-path protocol.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.autograd.sparse import normalize_adjacency, sparse_matmul
from repro.autograd.tensor import Tensor, no_grad
from repro.baselines.base import choose_best_metapath
from repro.baselines.logreg import logreg_validation_score
from repro.core.discriminator import shuffle_features
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.nn.layers import Bilinear, Linear
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module
from repro.nn.optim import Adam


class DGIModel(Module):
    """One-layer GCN encoder + summary readout + bilinear discriminator."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.encoder = Linear(in_dim, out_dim, rng)
        self.discriminator = Bilinear(out_dim, out_dim, rng)

    def encode(self, norm_adj: sp.csr_matrix, features: Tensor) -> Tensor:
        # PReLU in the original; ReLU is the closest activation we ship.
        return sparse_matmul(norm_adj, self.encoder(features)).relu()

    def loss(
        self, norm_adj: sp.csr_matrix, features: Tensor, shuffled: Tensor
    ) -> Tensor:
        h_pos = self.encode(norm_adj, features)
        h_neg = self.encode(norm_adj, shuffled)
        summary = h_pos.mean(axis=0).sigmoid()
        n = features.shape[0]
        positive = binary_cross_entropy_with_logits(
            self.discriminator(h_pos, summary), np.ones(n)
        )
        negative = binary_cross_entropy_with_logits(
            self.discriminator(h_neg, summary), np.zeros(n)
        )
        return (positive + negative) * 0.5


def dgi_embeddings(
    adjacency: sp.spmatrix,
    features: np.ndarray,
    dim: int = 32,
    epochs: int = 100,
    lr: float = 0.005,
    seed: int = 0,
) -> np.ndarray:
    """Train DGI unsupervised; return node embeddings ``(n, dim)``."""
    rng = np.random.default_rng(seed)
    norm_adj = normalize_adjacency(adjacency)
    x = Tensor(features)
    model = DGIModel(features.shape[1], dim, rng)
    optimizer = Adam(model.parameters(), lr=lr)
    for _ in range(epochs):
        model.train()
        optimizer.zero_grad()
        shuffled = Tensor(shuffle_features(features, rng))
        loss = model.loss(norm_adj, x, shuffled)
        loss.backward()
        optimizer.step()
    model.eval()
    with no_grad():
        embeddings = model.encode(norm_adj, x)
    return embeddings.data.copy()


def DGIMethod(dim: int = 32, epochs: int = 80):
    """Harness-compatible DGI (best meta-path projection, then logreg)."""

    cache = {}

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        def run(adjacency, metapath):
            # Unsupervised embeddings are split-independent: cache them.
            key = (id(dataset), metapath.name, seed)
            if key not in cache:
                cache[key] = dgi_embeddings(
                    adjacency, dataset.features, dim=dim, epochs=epochs, seed=seed
                )
            return logreg_validation_score(
                cache[key], dataset.labels, split, dataset.num_classes, seed=seed
            )

        outcome = choose_best_metapath(dataset, split, run)
        return MethodOutput(
            test_predictions=np.asarray(outcome["test_predictions"]),
            test_scores=outcome.get("test_scores"),
            extras={"metapath": outcome["metapath"].name},
        )

    return method
