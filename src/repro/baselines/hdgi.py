"""HDGI (Ren et al., 2019): Heterogeneous Deep Graph Infomax.

DGI extended to HINs: a HAN-style encoder (node-level GCN per meta-path +
semantic attention) produces node embeddings whose mutual information
with a global summary is maximized against feature-shuffled negatives.
Unsupervised; embeddings go to logistic regression.

The paper observes HDGI degrades sharply with scarce labels (its encoder
is label-free, so the thin logreg on top gets little supervision) — the
same behaviour emerges here.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.sparse import normalize_adjacency, sparse_matmul
from repro.autograd.tensor import Tensor, no_grad
from repro.baselines.logreg import fit_logreg_on_embeddings
from repro.core.discriminator import shuffle_features
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.hin.adjacency import metapath_binary_adjacency
from repro.nn.init import glorot_uniform
from repro.nn.layers import Bilinear, Linear
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.optim import Adam


class HDGIEncoder(Module):
    """Per-meta-path GCN + HAN-style semantic attention."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_metapaths: int,
        rng: np.random.Generator,
        semantic_dim: int = 16,
    ):
        super().__init__()
        self.gcns = ModuleList(
            [Linear(in_dim, out_dim, rng) for _ in range(num_metapaths)]
        )
        self.semantic_project = Linear(out_dim, semantic_dim, rng)
        self.q = Parameter(glorot_uniform((semantic_dim,), rng), name="q")

    def forward(self, operators: List[sp.csr_matrix], features: Tensor) -> Tensor:
        per_path: List[Tensor] = []
        for gcn, operator in zip(self.gcns, operators):
            per_path.append(sparse_matmul(operator, gcn(features)).relu())
        scores = []
        for h in per_path:
            scores.append((self.semantic_project(h).tanh() @ self.q).mean())
        weights = ops.softmax(ops.stack(scores), axis=0)
        stacked = ops.stack(per_path, axis=0)
        return (stacked * weights.reshape(-1, 1, 1)).sum(axis=0)


class HDGIModel(Module):
    """Encoder + DGI discriminator."""

    def __init__(
        self, in_dim: int, out_dim: int, num_metapaths: int, rng: np.random.Generator
    ):
        super().__init__()
        self.encoder = HDGIEncoder(in_dim, out_dim, num_metapaths, rng)
        self.discriminator = Bilinear(out_dim, out_dim, rng)

    def loss(
        self,
        operators: List[sp.csr_matrix],
        features: Tensor,
        shuffled: Tensor,
    ) -> Tensor:
        h_pos = self.encoder(operators, features)
        h_neg = self.encoder(operators, shuffled)
        summary = h_pos.mean(axis=0).sigmoid()
        n = features.shape[0]
        loss_pos = binary_cross_entropy_with_logits(
            self.discriminator(h_pos, summary), np.ones(n)
        )
        loss_neg = binary_cross_entropy_with_logits(
            self.discriminator(h_neg, summary), np.zeros(n)
        )
        return (loss_pos + loss_neg) * 0.5


def hdgi_embeddings(
    dataset: HINDataset,
    dim: int = 32,
    epochs: int = 100,
    lr: float = 0.005,
    seed: int = 0,
) -> np.ndarray:
    """Train HDGI unsupervised on the dataset's meta-path projections."""
    rng = np.random.default_rng(seed)
    operators = [
        normalize_adjacency(metapath_binary_adjacency(dataset.hin, mp))
        for mp in dataset.metapaths
    ]
    features = dataset.features
    x = Tensor(features)
    model = HDGIModel(features.shape[1], dim, len(operators), rng)
    optimizer = Adam(model.parameters(), lr=lr)
    for _ in range(epochs):
        model.train()
        optimizer.zero_grad()
        shuffled = Tensor(shuffle_features(features, rng))
        loss = model.loss(operators, x, shuffled)
        loss.backward()
        optimizer.step()
    model.eval()
    with no_grad():
        embeddings = model.encoder(operators, x)
    return embeddings.data.copy()


def HDGIMethod(dim: int = 32, epochs: int = 80):
    """Harness-compatible HDGI (unsupervised encoder + logreg).

    The encoder is label-free, so its embeddings are cached per
    (dataset, seed) across splits.
    """
    cache = {}

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        key = (id(dataset), seed)
        if key not in cache:
            cache[key] = hdgi_embeddings(dataset, dim=dim, epochs=epochs, seed=seed)
        embeddings = cache[key]
        predictions, scores = fit_logreg_on_embeddings(
            embeddings, dataset.labels, split, dataset.num_classes,
            seed=seed, return_scores=True,
        )
        return MethodOutput(
            test_predictions=np.asarray(predictions), test_scores=scores
        )

    return method
