"""HGT (Hu et al., WWW 2020) — Heterogeneous Graph Transformer.

Architecture-level reproduction: per layer, every relation
``(src_type → dst_type)`` computes multi-head scaled dot-product
attention with type-specific Query projections (per destination type),
Key/Value projections (per source type) and a relation-specific linear on
the keys; scores of *all* incoming relations of a destination type are
softmax-normalized jointly per node, messages aggregated, residual added.
The target type's final embeddings feed a linear head; semi-supervised.

The parameter count (per-type Q/K/V per head per layer plus per-relation
matrices) is deliberately preserved — it is the source of HGT's training
cost in the paper's efficiency study (Fig. 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.baselines.base import SemiSupervisedTrainer, TrainSettings
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.hin.graph import HIN
from repro.nn.init import glorot_uniform
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, ModuleList, Parameter


def relation_edge_lists(hin: HIN) -> List[Tuple[str, str, np.ndarray, np.ndarray]]:
    """(src_type, dst_type, src_ids, dst_ids) for every registered relation."""
    result = []
    for relation in hin.relations:
        matrix = hin.relation_matrix(relation.name).tocoo()
        result.append(
            (
                relation.src_type,
                relation.dst_type,
                matrix.row.astype(np.int64),
                matrix.col.astype(np.int64),
            )
        )
    return result


class HGTLayer(Module):
    """One heterogeneous transformer convolution layer."""

    def __init__(
        self,
        node_types: List[str],
        relations: List[Tuple[str, str, np.ndarray, np.ndarray]],
        dim: int,
        num_heads: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.node_types = node_types
        self.relations = relations
        # Per-type projections.
        for node_type in node_types:
            self.register_module(f"q_{node_type}", Linear(dim, dim, rng, bias=False))
            self.register_module(f"k_{node_type}", Linear(dim, dim, rng, bias=False))
            self.register_module(f"v_{node_type}", Linear(dim, dim, rng, bias=False))
            self.register_module(f"out_{node_type}", Linear(dim, dim, rng))
        # Per-relation key/value transforms and priors.
        for index, _ in enumerate(relations):
            self.register_parameter(
                f"w_att_{index}",
                Parameter(glorot_uniform((self.num_heads, self.head_dim, self.head_dim), rng)),
            )
            self.register_parameter(
                f"w_msg_{index}",
                Parameter(glorot_uniform((self.num_heads, self.head_dim, self.head_dim), rng)),
            )
            self.register_parameter(
                f"mu_{index}", Parameter(np.ones(self.num_heads))
            )

    def _split_heads(self, x: Tensor) -> Tensor:
        n = x.shape[0]
        return x.reshape(n, self.num_heads, self.head_dim)

    def forward(self, h: Dict[str, Tensor]) -> Dict[str, Tensor]:
        # Precompute Q/K/V per type.
        queries = {
            t: self._split_heads(self._modules[f"q_{t}"](h[t])) for t in self.node_types
        }
        keys = {
            t: self._split_heads(self._modules[f"k_{t}"](h[t])) for t in self.node_types
        }
        values = {
            t: self._split_heads(self._modules[f"v_{t}"](h[t])) for t in self.node_types
        }

        # Gather per-destination-type score/message fragments across relations.
        per_dst_scores: Dict[str, List[Tensor]] = {t: [] for t in self.node_types}
        per_dst_msgs: Dict[str, List[Tensor]] = {t: [] for t in self.node_types}
        per_dst_index: Dict[str, List[np.ndarray]] = {t: [] for t in self.node_types}

        scale = 1.0 / np.sqrt(self.head_dim)
        for index, (src_type, dst_type, src, dst) in enumerate(self.relations):
            if src.size == 0:
                continue
            w_att = self._parameters[f"w_att_{index}"]
            w_msg = self._parameters[f"w_msg_{index}"]
            mu = self._parameters[f"mu_{index}"]
            k_edges = keys[src_type].index_select(src)       # (e, H, d)
            q_edges = queries[dst_type].index_select(dst)    # (e, H, d)
            v_edges = values[src_type].index_select(src)     # (e, H, d)
            # Relation-specific transforms: k' = k @ W_att[h], v' = v @ W_msg[h].
            k_parts, v_parts = [], []
            for head in range(self.num_heads):
                k_parts.append(k_edges[:, head, :] @ w_att[head])
                v_parts.append(v_edges[:, head, :] @ w_msg[head])
            k_trans = ops.stack(k_parts, axis=1)             # (e, H, d)
            v_trans = ops.stack(v_parts, axis=1)
            scores = (q_edges * k_trans).sum(axis=2) * scale  # (e, H)
            scores = scores * mu.reshape(1, -1)
            per_dst_scores[dst_type].append(scores)
            per_dst_msgs[dst_type].append(v_trans)
            per_dst_index[dst_type].append(dst)

        # Joint softmax per destination node across all incoming relations.
        new_h: Dict[str, Tensor] = {}
        for node_type in self.node_types:
            if not per_dst_scores[node_type]:
                new_h[node_type] = h[node_type]
                continue
            scores = ops.concatenate(per_dst_scores[node_type], axis=0)  # (E, H)
            messages = ops.concatenate(per_dst_msgs[node_type], axis=0)  # (E, H, d)
            dst_all = np.concatenate(per_dst_index[node_type])
            n = h[node_type].shape[0]
            head_outputs: List[Tensor] = []
            for head in range(self.num_heads):
                alpha = ops.segment_softmax(scores[:, head], dst_all, n)
                weighted = messages[:, head, :] * alpha.reshape(-1, 1)
                head_outputs.append(ops.segment_sum(weighted, dst_all, n))
            aggregated = ops.concatenate(head_outputs, axis=1)           # (n, dim)
            out = self._modules[f"out_{node_type}"](aggregated.elu())
            new_h[node_type] = out + h[node_type]  # residual
        return new_h


class HGT(Module):
    """Input projections + L HGT layers + linear head on the target type."""

    def __init__(
        self,
        type_dims: Dict[str, int],
        relations: List[Tuple[str, str, np.ndarray, np.ndarray]],
        target_type: str,
        dim: int,
        num_classes: int,
        rng: np.random.Generator,
        num_layers: int = 2,
        num_heads: int = 2,
        dropout: float = 0.5,
    ):
        super().__init__()
        self.target_type = target_type
        self.node_types = sorted(type_dims)
        for node_type in self.node_types:
            self.register_module(
                f"in_{node_type}", Linear(type_dims[node_type], dim, rng)
            )
        self.layers = ModuleList(
            [
                HGTLayer(self.node_types, relations, dim, num_heads, rng)
                for _ in range(num_layers)
            ]
        )
        self.dropout = Dropout(dropout, rng)
        self.head = Linear(dim, num_classes, rng)

    def forward(self, features: Dict[str, Tensor]) -> Tensor:
        h = {
            t: self._modules[f"in_{t}"](features[t]).tanh() for t in self.node_types
        }
        for layer in self.layers:
            h = layer(h)
        return self.head(self.dropout(h[self.target_type]))


def HGTMethod(
    dim: int = 32,
    num_layers: int = 2,
    num_heads: int = 2,
    settings: Optional[TrainSettings] = None,
):
    """Harness-compatible HGT (semi-supervised on the full typed graph)."""
    settings = settings or TrainSettings()

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        rng = np.random.default_rng(seed)
        hin = dataset.hin
        relations = relation_edge_lists(hin)
        features = {t: Tensor(hin.features(t)) for t in hin.node_types}
        type_dims = {t: hin.features(t).shape[1] for t in hin.node_types}
        model = HGT(
            type_dims,
            relations,
            dataset.target_type,
            dim,
            dataset.num_classes,
            rng,
            num_layers=num_layers,
            num_heads=num_heads,
        )
        trainer = SemiSupervisedTrainer(
            model,
            forward=lambda m: m(features),
            labels=dataset.labels,
            settings=settings,
            method_name="HGT",
        ).fit(split)
        return MethodOutput(
            test_predictions=trainer.predict(split.test),
            test_scores=trainer.predict_proba(split.test),
            recorder=trainer.recorder,
        )

    return method
