"""HetGNN (Zhang et al., KDD 2019) — architecture-level reproduction.

HetGNN groups a node's heterogeneous neighbors by type, encodes each
group, and fuses the per-type group embeddings with attention; training
is unsupervised (graph-context skip-gram loss), and the embeddings feed a
logistic regression (as in the paper's protocol for unsupervised methods).

Simplification (documented in DESIGN.md): the Bi-LSTM content/neighbor
encoders are replaced by mean-pooling + a type-specific linear layer —
at CPU scale the LSTM adds parameters without changing the method's
type-grouped aggregation structure, which is what the comparison probes.
Neighbor groups are reached through schema-shortest type paths (HetGNN's
random walk with restart also collects multi-hop typed neighbors).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.sparse import row_normalize, sparse_matmul
from repro.autograd.tensor import Tensor, no_grad
from repro.baselines.logreg import fit_logreg_on_embeddings
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.hin.adjacency import metapath_binary_adjacency
from repro.hin.graph import HIN
from repro.nn.init import glorot_uniform
from repro.nn.layers import Linear
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.optim import Adam


def type_reach_operators(
    hin: HIN, target_type: str, max_hops: int = 2
) -> Dict[str, sp.csr_matrix]:
    """Row-normalized reachability from target nodes to each node type.

    BFS over the schema finds the shortest type-path from ``target_type``
    to every other type (up to ``max_hops``); the operator is the
    row-normalized product of the corresponding adjacency chain.
    """
    schema = hin.schema()
    # BFS over types.
    parents: Dict[str, Tuple[str, None]] = {target_type: None}
    queue = deque([(target_type, 0)])
    while queue:
        current, depth = queue.popleft()
        if depth >= max_hops:
            continue
        for other in schema.node_types:
            if other in parents:
                continue
            if schema.are_connected(current, other):
                parents[other] = current
                queue.append((other, depth + 1))

    operators: Dict[str, sp.csr_matrix] = {}
    for node_type, parent in parents.items():
        if parent is None:
            continue
        # Reconstruct the type path target -> ... -> node_type.
        chain: List[str] = [node_type]
        cursor = parent
        while cursor is not None:
            chain.append(cursor)
            cursor = parents[cursor]
        chain.reverse()
        operator: Optional[sp.csr_matrix] = None
        for src, dst in zip(chain[:-1], chain[1:]):
            step = row_normalize(hin.adjacency(src, dst))
            operator = step if operator is None else sp.csr_matrix(operator @ step)
        operators[node_type] = operator
    return operators


class HetGNNEncoder(Module):
    """Type-grouped aggregation with vanilla attention over groups."""

    def __init__(
        self,
        type_dims: Dict[str, int],
        target_type: str,
        out_dim: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.target_type = target_type
        self.group_types = sorted(t for t in type_dims if t != target_type)
        self.self_encoder = Linear(type_dims[target_type], out_dim, rng)
        self.group_encoders = ModuleList(
            [Linear(type_dims[t], out_dim, rng) for t in self.group_types]
        )
        self.attn = Parameter(glorot_uniform((2 * out_dim,), rng), name="attn")

    def forward(
        self,
        features: Dict[str, Tensor],
        operators: Dict[str, sp.csr_matrix],
    ) -> Tensor:
        h_self = self.self_encoder(features[self.target_type]).relu()
        groups: List[Tensor] = [h_self]
        for encoder, node_type in zip(self.group_encoders, self.group_types):
            if node_type not in operators:
                continue
            pooled = sparse_matmul(operators[node_type], features[node_type])
            groups.append(encoder(pooled).relu())
        # Vanilla attention: score_g = LeakyReLU(attn · [h_self || h_g]).
        scores = []
        for group in groups:
            joined = ops.concatenate([h_self, group], axis=1)
            scores.append((joined @ self.attn).leaky_relu(0.2))
        raw = ops.stack(scores, axis=1)                 # (n, g)
        weights = ops.softmax(raw, axis=1)
        stacked = ops.stack(groups, axis=1)             # (n, g, d)
        return (stacked * weights.reshape(weights.shape[0], -1, 1)).sum(axis=1)


def _positive_pairs(dataset: HINDataset) -> np.ndarray:
    """Target-type co-occurrence pairs: union of all meta-path projections."""
    pairs: List[np.ndarray] = []
    for metapath in dataset.metapaths:
        coo = metapath_binary_adjacency(dataset.hin, metapath).tocoo()
        pairs.append(np.stack([coo.row, coo.col], axis=1))
    return np.concatenate(pairs, axis=0)


def hetgnn_embeddings(
    dataset: HINDataset,
    dim: int = 32,
    epochs: int = 60,
    batch_pairs: int = 512,
    lr: float = 0.005,
    seed: int = 0,
) -> np.ndarray:
    """Unsupervised HetGNN training; returns target-node embeddings."""
    rng = np.random.default_rng(seed)
    hin = dataset.hin
    operators = type_reach_operators(hin, dataset.target_type)
    features = {t: Tensor(hin.features(t)) for t in hin.node_types}
    type_dims = {t: hin.features(t).shape[1] for t in hin.node_types}
    model = HetGNNEncoder(type_dims, dataset.target_type, dim, rng)
    optimizer = Adam(model.parameters(), lr=lr)

    positives = _positive_pairs(dataset)
    n = dataset.num_targets
    for _ in range(epochs):
        model.train()
        optimizer.zero_grad()
        h = model(features, operators)
        batch = positives[rng.integers(0, positives.shape[0], size=batch_pairs)]
        negatives = rng.integers(0, n, size=batch_pairs)
        anchor = h.index_select(batch[:, 0])
        positive = h.index_select(batch[:, 1])
        negative = h.index_select(negatives)
        pos_logits = (anchor * positive).sum(axis=1)
        neg_logits = (anchor * negative).sum(axis=1)
        loss = binary_cross_entropy_with_logits(
            pos_logits, np.ones(batch_pairs)
        ) + binary_cross_entropy_with_logits(neg_logits, np.zeros(batch_pairs))
        loss.backward()
        optimizer.step()

    model.eval()
    with no_grad():
        embeddings = model(features, operators)
    return embeddings.data.copy()


def HetGNNMethod(dim: int = 32, epochs: int = 60):
    """Harness-compatible HetGNN (unsupervised + logreg).

    The encoder is label-free, so its embeddings are cached per
    (dataset, seed) across splits.
    """
    cache = {}

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        key = (id(dataset), seed)
        if key not in cache:
            cache[key] = hetgnn_embeddings(dataset, dim=dim, epochs=epochs, seed=seed)
        embeddings = cache[key]
        predictions, scores = fit_logreg_on_embeddings(
            embeddings, dataset.labels, split, dataset.num_classes,
            seed=seed, return_scores=True,
        )
        return MethodOutput(
            test_predictions=np.asarray(predictions), test_scores=scores
        )

    return method
