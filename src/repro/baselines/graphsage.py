"""GraphSAGE (Hamilton et al., NeurIPS 2017): sampled-neighborhood
aggregation.

The paper contrasts ConCH's PathSim *filter* with GraphSAGE-style
neighbor *sampling* (§IV-A: "the sampling process itself could be
time-consuming and less relevant neighbors may be sampled").  This
implementation makes that comparison concrete: per epoch, each node draws
a fresh uniform sample of at most ``sample_size`` neighbors; a layer
computes

    h_v = ReLU( W · [ x_v  ||  mean_{u ∈ S(v)} x_u ] )

Applied to an HIN through the usual best-meta-path projection protocol.
At inference the full (unsampled) mean aggregation is used, which makes
predictions deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.autograd.ops import concatenate
from repro.autograd.sparse import sparse_matmul
from repro.autograd.tensor import Tensor
from repro.baselines.base import SemiSupervisedTrainer, TrainSettings, choose_best_metapath
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.eval.metrics import micro_f1
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module


def sampled_mean_operator(
    adjacency: sp.csr_matrix, sample_size: int, rng: np.random.Generator
) -> sp.csr_matrix:
    """Row-stochastic operator over a fresh uniform neighbor sample.

    Every node with more than ``sample_size`` neighbors keeps a uniform
    random subset; rows are normalized to mean-aggregate.  Zero-degree
    rows stay zero (the node then aggregates only itself via the concat).
    """
    if sample_size <= 0:
        raise ValueError(f"sample_size must be positive, got {sample_size}")
    adjacency = adjacency.tocsr()
    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    vals: List[np.ndarray] = []
    for row in range(adjacency.shape[0]):
        neighbors = adjacency.indices[
            adjacency.indptr[row]: adjacency.indptr[row + 1]
        ]
        if neighbors.size == 0:
            continue
        if neighbors.size > sample_size:
            neighbors = rng.choice(neighbors, size=sample_size, replace=False)
        rows.append(np.full(neighbors.size, row, dtype=np.int64))
        cols.append(neighbors.astype(np.int64))
        vals.append(np.full(neighbors.size, 1.0 / neighbors.size))
    if not rows:
        return sp.csr_matrix(adjacency.shape)
    return sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=adjacency.shape,
    )


def full_mean_operator(adjacency: sp.csr_matrix) -> sp.csr_matrix:
    """Row-stochastic mean over the *entire* neighborhood (inference)."""
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    scale = np.divide(1.0, degrees, out=np.zeros_like(degrees), where=degrees > 0)
    return sp.csr_matrix(sp.diags(scale) @ adjacency)


class SAGELayer(Module):
    """One mean-aggregator GraphSAGE layer (concat variant)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(2 * in_dim, out_dim, rng)

    def forward(self, operator: sp.csr_matrix, x: Tensor) -> Tensor:
        aggregated = sparse_matmul(operator, x)
        return self.linear(concatenate([x, aggregated], axis=1))


class GraphSAGE(Module):
    """Two SAGE layers + dropout; logits over all nodes."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        rng: np.random.Generator,
        dropout: float = 0.5,
    ):
        super().__init__()
        self.layer1 = SAGELayer(in_dim, hidden_dim, rng)
        self.layer2 = SAGELayer(hidden_dim, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, operator: sp.csr_matrix, x: Tensor) -> Tensor:
        hidden = self.layer1(operator, x).relu()
        hidden = self.dropout(hidden)
        return self.layer2(operator, hidden)


def _run_sage_on_graph(
    adjacency: sp.csr_matrix,
    features: np.ndarray,
    labels: np.ndarray,
    split: Split,
    num_classes: int,
    seed: int,
    hidden_dim: int,
    sample_size: int,
    settings: TrainSettings,
) -> Dict[str, object]:
    rng = np.random.default_rng(seed)
    sample_rng = np.random.default_rng(seed + 1)
    full_op = full_mean_operator(adjacency)
    x = Tensor(features)
    model = GraphSAGE(features.shape[1], hidden_dim, num_classes, rng)

    def forward(m: GraphSAGE) -> Tensor:
        if m.training:
            operator = sampled_mean_operator(adjacency, sample_size, sample_rng)
        else:
            operator = full_op
        return m(operator, x)

    trainer = SemiSupervisedTrainer(
        model, forward=forward, labels=labels, settings=settings,
        method_name="GraphSAGE",
    ).fit(split)
    val_pred = trainer.predict(split.val)
    return {
        "val_metric": micro_f1(labels[split.val], val_pred),
        "test_predictions": trainer.predict(split.test),
        "test_scores": trainer.predict_proba(split.test),
        "recorder": trainer.recorder,
    }


def GraphSAGEMethod(
    hidden_dim: int = 32,
    sample_size: int = 10,
    settings: Optional[TrainSettings] = None,
):
    """Harness-compatible GraphSAGE (best meta-path projection)."""
    settings = settings or TrainSettings()

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        outcome = choose_best_metapath(
            dataset,
            split,
            lambda adjacency, metapath: _run_sage_on_graph(
                adjacency,
                dataset.features,
                dataset.labels,
                split,
                dataset.num_classes,
                seed,
                hidden_dim,
                sample_size,
                settings,
            ),
        )
        return MethodOutput(
            test_predictions=np.asarray(outcome["test_predictions"]),
            test_scores=outcome.get("test_scores"),
            recorder=outcome.get("recorder"),
            extras={"metapath": outcome["metapath"].name},
        )

    return method
