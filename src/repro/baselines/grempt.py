"""Grempt (Wan et al., SDM 2015): graph-regularized meta-path-based
transductive regression.

The paper's §II cites Grempt as the classical meta-path alternative to
GNetMine: per-class predictive scores ``f`` are fit by minimizing

    Σ_P w_P · fᵀ L_P f  +  μ · ||f_L − y_L||²

where ``L_P`` is the normalized Laplacian of meta-path ``P``'s
PathSim-weighted graph and the meta-path weights ``w_P`` are *learned*.
We alternate:

- **f-step** — for fixed weights, the objective is quadratic; each class
  column solves the sparse linear system
  ``(Σ_P w_P L_P + μ·diag(labeled)) f = μ·y`` by conjugate gradients.
- **w-step** — for fixed ``f``, with the simplex constraint ``Σ w_P = 1``
  and smoothing exponent ``ρ > 1``, the closed form is
  ``w_P ∝ (fᵀ L_P f)^{-1/(ρ-1)}`` (meta-paths on which the current scores
  are already smooth get more weight).

Structure-only and feature-free, like GNetMine, but meta-path-aware —
exactly the contrast the related-work section draws.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.hin.engine import get_engine
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


def normalized_laplacian(weights: sp.csr_matrix) -> sp.csr_matrix:
    """``I − D^{-1/2} W D^{-1/2}`` of a symmetric weight matrix."""
    weights = sp.csr_matrix(weights, dtype=np.float64)
    degrees = np.asarray(weights.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    inv_sqrt[degrees > 0] = degrees[degrees > 0] ** -0.5
    scaling = sp.diags(inv_sqrt)
    normalized = sp.csr_matrix(scaling @ weights @ scaling)
    return sp.csr_matrix(sp.eye(weights.shape[0]) - normalized)


def grempt_scores(
    hin: HIN,
    metapaths: List[MetaPath],
    train_indices: np.ndarray,
    train_labels: np.ndarray,
    num_classes: int,
    num_targets: int,
    mu: float = 10.0,
    rho: float = 2.0,
    outer_iterations: int = 5,
    cg_tol: float = 1e-6,
) -> Tuple[np.ndarray, np.ndarray]:
    """Alternating optimization; returns ``(scores (n, r), weights (|PS|,))``.

    Parameters
    ----------
    mu:
        Label-anchoring strength (large ⇒ labeled scores pinned to labels).
    rho:
        Weight-smoothing exponent; ``rho → 1`` concentrates all weight on
        the single smoothest meta-path, large ``rho`` approaches uniform.
    """
    if mu <= 0:
        raise ValueError(f"mu must be positive, got {mu}")
    if rho <= 1:
        raise ValueError(f"rho must be > 1, got {rho}")
    train_indices = np.asarray(train_indices)
    engine = get_engine(hin)
    laplacians = [
        normalized_laplacian(engine.similarity(metapath, "pathsim"))
        for metapath in metapaths
    ]

    anchor = np.zeros(num_targets)
    anchor[train_indices] = mu
    anchor_diag = sp.diags(anchor)
    targets = np.zeros((num_targets, num_classes))
    targets[train_indices, train_labels] = mu

    weights = np.full(len(laplacians), 1.0 / len(laplacians))
    scores = np.zeros((num_targets, num_classes))
    for _ in range(outer_iterations):
        # f-step: one CG solve per class column.
        system = anchor_diag + sum(
            w * lap for w, lap in zip(weights, laplacians)
        )
        system = sp.csr_matrix(system)
        for cls in range(num_classes):
            solution, info = spla.cg(
                system, targets[:, cls], x0=scores[:, cls], rtol=cg_tol, maxiter=200
            )
            if info == 0:
                scores[:, cls] = solution
        # w-step: closed-form simplex projection.
        smoothness = np.array(
            [
                max(float(np.sum(scores * (lap @ scores))), 1e-12)
                for lap in laplacians
            ]
        )
        raw = smoothness ** (-1.0 / (rho - 1.0))
        weights = raw / raw.sum()
    return scores, weights


def GremptMethod(
    mu: float = 10.0,
    rho: float = 2.0,
    outer_iterations: int = 5,
):
    """Harness-compatible Grempt."""

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        del seed  # deterministic given the split
        scores, weights = grempt_scores(
            dataset.hin,
            dataset.metapaths,
            split.train,
            dataset.labels[split.train],
            dataset.num_classes,
            dataset.num_targets,
            mu=mu,
            rho=rho,
            outer_iterations=outer_iterations,
        )
        return MethodOutput(
            test_predictions=scores[split.test].argmax(axis=1),
            test_scores=scores[split.test],
            extras={"metapath_weights": weights},
        )

    return method
