"""Baseline methods from the paper's comparison study (Table I).

Architecture-level numpy reimplementations of every competitor:

==============  =============================================================
method          summary
==============  =============================================================
node2vec        homogeneous (p,q)-walk embeddings + logistic regression
metapath2vec    meta-path-guided walk embeddings + logistic regression
GCN             2-layer graph convolution on the best meta-path projection
GAT             2-layer graph attention on the best meta-path projection
MVGRL           contrastive adjacency-vs-diffusion views + logistic regression
HAN             node-level + semantic-level attention over meta-path graphs
HetGNN          type-grouped neighbor aggregation, unsupervised + logreg
MAGNN           per-instance intra-meta-path attention + semantic fusion
HGT             typed multi-head transformer message passing
HDGI            HAN-style encoder trained with DGI mutual information + logreg
HGCN            relation-wise multi-kernel convolution + feature concat + MLP
GNetMine        classic graph-regularized transductive label propagation
LabelProp       label propagation on the best meta-path projection
GraphSAGE       sampled mean-aggregation on the best meta-path projection
DGI             deep graph infomax + logistic regression
Grempt          meta-path Laplacian transductive regression, learned weights
HIN2Vec         meta-path-relation prediction embeddings + logreg
RGCN            relation-typed convolution, optional basis decomposition
GTN             learned soft meta-paths (FastGTN-style channels)
LINE            first+second-order edge-sampling embeddings + logreg
PTE             joint bipartite-network embeddings + logreg
==============  =============================================================

Every method is exposed through :mod:`repro.baselines.registry` as a
``MethodFn`` for the contest harness.
"""

from repro.baselines.base import SemiSupervisedTrainer, TrainSettings, choose_best_metapath
from repro.baselines.logreg import LogisticRegressionClassifier, fit_logreg_on_embeddings
from repro.baselines.gcn import GCN, GCNMethod
from repro.baselines.gat import GAT, GATMethod
from repro.baselines.mvgrl import MVGRLMethod
from repro.baselines.han import HAN, HANMethod
from repro.baselines.hetgnn import HetGNNMethod
from repro.baselines.magnn import MAGNN, MAGNNMethod
from repro.baselines.hgt import HGT, HGTMethod
from repro.baselines.hdgi import HDGIMethod
from repro.baselines.hgcn import HGCN, HGCNMethod
from repro.baselines.gnetmine import GNetMineMethod
from repro.baselines.label_propagation import LabelPropagationMethod
from repro.baselines.graphsage import GraphSAGE, GraphSAGEMethod
from repro.baselines.dgi import DGIModel, DGIMethod, dgi_embeddings
from repro.baselines.grempt import GremptMethod, grempt_scores
from repro.baselines.rgcn import RGCN, RGCNMethod
from repro.baselines.gtn import GTN, GTNMethod
from repro.baselines.registry import (
    BASELINES,
    HIN2VecMethod,
    LINEMethod,
    PTEMethod,
    make_method,
    conch_method,
)

__all__ = [
    "SemiSupervisedTrainer",
    "TrainSettings",
    "choose_best_metapath",
    "LogisticRegressionClassifier",
    "fit_logreg_on_embeddings",
    "GCN",
    "GCNMethod",
    "GAT",
    "GATMethod",
    "MVGRLMethod",
    "HAN",
    "HANMethod",
    "HetGNNMethod",
    "MAGNN",
    "MAGNNMethod",
    "HGT",
    "HGTMethod",
    "HDGIMethod",
    "HGCN",
    "HGCNMethod",
    "GNetMineMethod",
    "LabelPropagationMethod",
    "GraphSAGE",
    "GraphSAGEMethod",
    "DGIModel",
    "DGIMethod",
    "dgi_embeddings",
    "GremptMethod",
    "grempt_scores",
    "HIN2VecMethod",
    "RGCN",
    "RGCNMethod",
    "GTN",
    "GTNMethod",
    "LINEMethod",
    "PTEMethod",
    "BASELINES",
    "make_method",
    "conch_method",
]
