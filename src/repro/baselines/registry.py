"""Method registry: every Table-I column as a harness-ready ``MethodFn``.

``make_method(name)`` builds a method with scale-appropriate defaults;
``conch_method(...)`` wraps ConCH (and its ablation variants) in the same
interface so the harness treats everything uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.baselines.dgi import DGIMethod
from repro.baselines.gat import GATMethod
from repro.baselines.gcn import GCNMethod
from repro.baselines.gnetmine import GNetMineMethod
from repro.baselines.graphsage import GraphSAGEMethod
from repro.baselines.grempt import GremptMethod
from repro.baselines.gtn import GTNMethod
from repro.baselines.han import HANMethod
from repro.baselines.hdgi import HDGIMethod
from repro.baselines.hetgnn import HetGNNMethod
from repro.baselines.hgcn import HGCNMethod
from repro.baselines.hgt import HGTMethod
from repro.baselines.label_propagation import LabelPropagationMethod
from repro.baselines.logreg import fit_logreg_on_embeddings, logreg_validation_score
from repro.baselines.magnn import MAGNNMethod
from repro.baselines.mvgrl import MVGRLMethod
from repro.baselines.rgcn import RGCNMethod
from repro.core.config import ConCHConfig
from repro.core.trainer import ConCHTrainer, prepare_conch_data
from repro.core.variants import variant_config
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.embedding.hin2vec import HIN2VecConfig, hin2vec_embeddings
from repro.embedding.line import LINEConfig, line_embeddings
from repro.embedding.metapath2vec import metapath2vec_target_embeddings
from repro.embedding.node2vec import node2vec_embeddings
from repro.embedding.pte import pte_target_embeddings


def Node2VecMethod(dim: int = 64, num_walks: int = 5, walk_length: int = 30):
    """node2vec on the flattened homogeneous projection + logreg.

    Embeddings are split-independent, so they are cached per (dataset,
    seed) — contest grids only retrain the logistic regression.
    """
    cache: Dict[tuple, np.ndarray] = {}

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        key = (id(dataset), seed)
        if key not in cache:
            adjacency = dataset.hin.to_homogeneous()
            embeddings = node2vec_embeddings(
                adjacency,
                dim=dim,
                num_walks=num_walks,
                walk_length=walk_length,
                seed=seed,
            )
            offsets = dataset.hin.global_offsets()
            start = offsets[dataset.target_type]
            cache[key] = embeddings[start: start + dataset.num_targets]
        predictions, scores = fit_logreg_on_embeddings(
            cache[key], dataset.labels, split, dataset.num_classes,
            seed=seed, return_scores=True,
        )
        return MethodOutput(
            test_predictions=np.asarray(predictions), test_scores=scores
        )

    return method


def MetaPath2VecMethod(dim: int = 64, num_walks: int = 8, walk_length: int = 40):
    """metapath2vec + logreg; best single meta-path by validation score.

    mp2vec "can take only one meta-path as input" (paper §V-D note 2), so
    each meta-path is tried and the best validation result reported.
    Per-meta-path embeddings are cached per (dataset, seed).
    """
    cache: Dict[tuple, np.ndarray] = {}

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        best = None
        best_path = None
        for metapath in dataset.metapaths:
            key = (id(dataset), metapath.name, seed)
            if key not in cache:
                cache[key] = metapath2vec_target_embeddings(
                    dataset.hin,
                    metapath,
                    dim=dim,
                    num_walks=num_walks,
                    walk_length=walk_length,
                    seed=seed,
                )
            outcome = logreg_validation_score(
                cache[key], dataset.labels, split, dataset.num_classes, seed=seed
            )
            if best is None or outcome["val_metric"] > best["val_metric"]:
                best = outcome
                best_path = metapath
        return MethodOutput(
            test_predictions=np.asarray(best["test_predictions"]),
            test_scores=best.get("test_scores"),
            extras={"metapath": best_path.name},
        )

    return method


def HIN2VecMethod(dim: int = 64, epochs: int = 3, negatives: int = 4):
    """HIN2Vec relation-prediction embeddings + logreg.

    Uses *all* meta-paths jointly (unlike mp2vec's one-at-a-time
    restriction the paper notes); embeddings are split-independent and
    cached per (dataset, seed).
    """
    cache: Dict[tuple, np.ndarray] = {}

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        key = (id(dataset), seed)
        if key not in cache:
            config = HIN2VecConfig(
                dim=dim, epochs=epochs, negatives=negatives, seed=seed
            )
            cache[key] = hin2vec_embeddings(dataset.hin, dataset.metapaths, config)
        predictions, scores = fit_logreg_on_embeddings(
            cache[key], dataset.labels, split, dataset.num_classes,
            seed=seed, return_scores=True,
        )
        return MethodOutput(
            test_predictions=np.asarray(predictions), test_scores=scores
        )

    return method


def LINEMethod(dim: int = 64, epochs: int = 30, order: str = "both"):
    """LINE on the flattened homogeneous projection + logreg.

    Like node2vec, LINE ignores the network's heterogeneity; it differs
    by sampling edges directly instead of walk windows.  Embeddings are
    split-independent and cached per (dataset, seed).
    """
    cache: Dict[tuple, np.ndarray] = {}

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        key = (id(dataset), seed)
        if key not in cache:
            adjacency = dataset.hin.to_homogeneous()
            config = LINEConfig(dim=dim, epochs=epochs, order=order, seed=seed)
            embeddings = line_embeddings(adjacency, config=config)
            offsets = dataset.hin.global_offsets()
            start = offsets[dataset.target_type]
            cache[key] = embeddings[start: start + dataset.num_targets]
        predictions, scores = fit_logreg_on_embeddings(
            cache[key], dataset.labels, split, dataset.num_classes,
            seed=seed, return_scores=True,
        )
        return MethodOutput(
            test_predictions=np.asarray(predictions), test_scores=scores
        )

    return method


def PTEMethod(dim: int = 64, epochs: int = 30):
    """PTE joint bipartite-network embeddings + logreg.

    The heterogeneity-aware counterpart of LINE: one second-order SGNS
    objective per relation network with type-correct negative sampling.
    Embeddings are split-independent and cached per (dataset, seed).
    """
    cache: Dict[tuple, np.ndarray] = {}

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        key = (id(dataset), seed)
        if key not in cache:
            config = LINEConfig(dim=dim, epochs=epochs, order="second", seed=seed)
            cache[key] = pte_target_embeddings(
                dataset.hin, dataset.target_type, config=config
            )
        predictions, scores = fit_logreg_on_embeddings(
            cache[key], dataset.labels, split, dataset.num_classes,
            seed=seed, return_scores=True,
        )
        return MethodOutput(
            test_predictions=np.asarray(predictions), test_scores=scores
        )

    return method


def conch_method(
    variant: str = "full",
    base_config: Optional[ConCHConfig] = None,
    **overrides,
):
    """ConCH (or an ablation variant) as a harness ``MethodFn``.

    Preprocessing is cached per (dataset identity, config fingerprint) so
    contest grids do not redo PathSim/context extraction for every split —
    matching the paper, which treats filtering and context features as
    offline preprocessing.
    """
    cache: Dict[tuple, object] = {}

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        base = base_config or ConCHConfig()
        config = variant_config(variant, base).with_overrides(seed=seed, **overrides)
        cache_key = (
            id(dataset),
            config.k,
            config.neighbor_strategy,
            config.use_contexts,
            config.context_dim,
            config.max_instances,
            config.embed_num_walks,
            config.embed_walk_length,
            config.embed_window,
            config.embed_epochs,
            seed,
        )
        if cache_key not in cache:
            cache[cache_key] = prepare_conch_data(dataset, config)
        data = cache[cache_key]
        trainer = ConCHTrainer(data, config).fit(split)
        return MethodOutput(
            test_predictions=trainer.predict(split.test),
            test_scores=trainer.predict_proba(split.test),
            recorder=trainer.recorder,
            extras={"attention": trainer.attention_weights()},
        )

    return method


BASELINES: Dict[str, Callable[..., Callable]] = {
    "node2vec": Node2VecMethod,
    "mp2vec": MetaPath2VecMethod,
    "GCN": GCNMethod,
    "GAT": GATMethod,
    "MVGRL": MVGRLMethod,
    "HAN": HANMethod,
    "HetGNN": HetGNNMethod,
    "MAGNN": MAGNNMethod,
    "HGT": HGTMethod,
    "HDGI": HDGIMethod,
    "HGCN": HGCNMethod,
    "GNetMine": GNetMineMethod,
    "LabelProp": LabelPropagationMethod,
    # Related-work methods beyond the Table-I panel.
    "GraphSAGE": GraphSAGEMethod,
    "DGI": DGIMethod,
    "Grempt": GremptMethod,
    "HIN2Vec": HIN2VecMethod,
    "RGCN": RGCNMethod,
    "GTN": GTNMethod,
    "LINE": LINEMethod,
    "PTE": PTEMethod,
}


def make_method(name: str, **kwargs) -> Callable:
    """Instantiate a registered baseline by name."""
    if name not in BASELINES:
        raise KeyError(f"unknown baseline {name!r}; known: {sorted(BASELINES)}")
    return BASELINES[name](**kwargs)


def baseline_names() -> list:
    """Registered baseline names, sorted — the ``model=`` vocabulary of
    :func:`repro.api.fit` beyond ``"conch"`` and its variants."""
    return sorted(BASELINES)


def make_estimator(name: str, dataset, seed: int = 0, **kwargs):
    """A registered baseline as a :class:`repro.api.Estimator`.

    Convenience wrapper over :class:`repro.api.MethodEstimator`: the
    uniform fit/predict/save surface for any Table-I column.
    """
    from repro.api.estimator import MethodEstimator

    return MethodEstimator(name, dataset, seed=seed, **kwargs)
