"""HGCN (Zhu et al., KDD 2020) — architecture-level reproduction.

HGCN derives relation-wise sub-networks, aggregates each with multiple
convolution kernels (different aggregation strategies), fuses the kernel
outputs into a *relational feature* vector, concatenates it with the
node's original features, and classifies with an MLP.

Here each relation incident to the target type induces a 2-hop
target-to-target sub-network (through the intermediate type); kernels are
{sum, mean, symmetric-normalized} aggregations.  The paper's observation
— the relational features and original features live in different spaces,
limiting effectiveness — applies verbatim to this construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd.sparse import normalize_adjacency, row_normalize, sparse_matmul
from repro.autograd.tensor import Tensor
from repro.autograd import ops
from repro.baselines.base import SemiSupervisedTrainer, TrainSettings
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.hin.engine import drop_diagonal, get_engine
from repro.hin.graph import HIN
from repro.nn.layers import Dropout, Linear, MLP
from repro.nn.module import Module, ModuleList


def relation_subnetworks(hin: HIN, target_type: str) -> List[sp.csr_matrix]:
    """2-hop target-target adjacency through each schema neighbor type."""
    schema = hin.schema()
    subnetworks: List[sp.csr_matrix] = []
    for other in schema.node_types:
        if other == target_type or not schema.are_connected(target_type, other):
            continue
        forward = get_engine(hin).base(target_type, other)
        two_hop = sp.csr_matrix(forward @ forward.T)
        two_hop.sort_indices()
        two_hop = drop_diagonal(two_hop)
        two_hop.eliminate_zeros()
        two_hop.data[:] = 1.0
        subnetworks.append(two_hop)
    if not subnetworks:
        raise ValueError(f"target type {target_type!r} has no schema neighbors")
    return subnetworks


def kernel_operators(adjacency: sp.csr_matrix) -> List[sp.csr_matrix]:
    """The multi-kernel set: {sum, mean, symmetric-normalized}."""
    return [
        adjacency,
        row_normalize(adjacency),
        normalize_adjacency(adjacency, add_self_loops=False),
    ]


class HGCN(Module):
    """Relation-wise multi-kernel convolution + feature concat + MLP."""

    def __init__(
        self,
        in_dim: int,
        subnetworks: List[sp.csr_matrix],
        kernel_dim: int,
        num_classes: int,
        rng: np.random.Generator,
        mlp_hidden: int = 32,
        dropout: float = 0.5,
    ):
        super().__init__()
        self.operators: List[List[sp.csr_matrix]] = [
            kernel_operators(adj) for adj in subnetworks
        ]
        num_kernels = sum(len(kernels) for kernels in self.operators)
        self.kernel_layers = ModuleList(
            [
                Linear(in_dim, kernel_dim, rng)
                for _ in range(num_kernels)
            ]
        )
        self.dropout = Dropout(dropout, rng)
        concat_dim = in_dim + num_kernels * kernel_dim
        self.mlp = MLP([concat_dim, mlp_hidden, num_classes], rng, dropout=dropout)

    def forward(self, features: Tensor) -> Tensor:
        relational: List[Tensor] = []
        layer_index = 0
        for kernels in self.operators:
            for operator in kernels:
                aggregated = sparse_matmul(operator, features)
                relational.append(
                    self.kernel_layers[layer_index](aggregated).relu()
                )
                layer_index += 1
        combined = ops.concatenate([features] + relational, axis=1)
        return self.mlp(self.dropout(combined))


def HGCNMethod(
    kernel_dim: int = 16,
    settings: Optional[TrainSettings] = None,
):
    """Harness-compatible HGCN (semi-supervised)."""
    settings = settings or TrainSettings()

    def method(dataset: HINDataset, split: Split, seed: int):
        from repro.eval.harness import MethodOutput

        rng = np.random.default_rng(seed)
        subnetworks = relation_subnetworks(dataset.hin, dataset.target_type)
        x = Tensor(dataset.features)
        model = HGCN(
            dataset.features.shape[1],
            subnetworks,
            kernel_dim,
            dataset.num_classes,
            rng,
        )
        trainer = SemiSupervisedTrainer(
            model,
            forward=lambda m: m(x),
            labels=dataset.labels,
            settings=settings,
            method_name="HGCN",
        ).fit(split)
        return MethodOutput(
            test_predictions=trainer.predict(split.test),
            test_scores=trainer.predict_proba(split.test),
            recorder=trainer.recorder,
        )

    return method
