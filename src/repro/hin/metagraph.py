"""Meta-graphs: conjunctive generalizations of meta-paths.

The paper's related work (§II, [17]) uses *meta-graphs* — DAGs of object
types — to express relations a single meta-path cannot: e.g. "two movies
that share an actor **and** a director".  A meta-path chain counts each
relation independently; a meta-graph requires them to hold *between the
same endpoint pair*.

This module models a meta-graph as a **series of stages**, each stage a
set of parallel meta-paths between the same endpoint types:

- within a stage, branch commuting matrices combine by **element-wise
  (Hadamard) product** — instance counts of paths that must co-occur
  between the same pair (the conjunction);
- across stages, stage matrices combine by **ordinary matrix product**
  (the composition), exactly like meta-path hops.

A single-stage, single-branch meta-graph degenerates to its meta-path, so
everything downstream of a commuting matrix (PathSim, top-k filtering,
binary projections for baselines) applies unchanged —
:func:`metagraph_pathsim` and :func:`top_k_metagraph_neighbors` provide
the plumbing.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.hin.engine import drop_diagonal, get_engine
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath
from repro.hin.schema import NetworkSchema


class MetaGraph:
    """A series of parallel-meta-path stages.

    Parameters
    ----------
    stages:
        Each stage is a non-empty list of meta-paths; all branches of a
        stage must share source and target types, and consecutive stages
        must chain (stage *i*'s target type is stage *i+1*'s source type).
    name:
        Defaults to a rendered form like ``"(MAM&MDM)"`` or
        ``"(APA)>(APCPA)"``.

    Example
    -------
    >>> co_star_and_director = MetaGraph([[MetaPath.parse("MAM"),
    ...                                    MetaPath.parse("MDM")]])
    """

    def __init__(
        self,
        stages: Sequence[Sequence[MetaPath]],
        name: str | None = None,
    ):
        if not stages or any(not stage for stage in stages):
            raise ValueError("a meta-graph needs at least one non-empty stage")
        self.stages: List[List[MetaPath]] = [list(stage) for stage in stages]
        for index, stage in enumerate(self.stages):
            sources = {p.source_type for p in stage}
            targets = {p.target_type for p in stage}
            if len(sources) != 1 or len(targets) != 1:
                raise ValueError(
                    f"stage {index} branches must share endpoint types; "
                    f"got sources {sorted(sources)}, targets {sorted(targets)}"
                )
        for left, right in zip(self.stages[:-1], self.stages[1:]):
            if left[0].target_type != right[0].source_type:
                raise ValueError(
                    f"stages do not chain: {left[0].target_type!r} -> "
                    f"{right[0].source_type!r}"
                )
        self.name = name or ">".join(
            "(" + "&".join(p.name for p in stage) + ")" for stage in self.stages
        )

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def source_type(self) -> str:
        return self.stages[0][0].source_type

    @property
    def target_type(self) -> str:
        return self.stages[-1][0].target_type

    def endpoints_match(self, node_type: str) -> bool:
        return self.source_type == node_type and self.target_type == node_type

    def is_symmetric(self) -> bool:
        """Symmetric iff the stage sequence mirrors (PathSim requirement).

        Stage *i* must contain exactly the reverses of stage *-(i+1)*'s
        meta-paths (as type sequences, order-insensitive).
        """
        for left_stage, right_stage in zip(self.stages, self.stages[::-1]):
            left = sorted(tuple(p.node_types) for p in left_stage)
            right = sorted(tuple(p.node_types[::-1]) for p in right_stage)
            if left != right:
                return False
        return True

    def validate(self, schema: NetworkSchema) -> "MetaGraph":
        for stage in self.stages:
            for metapath in stage:
                metapath.validate(schema)
        return self

    def __eq__(self, other) -> bool:
        return isinstance(other, MetaGraph) and [
            [p.node_types for p in stage] for stage in self.stages
        ] == [[p.node_types for p in stage] for stage in other.stages]

    def __hash__(self) -> int:
        return hash(
            tuple(
                tuple(tuple(p.node_types) for p in stage) for stage in self.stages
            )
        )

    def __repr__(self) -> str:
        return f"MetaGraph({self.name!r})"


def metagraph_adjacency(
    hin: HIN,
    metagraph: MetaGraph,
    remove_self_paths: bool = True,
) -> sp.csr_matrix:
    """Instance-count matrix of a meta-graph.

    Per stage, branch commuting matrices are combined by Hadamard product
    (conjunction: the count of branch-instance *combinations* between each
    pair); stages compose by matrix product.
    """
    metagraph.validate(hin.schema())
    engine = get_engine(hin)
    product: sp.csr_matrix | None = None
    for stage in metagraph.stages:
        stage_matrix: sp.csr_matrix | None = None
        for metapath in stage:
            counts = engine.counts(metapath)
            stage_matrix = (
                counts if stage_matrix is None else stage_matrix.multiply(counts)
            )
        stage_matrix = sp.csr_matrix(stage_matrix)
        product = stage_matrix if product is None else sp.csr_matrix(
            product @ stage_matrix
        )
    assert product is not None  # stages validated non-empty
    if remove_self_paths and metagraph.source_type == metagraph.target_type:
        product = drop_diagonal(product)
        product.eliminate_zeros()
        return product
    if len(metagraph.stages) == 1 and len(metagraph.stages[0]) == 1:
        # Degenerate meta-graph: product IS the engine's cached counts
        # matrix; hand the caller an owned copy instead of the cache entry.
        product = product.copy()
    return product


def metagraph_binary_adjacency(hin: HIN, metagraph: MetaGraph) -> sp.csr_matrix:
    """Binary (reachability) projection, for homogeneous baselines."""
    counts = metagraph_adjacency(hin, metagraph, remove_self_paths=True)
    binary = counts.copy()
    binary.data[:] = 1.0
    return binary


def metagraph_pathsim(hin: HIN, metagraph: MetaGraph) -> sp.csr_matrix:
    """PathSim (Eq. 1) computed on the meta-graph's commuting matrix."""
    if not metagraph.is_symmetric():
        raise ValueError(
            f"PathSim requires a symmetric meta-graph, got {metagraph.name!r}"
        )
    full = metagraph_adjacency(hin, metagraph, remove_self_paths=False)
    diag = full.diagonal()
    counts = full.tocoo()
    row, col, data = counts.row, counts.col, counts.data
    off_diag = row != col
    row, col, data = row[off_diag], col[off_diag], data[off_diag]
    denom = diag[row] + diag[col]
    valid = denom > 0
    row, col, data, denom = row[valid], col[valid], data[valid], denom[valid]
    scores = 2.0 * data / denom
    n = counts.shape[0]
    return sp.csr_matrix((scores, (row, col)), shape=(n, n))


def top_k_metagraph_neighbors(
    hin: HIN, metagraph: MetaGraph, k: int
) -> List[np.ndarray]:
    """Top-*k* neighbors per node by meta-graph PathSim (filter plumbing)."""
    from repro.hin.engine import csr_row_topk

    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return csr_row_topk(metagraph_pathsim(hin, metagraph), k)
