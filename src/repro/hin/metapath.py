"""Meta-paths (Definition 3).

A :class:`MetaPath` is a sequence of node types, e.g. ``["A", "P", "A"]``
(co-authorship on DBLP).  Symmetric meta-paths — palindromic type
sequences — are the ones PathSim is defined over; the classification
pipeline requires the meta-path to start and end at the target type.

Meta-paths can be parsed from compact strings (``"APCPA"``) when every
type name is a single character, or from dash-separated names
(``"Movie-Actor-Movie"``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.hin.schema import NetworkSchema


class MetaPath:
    """A typed path template ``T1 - T2 - ... - T_{l+1}``."""

    def __init__(self, node_types: Sequence[str], name: Optional[str] = None):
        if len(node_types) < 2:
            raise ValueError("a meta-path needs at least two node types")
        self.node_types: List[str] = [str(t) for t in node_types]
        self.name = name or "".join(self.node_types) if all(
            len(t) == 1 for t in self.node_types
        ) else (name or "-".join(self.node_types))

    # ------------------------------------------------------------------ #
    # Parsing
    # ------------------------------------------------------------------ #

    @classmethod
    def parse(cls, text: str) -> "MetaPath":
        """Parse ``"APA"`` (single-char types) or ``"Movie-Actor-Movie"``."""
        text = text.strip()
        if not text:
            raise ValueError("empty meta-path string")
        if "-" in text:
            parts = [part.strip() for part in text.split("-")]
            if any(not part for part in parts):
                raise ValueError(f"malformed meta-path string {text!r}")
            return cls(parts, name=text)
        return cls(list(text), name=text)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def length(self) -> int:
        """Number of hops (edges) in the template."""
        return len(self.node_types) - 1

    @property
    def source_type(self) -> str:
        return self.node_types[0]

    @property
    def target_type(self) -> str:
        return self.node_types[-1]

    def is_symmetric(self) -> bool:
        """True iff the type sequence is a palindrome (PathSim requires this)."""
        return self.node_types == self.node_types[::-1]

    def endpoints_match(self, node_type: str) -> bool:
        return self.source_type == node_type and self.target_type == node_type

    def validate(self, schema: NetworkSchema) -> "MetaPath":
        """Check against a schema; returns self for chaining."""
        schema.validate_metapath(self.node_types)
        return self

    def reversed(self) -> "MetaPath":
        return MetaPath(self.node_types[::-1])

    # ------------------------------------------------------------------ #
    # Equality / hashing (used as dict keys throughout the pipeline)
    # ------------------------------------------------------------------ #

    def __eq__(self, other) -> bool:
        return isinstance(other, MetaPath) and self.node_types == other.node_types

    def __hash__(self) -> int:
        return hash(tuple(self.node_types))

    def __repr__(self) -> str:
        return f"MetaPath({self.name!r})"

    def __len__(self) -> int:
        return len(self.node_types)
