"""HIN diagnostics: statistics used to sanity-check datasets and to
understand why particular meta-paths help a classification task.

These are the quantities the paper's discussion appeals to informally —
e.g. "APA is a sparse relation" and "an author is related to a large
number of other authors by APCPA" (§V-F) — computed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.hin.engine import get_engine
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


@dataclass(frozen=True)
class MetaPathStats:
    """Summary statistics of one meta-path relation over a labeled HIN.

    Attributes
    ----------
    metapath_name:
        The meta-path.
    coverage:
        Fraction of target nodes with at least one meta-path neighbor
        ("sparse relations" like APA have low coverage).
    mean_degree:
        Average number of distinct meta-path neighbors per node.
    homophily:
        Fraction of connected (binary projection) pairs sharing a label —
        the raw usefulness of the relation for classification.
    pathsim_homophily:
        PathSim-weighted homophily: the same fraction with each pair
        weighted by its PathSim score.  ConCH's top-k filter exploits the
        gap between this and plain ``homophily``.
    mean_instances_per_pair:
        Mean path-instance count over connected pairs (context sizes).
    """

    metapath_name: str
    coverage: float
    mean_degree: float
    homophily: float
    pathsim_homophily: float
    mean_instances_per_pair: float


def metapath_stats(
    hin: HIN, metapath: MetaPath, labels: Optional[np.ndarray] = None
) -> MetaPathStats:
    """Compute :class:`MetaPathStats` for one meta-path.

    ``labels`` defaults to the HIN's labels for the meta-path's endpoint
    type.
    """
    target_type = metapath.source_type
    if labels is None:
        labels = hin.labels(target_type)
    labels = np.asarray(labels)

    engine = get_engine(hin)
    counts = engine.counts(metapath, remove_self_paths=True)
    binary = engine.binary(metapath)
    degrees = np.asarray(binary.sum(axis=1)).ravel()
    coverage = float((degrees > 0).mean())
    mean_degree = float(degrees.mean())

    coo = binary.tocoo()
    if coo.nnz:
        same = (labels[coo.row] == labels[coo.col]).astype(np.float64)
        homophily = float(same.mean())
        instance_counts = counts.tocoo().data
        mean_instances = float(instance_counts.mean())
    else:
        homophily = 0.0
        mean_instances = 0.0

    scores = engine.similarity(metapath, "pathsim").tocoo()
    if scores.nnz:
        same = (labels[scores.row] == labels[scores.col]).astype(np.float64)
        total = scores.data.sum()
        pathsim_homophily = float((same * scores.data).sum() / total) if total else 0.0
    else:
        pathsim_homophily = 0.0

    return MetaPathStats(
        metapath_name=metapath.name,
        coverage=coverage,
        mean_degree=mean_degree,
        homophily=homophily,
        pathsim_homophily=pathsim_homophily,
        mean_instances_per_pair=mean_instances,
    )


def dataset_report(dataset) -> str:
    """Human-readable diagnostics for a :class:`repro.data.base.HINDataset`.

    Includes per-type node counts, per-relation edge counts, label
    balance, and per-meta-path statistics.
    """
    hin = dataset.hin
    lines: List[str] = [f"Dataset {dataset.name!r} — target type {dataset.target_type!r}"]
    lines.append("node types: " + ", ".join(
        f"{t}:{hin.num_nodes(t)}" for t in hin.node_types
    ))
    forward = [r for r in hin.relations if not r.name.endswith("_rev")]
    lines.append("relations:  " + ", ".join(
        f"{r.name}({r.src_type}-{r.dst_type}):{hin.relation_matrix(r.name).nnz}"
        for r in forward
    ))
    labels = dataset.labels
    balance = np.bincount(labels, minlength=dataset.num_classes)
    lines.append(
        "labels:     " + ", ".join(
            f"{name}:{count}" for name, count in zip(dataset.class_names, balance)
        )
    )
    lines.append(
        f"{'meta-path':<10} {'coverage':>8} {'degree':>8} {'homoph.':>8} "
        f"{'ps-homo.':>8} {'inst/pair':>9}"
    )
    for metapath in dataset.metapaths:
        stats = metapath_stats(hin, metapath, labels)
        lines.append(
            f"{stats.metapath_name:<10} {stats.coverage:>8.3f} "
            f"{stats.mean_degree:>8.1f} {stats.homophily:>8.3f} "
            f"{stats.pathsim_homophily:>8.3f} {stats.mean_instances_per_pair:>9.2f}"
        )
    return "\n".join(lines)


def label_homophily(hin: HIN, metapath: MetaPath) -> float:
    """Shortcut: plain homophily of one meta-path's binary projection."""
    return metapath_stats(hin, metapath).homophily
