"""Network schema (Definition 2): the schematic graph over node types.

The schema is used to validate meta-paths before any expensive sparse
algebra: a meta-path is well-formed iff every consecutive pair of types is
connected by some relation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple


class NetworkSchema:
    """Schematic graph: node set = object types, edge set = relations."""

    def __init__(self, node_types: Sequence[str], edges: Iterable[Tuple[str, str, str]]):
        self.node_types: List[str] = list(node_types)
        type_set = set(self.node_types)
        self._edges: List[Tuple[str, str, str]] = []
        self._connected: Set[Tuple[str, str]] = set()
        for src, dst, relation in edges:
            if src not in type_set or dst not in type_set:
                raise ValueError(f"schema edge ({src}, {dst}) uses unknown node type")
            self._edges.append((src, dst, relation))
            self._connected.add((src, dst))

    @property
    def edges(self) -> List[Tuple[str, str, str]]:
        return list(self._edges)

    def are_connected(self, src_type: str, dst_type: str) -> bool:
        return (src_type, dst_type) in self._connected

    def relations_between(self, src_type: str, dst_type: str) -> List[str]:
        return [rel for s, d, rel in self._edges if s == src_type and d == dst_type]

    def validate_metapath(self, type_sequence: Sequence[str]) -> None:
        """Raise ``ValueError`` unless consecutive types are schema-adjacent."""
        if len(type_sequence) < 2:
            raise ValueError("a meta-path needs at least two node types")
        unknown = [t for t in type_sequence if t not in self.node_types]
        if unknown:
            raise ValueError(f"meta-path uses unknown node types: {unknown}")
        for src, dst in zip(type_sequence[:-1], type_sequence[1:]):
            if not self.are_connected(src, dst):
                raise ValueError(
                    f"meta-path step {src} -> {dst} has no relation in the schema"
                )

    def degree(self, node_type: str) -> int:
        """Number of schema edges incident to a type (diagnostics)."""
        return sum(1 for s, d, _ in self._edges if s == node_type or d == node_type)

    def __repr__(self) -> str:
        pairs = sorted({(s, d) for s, d, _ in self._edges})
        rendered = ", ".join(f"{s}-{d}" for s, d in pairs)
        return f"NetworkSchema(types={self.node_types}, edges=[{rendered}])"
