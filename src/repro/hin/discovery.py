"""Automatic meta-path discovery.

The paper assumes a user-supplied meta-path set but explicitly motivates
the neighbor filter with meta-paths "that are obtained via automatic
methods" (§IV-A).  This module supplies such a method:

1. :func:`discover_metapaths` enumerates every *symmetric* meta-path that
   starts and ends at the target type, by walking the network schema to
   the middle type and mirroring the half-path (so PathSim/HeteSim are
   always defined on the result).
2. :func:`rank_metapaths` scores each candidate by **training-label
   homophily** — the fraction of meta-path-connected pairs of *labeled*
   nodes that share a label — damped by coverage, so dense-but-random
   relations and pure-but-rare relations both rank below dense, pure ones.
3. :func:`select_metapaths` greedily keeps the top-scoring candidates
   while skipping near-duplicates (pair sets with high Jaccard overlap) —
   the mechanism by which ``APA`` is dropped as "subsumed by ``APCPA``"
   exactly as the paper's attention analysis observes (§V-F).

Discovered sets can be passed anywhere a hand-written ``metapaths`` list
is accepted (``HINDataset``, ``prepare_conch_data``, baselines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.hin.engine import get_engine
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath
from repro.hin.schema import NetworkSchema


@dataclass(frozen=True)
class MetaPathScore:
    """One ranked discovery candidate.

    Attributes
    ----------
    metapath:
        The candidate.
    homophily:
        Label-agreement rate over connected labeled pairs (training pairs
        when a train index set is given, else all labeled pairs).
    coverage:
        Fraction of target nodes with at least one meta-path neighbor.
    labeled_pairs:
        Number of connected pairs the homophily estimate is based on.
    score:
        Ranking key: ``homophily * coverage`` (0 when no labeled pair is
        connected — an unobservable relation cannot be trusted).
    """

    metapath: MetaPath
    homophily: float
    coverage: float
    labeled_pairs: int

    @property
    def score(self) -> float:
        return self.homophily * self.coverage


def _half_paths(
    schema: NetworkSchema, target_type: str, max_half_hops: int
) -> List[Tuple[str, ...]]:
    """All schema walks ``target_type -> ... -> middle`` of 1..max hops."""
    results: List[Tuple[str, ...]] = []
    frontier: List[Tuple[str, ...]] = [(target_type,)]
    for _ in range(max_half_hops):
        next_frontier: List[Tuple[str, ...]] = []
        for walk in frontier:
            for candidate in schema.node_types:
                if schema.are_connected(walk[-1], candidate):
                    extended = walk + (candidate,)
                    results.append(extended)
                    next_frontier.append(extended)
        frontier = next_frontier
    return results


def discover_metapaths(
    hin: HIN,
    target_type: str,
    max_length: int = 4,
    include_trivial: bool = False,
) -> List[MetaPath]:
    """Enumerate symmetric meta-paths anchored at ``target_type``.

    Parameters
    ----------
    hin:
        The network (only its schema is consulted).
    target_type:
        Both endpoints of every returned meta-path.
    max_length:
        Maximum number of hops (an even number; odd values are rounded
        down since mirrored half-paths always produce even hop counts).
    include_trivial:
        Keep candidates such as ``A-P-A-P-A`` whose half-path revisits the
        target type.  Off by default: they are compositions of shorter
        candidates and usually redundant, but the paper's DBLP set does
        include ``APAPA``, so callers can opt in.

    Returns
    -------
    Schema-valid symmetric meta-paths with an odd number of node types,
    sorted by length then name (deterministic order).
    """
    if target_type not in hin.node_types:
        raise KeyError(f"unknown node type {target_type!r}")
    if max_length < 2:
        raise ValueError(f"max_length must be >= 2, got {max_length}")
    schema = hin.schema()
    candidates: List[MetaPath] = []
    seen: Set[Tuple[str, ...]] = set()
    for half in _half_paths(schema, target_type, max_length // 2):
        if not include_trivial and target_type in half[1:]:
            continue
        full = half + half[-2::-1]
        if full in seen:
            continue
        seen.add(full)
        metapath = MetaPath(list(full))
        try:
            metapath.validate(schema)
        except ValueError:
            continue  # mirrored hop missing a reverse relation
        candidates.append(metapath)
    candidates.sort(key=lambda m: (m.length, m.name))
    return candidates


def rank_metapaths(
    hin: HIN,
    metapaths: Sequence[MetaPath],
    labels: np.ndarray,
    train_idx: Optional[np.ndarray] = None,
) -> List[MetaPathScore]:
    """Score and sort candidates by training-label homophily × coverage.

    Parameters
    ----------
    labels:
        Full label vector for the target type.
    train_idx:
        When given, homophily is estimated *only* from pairs whose two
        endpoints are both in this index set — the semi-supervised regime,
        where test labels must not inform meta-path selection.
    """
    labels = np.asarray(labels)
    mask = np.zeros(labels.shape[0], dtype=bool)
    if train_idx is None:
        mask[:] = True
    else:
        mask[np.asarray(train_idx)] = True

    engine = get_engine(hin)
    scored: List[MetaPathScore] = []
    for metapath in metapaths:
        binary = engine.binary(metapath).tocoo()
        degrees = np.zeros(labels.shape[0])
        if binary.nnz:
            np.add.at(degrees, binary.row, 1.0)
        coverage = float((degrees > 0).mean())
        observable = binary.nnz and mask.any()
        if observable:
            pair_mask = mask[binary.row] & mask[binary.col]
            row, col = binary.row[pair_mask], binary.col[pair_mask]
        else:
            row = col = np.empty(0, dtype=np.int64)
        if row.size:
            homophily = float((labels[row] == labels[col]).mean())
        else:
            homophily = 0.0
        scored.append(
            MetaPathScore(
                metapath=metapath,
                homophily=homophily,
                coverage=coverage,
                labeled_pairs=int(row.size),
            )
        )
    scored.sort(key=lambda s: (-s.score, s.metapath.length, s.metapath.name))
    return scored


def _pair_set(hin: HIN, metapath: MetaPath) -> Set[Tuple[int, int]]:
    binary = get_engine(hin).binary(metapath).tocoo()
    return {
        (int(u), int(v)) if u < v else (int(v), int(u))
        for u, v in zip(binary.row, binary.col)
        if u != v
    }


def select_metapaths(
    hin: HIN,
    target_type: str,
    labels: np.ndarray,
    train_idx: Optional[np.ndarray] = None,
    max_length: int = 4,
    limit: int = 3,
    min_coverage: float = 0.05,
    redundancy_threshold: float = 0.9,
) -> List[MetaPathScore]:
    """End-to-end discovery: enumerate, rank, and de-duplicate.

    Greedy selection in score order; a candidate is skipped when

    - its coverage is below ``min_coverage`` (too sparse to aggregate
      from, the paper's complaint about ``APA``), or
    - the Jaccard overlap between its connected-pair set and any already
      selected candidate's exceeds ``redundancy_threshold`` (subsumed
      relation, e.g. ``APA`` within ``APCPA``).

    Returns at most ``limit`` scored candidates, best first.
    """
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    candidates = discover_metapaths(hin, target_type, max_length=max_length)
    ranked = rank_metapaths(hin, candidates, labels, train_idx=train_idx)

    selected: List[MetaPathScore] = []
    selected_pairs: List[Set[Tuple[int, int]]] = []
    for entry in ranked:
        if len(selected) == limit:
            break
        if entry.coverage < min_coverage or entry.labeled_pairs == 0:
            continue
        pairs = _pair_set(hin, entry.metapath)
        redundant = False
        for kept in selected_pairs:
            union = len(pairs | kept)
            if union and len(pairs & kept) / union > redundancy_threshold:
                redundant = True
                break
        if redundant:
            continue
        selected.append(entry)
        selected_pairs.append(pairs)
    return selected
