"""PathSim similarity (Eq. 1; Sun et al., PVLDB 2011).

Given the commuting matrix ``M`` of a *symmetric* meta-path,

    PS(u, v) = 2 * M[u, v] / (M[u, u] + M[v, v])

ConCH uses PathSim to rank a node's meta-path neighbors and keep the
top-*k* (§IV-A).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.hin.adjacency import metapath_adjacency
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


def pathsim_matrix(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """Sparse matrix of PathSim scores for all connected pairs.

    Entries are only present where the commuting matrix is nonzero; zero
    PathSim pairs stay structurally absent.  Pairs whose self-path counts
    are both zero would divide by zero; they are also left absent (such
    pairs cannot have off-diagonal paths for a symmetric meta-path built
    from a real adjacency chain, but synthetic clamps could create them).
    """
    if not metapath.is_symmetric():
        raise ValueError(
            f"PathSim requires a symmetric meta-path, got {metapath.name!r}"
        )
    counts = metapath_adjacency(hin, metapath, remove_self_paths=False).tocoo()
    diag = metapath_adjacency(hin, metapath, remove_self_paths=False).diagonal()

    row, col, data = counts.row, counts.col, counts.data
    off_diag = row != col
    row, col, data = row[off_diag], col[off_diag], data[off_diag]
    denom = diag[row] + diag[col]
    valid = denom > 0
    row, col, data, denom = row[valid], col[valid], data[valid], denom[valid]
    scores = 2.0 * data / denom
    n = counts.shape[0]
    return sp.csr_matrix((scores, (row, col)), shape=(n, n))


def pathsim_pairs(
    hin: HIN, metapath: MetaPath, pairs: np.ndarray
) -> np.ndarray:
    """PathSim scores for explicit ``(u, v)`` pairs (shape ``(m, 2)``)."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")
    matrix = pathsim_matrix(hin, metapath).tocsr()
    return np.asarray(
        [matrix[u, v] for u, v in pairs], dtype=np.float64
    )


def pathsim_single(hin: HIN, metapath: MetaPath, u: int, v: int) -> float:
    """PathSim between two nodes (reference implementation, Eq. 1)."""
    counts = metapath_adjacency(hin, metapath, remove_self_paths=False)
    numerator = 2.0 * counts[u, v]
    denominator = counts[u, u] + counts[v, v]
    if denominator == 0:
        return 0.0
    return float(numerator / denominator)
