"""PathSim similarity (Eq. 1; Sun et al., PVLDB 2011).

Given the commuting matrix ``M`` of a *symmetric* meta-path,

    PS(u, v) = 2 * M[u, v] / (M[u, u] + M[v, v])

ConCH uses PathSim to rank a node's meta-path neighbors and keep the
top-*k* (§IV-A).

All heavy lifting is delegated to :mod:`repro.hin.engine`: the commuting
matrix is composed once per HIN and both the counts and the diagonal are
read from that single cached product (the seed recomputed the full chain
twice per call).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.hin.engine import get_engine
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


def pathsim_matrix(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """Sparse matrix of PathSim scores for all connected pairs.

    Entries are only present where the commuting matrix is nonzero; zero
    PathSim pairs stay structurally absent.  Pairs whose self-path counts
    are both zero would divide by zero; they are also left absent (such
    pairs cannot have off-diagonal paths for a symmetric meta-path built
    from a real adjacency chain, but synthetic clamps could create them).
    """
    return get_engine(hin).similarity(metapath, "pathsim").copy()


def pathsim_pairs(
    hin: HIN, metapath: MetaPath, pairs: np.ndarray
) -> np.ndarray:
    """PathSim scores for explicit ``(u, v)`` pairs (shape ``(m, 2)``).

    Vectorized ``searchsorted`` lookup against the cached commuting
    matrix — the full n×n PathSim matrix is never materialized and no
    per-pair Python loop runs.
    """
    return get_engine(hin).pathsim_pairs(metapath, pairs)


def pathsim_single(hin: HIN, metapath: MetaPath, u: int, v: int) -> float:
    """PathSim between two nodes (reference implementation, Eq. 1)."""
    engine = get_engine(hin)
    counts = engine.counts(metapath)
    numerator = 2.0 * counts[u, v]
    denominator = counts[u, u] + counts[v, v]
    if denominator == 0:
        return 0.0
    return float(numerator / denominator)
