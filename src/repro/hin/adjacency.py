"""Meta-path commuting matrices via sparse composition.

For a meta-path ``P = T1 - T2 - ... - T_{l+1}`` the *commuting matrix*
``M = A_{T1,T2} @ A_{T2,T3} @ ... @ A_{Tl,T_{l+1}}`` counts, for every
endpoint pair ``(u, v)``, the number of path instances of ``P`` from ``u``
to ``v``.  PathSim (Eq. 1) and the neighbor filter (§IV-A) are both
computed directly from ``M``.

Composition and caching live in :mod:`repro.hin.engine`; the functions
here are thin compatibility wrappers that return *owned copies*, so
callers may mutate the result freely without corrupting the shared cache.
Substrate-internal code should use the engine directly and treat its
matrices as read-only.
"""

from __future__ import annotations

from typing import List, Optional

import scipy.sparse as sp

from repro.hin.engine import get_engine
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


def relation_chain(hin: HIN, metapath: MetaPath) -> List[sp.csr_matrix]:
    """The list of per-hop biadjacency matrices along a meta-path.

    Served from the engine's base-adjacency cache; the matrices are
    shared — do not mutate them in place.
    """
    return get_engine(hin).chain(metapath)


def metapath_adjacency(
    hin: HIN,
    metapath: MetaPath,
    remove_self_paths: bool = True,
    max_count: Optional[float] = None,
) -> sp.csr_matrix:
    """Commuting (path-instance count) matrix of a meta-path.

    Parameters
    ----------
    hin:
        The network.
    metapath:
        A meta-path valid under ``hin``'s schema.
    remove_self_paths:
        Zero the diagonal when source and target types coincide, so a node
        is not its own meta-path neighbor.  (PathSim still needs the
        diagonal of the *raw* matrix; callers that need it should pass
        ``remove_self_paths=False``.)
    max_count:
        Optional clamp on entries, guarding against pathological blow-up
        on hub-heavy synthetic graphs.

    Returns
    -------
    csr_matrix of shape ``(count(src_type), count(dst_type))`` whose entry
    ``(u, v)`` is the number of path instances from ``u`` to ``v``.  The
    chain product itself is composed at most once per HIN (engine cache);
    the returned matrix is a fresh copy the caller owns.
    """
    return get_engine(hin).counts(
        metapath, remove_self_paths=remove_self_paths, max_count=max_count
    ).copy()


def metapath_binary_adjacency(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """Binary (reachability) version of the commuting matrix.

    This is the "convert an HIN to a homogeneous network using meta-paths"
    operation used to run GCN/GAT/MVGRL baselines.
    """
    return get_engine(hin).binary(metapath).copy()
