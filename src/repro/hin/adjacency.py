"""Meta-path commuting matrices via sparse composition.

For a meta-path ``P = T1 - T2 - ... - T_{l+1}`` the *commuting matrix*
``M = A_{T1,T2} @ A_{T2,T3} @ ... @ A_{Tl,T_{l+1}}`` counts, for every
endpoint pair ``(u, v)``, the number of path instances of ``P`` from ``u``
to ``v``.  PathSim (Eq. 1) and the neighbor filter (§IV-A) are both
computed directly from ``M``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


def relation_chain(hin: HIN, metapath: MetaPath) -> List[sp.csr_matrix]:
    """The list of per-hop biadjacency matrices along a meta-path."""
    metapath.validate(hin.schema())
    chain: List[sp.csr_matrix] = []
    for src_type, dst_type in zip(metapath.node_types[:-1], metapath.node_types[1:]):
        chain.append(hin.adjacency(src_type, dst_type))
    return chain


def metapath_adjacency(
    hin: HIN,
    metapath: MetaPath,
    remove_self_paths: bool = True,
    max_count: Optional[float] = None,
) -> sp.csr_matrix:
    """Commuting (path-instance count) matrix of a meta-path.

    Parameters
    ----------
    hin:
        The network.
    metapath:
        A meta-path valid under ``hin``'s schema.
    remove_self_paths:
        Zero the diagonal when source and target types coincide, so a node
        is not its own meta-path neighbor.  (PathSim still needs the
        diagonal of the *raw* matrix; callers that need it should pass
        ``remove_self_paths=False``.)
    max_count:
        Optional clamp on entries, guarding against pathological blow-up
        on hub-heavy synthetic graphs.

    Returns
    -------
    csr_matrix of shape ``(count(src_type), count(dst_type))`` whose entry
    ``(u, v)`` is the number of path instances from ``u`` to ``v``.
    """
    chain = relation_chain(hin, metapath)
    product: sp.csr_matrix = chain[0]
    for matrix in chain[1:]:
        product = sp.csr_matrix(product @ matrix)
    if max_count is not None:
        product.data = np.minimum(product.data, max_count)
    if remove_self_paths and metapath.source_type == metapath.target_type:
        product = product.tolil()
        product.setdiag(0.0)
        product = product.tocsr()
        product.eliminate_zeros()
    return product


def metapath_binary_adjacency(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """Binary (reachability) version of the commuting matrix.

    This is the "convert an HIN to a homogeneous network using meta-paths"
    operation used to run GCN/GAT/MVGRL baselines.
    """
    counts = metapath_adjacency(hin, metapath, remove_self_paths=True)
    binary = counts.copy()
    binary.data[:] = 1.0
    return binary
