"""Shared commuting-matrix engine: compose each meta-path product once.

Every stage of the ConCH pipeline — PathSim filtering (§IV-A), the
similarity ablations, bipartite context graphs (§IV-C), meta-path
discovery, diagnostics, and several baselines — consumes *commuting
matrices*: chain products ``A_{T1,T2} @ ... @ A_{Tl,T_{l+1}}`` of per-hop
biadjacency matrices.  The seed recomputed these chains at every call
site; this module memoizes them per HIN so each distinct product is
composed exactly once.

Prefix-sharing scheme
---------------------
Products are keyed by their node-type tuple (``("A", "P", "C")`` for the
``APC`` half-chain).  A chain is composed by splitting its key into two
shorter keys and multiplying their (recursively memoized) products, so
sub-chains are shared across meta-paths: composing ``APCPA`` materializes
``AP`` and ``APC`` along the way, and a later request for the HeteSim
half-path ``APC`` — or for ``APCPC`` — hits the cache.  Three candidate
splits are considered for every key:

- **left association** ``(T1..Tl) @ (Tl, Tl+1)`` — maximizes prefix reuse;
- **right association** ``(T1, T2) @ (T2..Tl+1)`` — maximizes suffix reuse;
- **middle split** for palindromic odd-length keys — shares the half-path
  product that HeteSim and :func:`half_commuting_matrix` need anyway.

The winner is the split with the lowest *estimated* sparse-flop cost
(``nnz(X) * nnz(Y) / inner_dim``, with sub-product nnz estimated by the
standard density-propagation bound when not already cached); ties go to
left association.  Cached sub-products count as free, so the association
adapts as the cache warms.

Views and bulk operations
-------------------------
From one cached product the engine serves counts (with or without the
diagonal), the diagonal itself, the binary (reachability) projection, the
half-path product, and all four similarity measures — plus vectorized
bulk operations that replace per-row/per-pair Python loops:

- :func:`csr_row_topk` — lexsort-based row-wise top-k over a whole CSR;
- :func:`csr_pair_values` — ``searchsorted`` lookup of ``(u, v)`` entries
  on the ``indptr``/``indices`` structure, never densifying;
- :func:`drop_diagonal` — boolean-mask diagonal removal on the COO
  coordinate arrays that stays CSR end-to-end (no LIL round-trip).

Cache management
----------------
All memoized state (chain products and every derived view) is routed
through :class:`repro.hin.cache.LRUByteCache`: each entry is registered
with its byte size and recency, and a configurable ``memory_budget``
(constructor argument, or :data:`repro.hin.cache.DEFAULT_MEMORY_BUDGET`)
evicts least-recently-used entries when resident bytes exceed it.
Eviction is semantically invisible — an evicted product or view is
transparently recomposed on next access, and prefix sharing consults
whatever survives.  Base per-hop biadjacencies stay pinned outside the
budget (they mirror what the HIN itself holds).

Composed products can additionally persist to a disk-backed store
(:class:`repro.hin.cache.ProductStore`) keyed by the HIN's content hash:
pass ``cache_dir=...`` or set ``REPRO_CACHE_DIR``.  Cold lookups check
disk before composing, compositions write through, and eviction spills
any product not yet on disk — so a second process over the same dataset
composes zero products from scratch.  Disk loads come back **read-only
and memory-mapped** (the store's zero-copy sidecar tier): they register
at ~zero resident bytes in the memory budget because their pages live in
the OS page cache, shared by every co-located worker mapping the same
store.  See :mod:`repro.hin.cache` for the cache-tuning guide (budget,
env var, mmap tier, cold/warm benchmarking).

Cache invalidation
------------------
:class:`~repro.hin.graph.HIN` bumps a structural version counter on every
mutation; the engine compares it on every access.  Mutations applied
through :meth:`HIN.apply_delta` invalidate **row-scoped**: the engine
computes the dirty rows of every cached product by backward reachability
from the touched nodes (exact — a row whose hop rows and reachable
suffix rows are all unchanged cannot differ), recomposes only those rows
as a CSR row block, and splices them over the stale rows
(:func:`repro.hin.cache.splice_rows`).  Each product carries a per-row
version vector (:meth:`CommutingEngine.row_versions`); derived views
over a touched chain are dropped and rebuilt lazily from the patched
products.  Binary hop matrices make every product an exact integer in
float64, so patched rows are bit-identical to a cold recomposition
regardless of association order.  Non-delta mutations
(``add_node_type`` / ``add_edges``) still drop all cached state.
Matrices returned by engine methods are shared cache entries: **treat
them as read-only** (the legacy wrappers in :mod:`repro.hin.adjacency`
hand out copies for callers that want ownership).
"""

from __future__ import annotations

import time
import weakref
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.hin import cache as cache_config
from repro.hin.cache import (
    LRUByteCache,
    ProductStore,
    csr_from_components,
    default_cache_dir,
    is_mmap_backed,
    nbytes_of,
    resident_nbytes,
    splice_rows,
)
from repro.hin.graph import HIN, DeltaRecord
from repro.hin.io import hin_content_hash
from repro.hin.metapath import MetaPath
from repro.obs import metrics as obs_metrics
from repro.obs.trace import TRACER

Key = Tuple[str, ...]

#: Sentinel for "argument not given" (None is a meaningful value for both
#: ``memory_budget`` — unlimited — and ``cache_dir`` — disk store off).
_UNSET = object()

_MISS = object()

#: Ranking measures the engine can serve (mirrors similarity.py).
MEASURES = ("pathsim", "hetesim", "joinsim", "cosine")


# ---------------------------------------------------------------------- #
# Vectorized bulk operations (engine-independent, reusable)
# ---------------------------------------------------------------------- #


def drop_diagonal(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Copy of ``matrix`` with a structurally absent diagonal.

    Masks the COO coordinate arrays instead of round-tripping through LIL
    (`tolil()`/`setdiag`/`tocsr`), staying CSR-sorted throughout: within a
    CSR row the column indices are already ordered, and removing entries
    preserves that order, so no re-sort or duplicate coalescing happens.
    """
    matrix = sp.csr_matrix(matrix)
    if not matrix.has_sorted_indices:
        matrix = matrix.copy()
        matrix.sort_indices()
    n_rows = matrix.shape[0]
    lengths = np.diff(matrix.indptr)
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
    keep = matrix.indices != rows
    kept_per_row = np.bincount(rows[keep], minlength=n_rows)
    # concatenate promotes the [0] head to int64; scipy requires indptr
    # and indices dtypes to agree, and csr_from_components skips the
    # constructor's re-cast, so pin the dtype here.
    indptr = np.concatenate(
        ([0], np.cumsum(kept_per_row, dtype=np.int64))
    ).astype(matrix.indptr.dtype, copy=False)
    return csr_from_components(
        matrix.data[keep], matrix.indices[keep], indptr, matrix.shape
    )


def csr_row_topk(matrix: sp.spmatrix, k: int) -> List[np.ndarray]:
    """Per-row top-``k`` column indices by value, ties broken by column id.

    One ``lexsort`` over ``(column, -value, row)`` replaces the per-row
    Python loop: after the sort, rows occupy the same contiguous segments
    as in ``indptr``, so the top-k of every row is a vectorized slice.
    Unlike the seed loop (whose ``argpartition`` broke value ties at the
    k boundary arbitrarily), ties are always resolved toward the lower
    column id, making neighbor selection fully deterministic.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    matrix = sp.csr_matrix(matrix)
    n_rows = matrix.shape[0]
    lengths = np.diff(matrix.indptr)
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
    order = np.lexsort((matrix.indices, -matrix.data, rows))
    sorted_cols = matrix.indices[order]
    ranks = np.arange(matrix.nnz, dtype=np.int64) - np.repeat(
        matrix.indptr[:-1].astype(np.int64), lengths
    )
    keep = ranks < k
    kept_per_row = np.minimum(lengths, k)
    boundaries = np.cumsum(kept_per_row)[:-1]
    return np.split(sorted_cols[keep], boundaries)


def csr_pair_keys(matrix: sp.csr_matrix) -> np.ndarray:
    """Sorted ``row * ncols + col`` keys of a CSR's stored entries.

    CSR stores rows in order and column indices sorted within each row,
    so this flattened key array is globally sorted — ready for
    ``np.searchsorted`` lookups (:func:`csr_pair_values`).
    """
    matrix = sp.csr_matrix(matrix)
    if not matrix.has_sorted_indices:
        matrix.sort_indices()
    lengths = np.diff(matrix.indptr)
    rows = np.repeat(np.arange(matrix.shape[0], dtype=np.int64), lengths)
    return rows * np.int64(matrix.shape[1]) + matrix.indices


def csr_pair_values(
    matrix: sp.spmatrix,
    u: np.ndarray,
    v: np.ndarray,
    keys: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Values ``matrix[u_i, v_i]`` for index arrays, absent entries = 0.

    A single ``searchsorted`` against the flattened sorted entry keys
    replaces per-pair ``matrix[u, v]`` indexing; ``keys`` may be passed
    precomputed (see :func:`csr_pair_keys`) to amortize repeated lookups.
    """
    matrix = sp.csr_matrix(matrix)
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.shape != v.shape:
        raise ValueError("u and v must have the same shape")
    if u.size and (
        u.min() < 0
        or u.max() >= matrix.shape[0]
        or v.min() < 0
        or v.max() >= matrix.shape[1]
    ):
        raise IndexError("pair indices out of range")
    if keys is None:
        keys = csr_pair_keys(matrix)
    targets = u * np.int64(matrix.shape[1]) + v
    positions = np.searchsorted(keys, targets)
    positions_clipped = np.minimum(positions, max(keys.size - 1, 0))
    out = np.zeros(u.shape[0], dtype=np.float64)
    if keys.size:
        hits = keys[positions_clipped] == targets
        out[hits] = matrix.data[positions_clipped[hits]]
    return out


# ---------------------------------------------------------------------- #
# The engine
# ---------------------------------------------------------------------- #


def _row_normalize(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Rows rescaled to sum to 1 (zero rows stay zero)."""
    matrix = sp.csr_matrix(matrix, dtype=np.float64)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(
        1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 0
    )
    return sp.csr_matrix(sp.diags(scale) @ matrix)


def _l2_normalize_rows(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Rows rescaled to unit L2 norm (zero rows stay zero)."""
    matrix = sp.csr_matrix(matrix, dtype=np.float64)
    norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel())
    scale = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
    return sp.csr_matrix(sp.diags(scale) @ matrix)


class CommutingEngine:
    """Per-HIN memoizing layer over meta-path chain products.

    One engine serves one :class:`HIN`; obtain it through
    :func:`get_engine` so all call sites share the same cache.  All cached
    matrices are returned by reference — treat them as read-only.

    Parameters
    ----------
    hin:
        The graph served.  A directly-constructed engine pins it alive;
        engines obtained through :func:`get_engine` hold it weakly, so
        dropping the HIN releases the shared engine and everything it
        cached.
    memory_budget:
        Byte cap on resident cached entries (LRU eviction above it);
        ``None`` = unlimited.  Defaults to
        :data:`repro.hin.cache.DEFAULT_MEMORY_BUDGET`.
    cache_dir:
        Directory of the disk-backed product store; ``None`` disables it.
        Defaults to the ``REPRO_CACHE_DIR`` environment variable.
    """

    def __init__(
        self,
        hin: HIN,
        memory_budget: Union[Optional[int], object] = _UNSET,
        cache_dir: Union[Optional[str], object] = _UNSET,
    ):
        self._hin_ref = weakref.ref(hin)
        #: Strong pin on the graph: a directly-constructed engine keeps
        #: its HIN alive (the pre-existing contract — callers may pass a
        #: temporary).  :func:`get_engine` clears the pin on registry
        #: engines so the weak-keyed registry lets both die together
        #: when the caller drops the HIN.
        self._hin_pin: Optional[HIN] = hin
        self._version = hin.version
        #: Pinned per-hop biadjacencies — outside the memory budget; they
        #: mirror edge data the HIN holds anyway and every recomposition
        #: bottoms out on them.
        self._base: Dict[Tuple[str, str], sp.csr_matrix] = {}
        self._validated: set = set()
        if memory_budget is _UNSET:
            memory_budget = cache_config.DEFAULT_MEMORY_BUDGET
        self._cache = LRUByteCache(memory_budget, on_evict=self._on_evict)
        if cache_dir is _UNSET:
            cache_dir = default_cache_dir()
        self._store: Optional[ProductStore] = (
            ProductStore(cache_dir) if cache_dir else None
        )
        #: Product keys known to be on disk under the current content
        #: hash (written or loaded this generation) — lets eviction skip
        #: redundant spills.
        self._on_disk: set = set()
        #: Log of composed (multiplied) product keys in the current cache
        #: generation — the call-count spy hook: duplicates here mean a
        #: product was rebuilt.  Cleared on invalidation.
        self.compose_log: List[Key] = []
        #: Measured wall-clock seconds of each composition, keyed by
        #: product key (the compose-event log).  Feeds the cost-aware
        #: eviction priority: an entry's rebuild cost weights it against
        #: recency, so a 5-hop product survives pressure from cheap
        #: diagonals.
        self.compose_seconds: Dict[Key, float] = {}
        self.disk_hits = 0
        self.spills = 0
        #: Compositions avoided by waiting on another worker's claim
        #: (concurrent-writer dedupe; see ProductStore.acquire_claim).
        self.claim_waits = 0
        #: Per-row version stamps of each tracked product: entry ``i``
        #: is the graph version whose delta last rewrote row ``i`` (the
        #: build version for untouched rows).  Row-scoped invalidation
        #: updates only the dirty stamps.
        self._row_versions: Dict[Key, np.ndarray] = {}
        #: True nnz observed for every product composed, loaded, or
        #: patched this generation — survives eviction, so _split's cost
        #: model uses measured intermediate nnz instead of the density
        #: bound once a sub-chain has been built once.
        self._observed_nnz: Dict[Key, int] = {}
        #: ``(product key, dirty row count)`` per row-scoped patch this
        #: generation — the delta-ingest twin of ``compose_log``.
        self.patch_log: List[Tuple[Key, int]] = []
        #: ``(view key, dirty row count)`` per derived-view patch (top-k
        #: neighbor lists respliced instead of dropped on ingest).
        self.view_patch_log: List[Tuple[Tuple, int]] = []
        self._obs = obs_metrics.REGISTRY.register("engine", self._collect_metrics)

    @property
    def _hin(self) -> HIN:
        hin = self._hin_ref()
        if hin is None:
            raise ReferenceError(
                "the HIN behind this CommutingEngine was garbage-collected"
            )
        return hin

    # -------------------------------------------------------------- #
    # Cache configuration and telemetry plumbing
    # -------------------------------------------------------------- #

    @property
    def memory_budget(self) -> Optional[int]:
        """Resident-byte cap of the view cache (``None`` = unlimited)."""
        return self._cache.budget

    def set_memory_budget(self, memory_budget: Optional[int]) -> None:
        """Change the budget; shrinking evicts eagerly to fit."""
        self._cache.budget = memory_budget

    @property
    def cache_dir(self) -> Optional[str]:
        """Directory of the disk-backed product store, if enabled."""
        return str(self._store.directory) if self._store is not None else None

    def set_cache_dir(self, cache_dir: Optional[str]) -> None:
        """Point the engine at a (possibly different) product store.

        A no-op when the directory is unchanged, so repeated pipeline
        runs with the same config keep their on-disk bookkeeping.
        """
        if (str(Path(cache_dir)) if cache_dir else None) == self.cache_dir:
            return
        self._store = ProductStore(cache_dir) if cache_dir else None
        self._on_disk.clear()

    @property
    def hits(self) -> int:
        """Cache hits across all products and views this generation."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Cache misses across all products and views this generation."""
        return self._cache.misses

    def _content_hash(self) -> str:
        return hin_content_hash(self._hin)

    def _on_evict(self, key: Tuple, value) -> None:
        """Eviction hook: spill a composed product to disk before dropping.

        Products are normally written through at composition time, so
        this only writes when the store was attached after the product
        was composed (or a write failed); views are recomputable from
        products and never spill.
        """
        if self._store is None or key[0] != "product":
            return
        hin = self._hin_ref()
        if hin is None or hin.version != self._version:
            # Eviction can fire without a _sync (set_memory_budget /
            # set_cache_dir): never write a value composed from an older
            # graph generation under the current content hash.
            return
        product_key = key[1]
        if len(product_key) < 3 or product_key in self._on_disk:
            return
        if self._store.save(self._content_hash(), product_key, value):
            self._on_disk.add(product_key)
            self.spills += 1

    # -------------------------------------------------------------- #
    # Invalidation
    # -------------------------------------------------------------- #

    def _sync(self) -> None:
        """Reconcile caches with the HIN when it mutated since last access.

        Mutations reconstructible as a contiguous :class:`EdgeDelta`
        chain (``HIN.deltas_since``) are absorbed by row-scoped patching
        (:meth:`_ingest`); anything else — unknown history, non-delta
        mutations, or edits touching too large a node fraction — falls
        back to the pre-delta behavior of dropping everything.
        """
        if self._hin.version == self._version:
            return
        records = self._hin.deltas_since(self._version)
        if not records or not self._ingest(records):
            self.invalidate()

    # -------------------------------------------------------------- #
    # Row-scoped delta ingest
    # -------------------------------------------------------------- #

    #: An edit batch touching more than this fraction of a type's rows
    #: patches per-row with no benefit over recomposition; bail to full
    #: invalidation above it.
    INGEST_ROW_FRACTION = 0.5

    #: Similarity measures whose score ``(u, v)`` depends only on the
    #: commuting entry and the two diagonals — the ones whose top-k
    #: neighbor views ingest can patch per-row instead of dropping.
    ROW_LOCAL_MEASURES = ("pathsim", "joinsim")

    def _hop_dirty(
        self, records: Sequence[DeltaRecord]
    ) -> Dict[Tuple[str, str], np.ndarray]:
        """Dirty rows per directed hop type pair across delta records.

        An edit to relation ``src → dst`` dirties rows ``touched[src]``
        of ``adjacency(src, dst)`` and rows ``touched[dst]`` of the
        reverse ``adjacency(dst, src)`` (the HIN maintains reverses in
        the same ``apply_delta``).
        """
        hin = self._hin
        hop_dirty: Dict[Tuple[str, str], np.ndarray] = {}
        for record in records:
            info = hin.relation_info(record.relation)
            for side, other in (
                (info.src_type, info.dst_type),
                (info.dst_type, info.src_type),
            ):
                rows = record.touched.get(side)
                if rows is None or rows.size == 0:
                    continue
                key = (side, other)
                prev = hop_dirty.get(key)
                hop_dirty[key] = rows if prev is None else np.union1d(prev, rows)
        return hop_dirty

    @staticmethod
    def _backward_rows(back: sp.csr_matrix, nodes: np.ndarray) -> np.ndarray:
        """Rows of the *forward* hop with any neighbor in ``nodes``.

        ``back`` is the reverse biadjacency: the forward hop's rows
        reaching ``nodes`` are exactly the union of ``back``'s index
        segments for those nodes (one vectorized segment gather).
        """
        if nodes.size == 0:
            return nodes
        starts = back.indptr[nodes].astype(np.int64)
        lengths = back.indptr[nodes + 1].astype(np.int64) - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        gathered = back.indices[np.repeat(starts, lengths) + offsets]
        return np.unique(gathered.astype(np.int64))

    def _dirty_rows(
        self, key: Key, hop_dirty: Dict[Tuple[str, str], np.ndarray]
    ) -> np.ndarray:
        """Rows of ``product(key)`` affected by the dirty hops.

        Backward recurrence from the last hop: a row at position ``j``
        is dirty iff its own hop row changed, or it reaches (in the new
        graph) a dirty row of the suffix product.  Exact for untouched
        rows — their hop rows are identical in both graph generations,
        so the new-graph reachability used here is the old one too.
        """
        empty = np.empty(0, dtype=np.int64)
        if not any(
            (key[i], key[i + 1]) in hop_dirty for i in range(len(key) - 1)
        ):
            return empty
        dirty = hop_dirty.get((key[-2], key[-1]), empty)
        for position in range(len(key) - 3, -1, -1):
            back = self.base(key[position + 1], key[position])
            expanded = self._backward_rows(back, dirty)
            hop = hop_dirty.get((key[position], key[position + 1]), empty)
            dirty = np.union1d(expanded, hop)
        return np.asarray(dirty, dtype=np.int64)

    def dirty_rows(
        self, node_types: Sequence[str], records: Sequence[DeltaRecord]
    ) -> np.ndarray:
        """Public form of :meth:`_dirty_rows` for downstream tiers.

        The pipeline/context layers call this with the just-applied
        delta records to find which product rows (and hence which
        retained pairs) need re-enumeration.
        """
        self._sync()
        return self._dirty_rows(tuple(node_types), self._hop_dirty(records))

    def row_versions(self, node_types: Sequence[str]) -> Optional[np.ndarray]:
        """Per-row version stamps of a tracked product (read-only).

        Entry ``i`` is the graph version whose ingest last rewrote row
        ``i``; ``None`` when the product has not been composed (or was
        fully invalidated) this generation.
        """
        return self._row_versions.get(tuple(node_types))

    def _compose_rows(self, key: Key, rows: np.ndarray) -> sp.csr_matrix:
        """Recompose only ``rows`` of a chain product as a row block.

        Slices the first hop to the dirty rows, then multiplies through
        a cached (already-patched) suffix product when one is resident,
        falling back to a left fold over base hops.  Binary hops make
        every product value an exact small integer in float64, so the
        block is bit-identical to the same rows of a cold composition
        regardless of association order.
        """
        block = sp.csr_matrix(self.base(key[0], key[1])[rows, :])
        if len(key) > 2:
            suffix = self._cache.peek(("product", key[1:]), _MISS)
            if suffix is not _MISS:
                block = sp.csr_matrix(block @ suffix)
            else:
                for position in range(1, len(key) - 1):
                    block = sp.csr_matrix(
                        block @ self.base(key[position], key[position + 1])
                    )
        block.sort_indices()
        return block

    def _ingest(self, records: Sequence[DeltaRecord]) -> bool:
        """Absorb a delta chain by patching dirty product rows in place.

        Returns ``False`` (caller falls back to :meth:`invalidate`) when
        the edit fraction makes patching pointless.  Otherwise: stale
        base hops are dropped (rebuilt lazily from the mutated HIN),
        every resident product gets its dirty rows recomposed and
        spliced (:func:`repro.hin.cache.splice_rows` via
        :meth:`LRUByteCache.replace`, preserving cache citizenship),
        per-row version vectors are stamped, views over touched chains
        are dropped, and the disk store is migrated: patched products
        are re-saved under the new content hash, and products resident
        only on disk are patched old-hash → new-hash without ever
        becoming whole-product recompositions.
        """
        hin = self._hin
        hop_dirty = self._hop_dirty(records)
        for (src_type, _), rows in hop_dirty.items():
            if rows.size > max(1, hin.num_nodes(src_type)) * self.INGEST_ROW_FRACTION:
                return False

        old_hash = records[0].prev_hash
        old_on_disk = set(self._on_disk)
        self._on_disk.clear()
        self._version = hin.version

        for pair in list(self._base):
            if pair in hop_dirty:
                del self._base[pair]
                self._cache.discard(("product", pair))

        # Drop derived views whose chain crosses a dirty hop; they
        # rebuild lazily from the patched products below.  Top-k
        # neighbor lists under row-local measures are captured first:
        # those are respliced per dirty row after the products are
        # patched (the neighbor-filter fast path for streaming ingest).
        topk_stale: List[Tuple[Tuple, List[np.ndarray]]] = []
        for cache_key in list(self._cache.keys()):
            if cache_key[0] == "product":
                continue
            chain = next(
                (part for part in cache_key if isinstance(part, tuple)), None
            )
            if chain is None:
                continue
            if any(
                (chain[i], chain[i + 1]) in hop_dirty
                for i in range(len(chain) - 1)
            ):
                if (
                    cache_key[0] == "top_k"
                    and cache_key[1] in self.ROW_LOCAL_MEASURES
                ):
                    topk_stale.append(
                        (cache_key, self._cache.peek(cache_key, None))
                    )
                self._cache.discard(cache_key)

        product_keys = sorted(
            (
                cache_key[1]
                for cache_key in self._cache.keys()
                if cache_key[0] == "product" and len(cache_key[1]) > 2
            ),
            key=len,
        )
        patched: Dict[Key, sp.csr_matrix] = {}
        needs_diag = {cache_key[2] for cache_key, _ in topk_stale}
        old_diags: Dict[Key, np.ndarray] = {}
        # Detach the store while patching: a budget eviction triggered
        # by a replace must never spill a not-yet-patched stale product
        # under the new content hash.
        store, self._store = self._store, None
        try:
            for key in product_keys:
                old = self._cache.peek(("product", key), _MISS)
                if old is _MISS:
                    continue  # evicted by an earlier replace
                dirty = self._dirty_rows(key, hop_dirty)
                if dirty.size == 0:
                    patched[key] = old  # content unchanged; re-key on disk
                    continue
                if key in needs_diag:
                    old_diags[key] = old.diagonal()
                block = self._compose_rows(key, dirty)
                result = splice_rows(old, dirty, block)
                self._cache.replace(
                    ("product", key), result, nbytes=resident_nbytes(result)
                )
                stamps = self._row_versions.get(key)
                if stamps is not None:
                    stamps[dirty] = self._version
                self._observed_nnz[key] = int(result.nnz)
                self.patch_log.append((key, int(dirty.size)))
                patched[key] = result
        finally:
            self._store = store

        # Drop telemetry for products that are dirty but no longer
        # resident (evicted): their recorded nnz/stamps are stale.
        for key in list(self._observed_nnz):
            if key in patched:
                continue
            if self._dirty_rows(key, hop_dirty).size:
                self._observed_nnz.pop(key, None)
                self._row_versions.pop(key, None)

        # Resplice captured top-k neighbor lists.  A clean row's own
        # entries and diagonal are unchanged, so its scores can shift
        # only through a dirty *column's* diagonal; the commuting matrix
        # is symmetric (these measures require symmetric meta-paths), so
        # candidates live in the changed diagonals' neighbor columns,
        # and _topk_affected_rows proves per row whether a moved score
        # can actually perturb the cached list — usually leaving a set
        # far tighter than D's full neighbor ball to rescore.
        for cache_key, lists in topk_stale:
            chain, k = cache_key[2], int(cache_key[3])
            counts = patched.get(chain)
            if counts is None or lists is None:
                continue  # product not resident; view rebuilds lazily
            dirty = self._dirty_rows(chain, hop_dirty)
            if dirty.size == 0:
                self._cache.put(cache_key, lists)
                continue
            old_diag = old_diags.get(chain)
            if old_diag is None:
                continue  # diagonal not captured; view rebuilds lazily
            new_diag = counts.diagonal()
            diag_changed = dirty[old_diag[dirty] != new_diag[dirty]]
            sim_dirty = np.union1d(
                dirty,
                self._topk_affected_rows(
                    counts, lists, dirty, diag_changed,
                    old_diag, new_diag, cache_key[1], k,
                ),
            )
            if sim_dirty.size > counts.shape[0] * self.INGEST_ROW_FRACTION:
                continue  # patch would touch most rows; rebuild lazily
            started = time.perf_counter()
            block = self._row_local_scores(
                sp.csr_matrix(counts[sim_dirty]),
                sim_dirty,
                new_diag,
                cache_key[1],
            )
            fresh_lists = csr_row_topk(block, k)
            respliced = list(lists)
            for local, row in enumerate(sim_dirty):
                respliced[row] = fresh_lists[local]
            self._cache.put(
                cache_key, respliced, cost=time.perf_counter() - started
            )
            self.view_patch_log.append((cache_key, int(sim_dirty.size)))

        if store is not None:
            new_hash = self._content_hash()
            for key, matrix in patched.items():
                if store.save(new_hash, key, matrix):
                    self._on_disk.add(key)
                    self.spills += 1
            if old_hash is not None:
                for key in sorted(old_on_disk - set(patched), key=len):
                    if len(key) < 3:
                        continue
                    stale = store.load(old_hash, key)
                    if stale is None:
                        continue
                    dirty = self._dirty_rows(key, hop_dirty)
                    if dirty.size:
                        matrix = splice_rows(
                            stale, dirty, self._compose_rows(key, dirty)
                        )
                        self.patch_log.append((key, int(dirty.size)))
                    else:
                        matrix = stale
                    if store.save(new_hash, key, matrix):
                        self._on_disk.add(key)
                        self.spills += 1
        return True

    def invalidate(self) -> None:
        """Drop all cached state and telemetry (mutation does this lazily).

        The compose log and hit/miss counters reset too: the compose-once
        contract is *per cache generation*, so a legitimately invalidated
        engine recomposing a product is not a duplicate composition.
        Disk-store files are untouched — they are keyed by content hash,
        so an unchanged graph reloads them instead of recomposing (the
        "cold memory, warm disk" scenario of a fresh process).
        """
        self._base.clear()
        self._validated.clear()
        self._cache.clear()
        self._cache.reset_stats()
        self._on_disk.clear()
        self.compose_log.clear()
        self.compose_seconds.clear()
        self.disk_hits = 0
        self.spills = 0
        self.claim_waits = 0
        self._row_versions.clear()
        self._observed_nnz.clear()
        self.patch_log.clear()
        self.view_patch_log.clear()
        self._version = self._hin.version

    # -------------------------------------------------------------- #
    # Base adjacencies and chain products
    # -------------------------------------------------------------- #

    def base(self, src_type: str, dst_type: str) -> sp.csr_matrix:
        """Cached per-hop biadjacency (union of relations src → dst).

        Column indices are guaranteed sorted within each row: the context
        kernel and the DFS fallback binary-search these index arrays
        (``np.searchsorted`` membership tests), which silently return
        wrong answers on unsorted CSR.
        """
        self._sync()
        key = (src_type, dst_type)
        if key not in self._base:
            matrix = self._hin.adjacency(src_type, dst_type)
            if not matrix.has_sorted_indices:
                matrix.sort_indices()
            self._base[key] = matrix
        return self._base[key]

    def _validate(self, metapath: MetaPath) -> None:
        """Schema-validate a meta-path once per cache generation."""
        self._sync()
        key = tuple(metapath.node_types)
        if key not in self._validated:
            metapath.validate(self._hin.schema())
            self._validated.add(key)

    def _view(self, key: Tuple, build):
        """Serve one derived view through the budgeted LRU cache.

        On a miss the view is rebuilt by ``build()`` and re-registered —
        this is what makes eviction semantically invisible: the build
        closures only read cached products (themselves recomposable) and
        the pinned base matrices.  The build's wall-clock cost weights
        the entry's eviction priority (expensive views outlive cheap
        ones under memory pressure).
        """
        value = self._cache.get(key, _MISS)
        if value is _MISS:
            started = time.perf_counter()
            value = build()
            self._cache.put(key, value, cost=time.perf_counter() - started)
        return value

    def chain(self, metapath: MetaPath) -> List[sp.csr_matrix]:
        """Per-hop biadjacency list along a meta-path (hops all cached)."""
        self._validate(metapath)
        types = metapath.node_types
        return [self.base(a, b) for a, b in zip(types[:-1], types[1:])]

    def product(self, node_types: Sequence[str]) -> sp.csr_matrix:
        """Memoized chain product for a node-type sequence."""
        self._sync()
        key = tuple(node_types)
        if len(key) < 2:
            raise ValueError("a chain needs at least two node types")
        return self._product(key)

    def _product(self, key: Key) -> sp.csr_matrix:
        cached = self._cache.get(("product", key), _MISS)
        if cached is not _MISS:
            return cached
        if len(key) == 2:
            # Alias of the pinned base biadjacency: registered at 0 bytes
            # (the base dict owns the memory) purely so repeated accesses
            # count as hits.
            result = self.base(key[0], key[1])
            self._cache.put(("product", key), result, nbytes=0)
            return result
        # The entry's eviction-priority cost is what a *post-eviction*
        # re-acquisition would pay: the measured disk-load time when the
        # product is on disk, the measured compose time otherwise.
        # Claim-wait blocking time is deliberately excluded — after a
        # wait the product sits on disk, so its re-acquisition is a
        # cheap load no matter how long the peer took to write it.
        cost = 0.0
        result = None
        if self._store is not None:
            content_hash = self._content_hash()
            started = time.perf_counter()
            result = self._store.load(content_hash, key)
            if result is not None:
                cost = time.perf_counter() - started
                self.disk_hits += 1
                self._on_disk.add(key)
            elif self._store.acquire_claim(content_hash, key):
                # This worker won the compose claim for the cluster.
                try:
                    result = self._compose(key, holds_claim=True)
                finally:
                    self._store.release_claim(content_hash, key)
                cost = self.compose_seconds.get(key, 0.0)
            else:
                # Another live worker is composing the same product:
                # wait for its write-through instead of duplicating the
                # multiplication; a dead writer's stale claim times out
                # and composition falls back to us.
                result = self._store.wait_for(content_hash, key)
                if result is not None:
                    self.disk_hits += 1
                    self.claim_waits += 1
                    self._on_disk.add(key)
                else:
                    result = self._compose(key)
                    cost = self.compose_seconds.get(key, 0.0)
        if result is None:
            result = self._compose(key)
            cost = self.compose_seconds.get(key, 0.0)
        # Mapped products are page-cache, not heap: they register at
        # ~zero resident bytes, so N co-located workers mapping the same
        # store pay for one copy total and never evict real heap entries
        # to "free" shared pages.
        self._cache.put(
            ("product", key), result, nbytes=resident_nbytes(result), cost=cost
        )
        self._row_versions[key] = np.full(
            result.shape[0], self._version, dtype=np.int64
        )
        self._observed_nnz[key] = int(result.nnz)
        return result

    def _compose(self, key: Key, holds_claim: bool = False) -> sp.csr_matrix:
        """Multiply a chain product, log the compose event, write through."""
        started = time.perf_counter()
        left_key, right_key = self._split(key)
        left = self._product(left_key)
        right = self._product(right_key)
        if holds_claim and self._store is not None:
            # Sub-products may have taken a while: renew this key's
            # claim lease before the final multiply so waiters do not
            # mistake a slow-but-live writer for a dead one.  (Only the
            # claim holder refreshes — a fallback composer must never
            # extend a dead writer's lease.)
            self._store.refresh_claim(self._content_hash(), key)
        result = sp.csr_matrix(left @ right)
        result.sort_indices()
        finished = time.perf_counter()
        self.compose_log.append(key)
        self.compose_seconds[key] = finished - started
        obs_metrics.REGISTRY.histogram(
            "repro_engine_compose_seconds",
            help="Wall-clock seconds per chain-product composition",
        ).observe(finished - started)
        if TRACER.enabled:
            TRACER.record(
                "engine.compose",
                start_s=started,
                end_s=finished,
                parent=TRACER.current_context(),
                attrs={"key": "->".join(str(t) for t in key)},
            )
        if self._store is not None and key not in self._on_disk:
            if self._store.save(self._content_hash(), key, result):
                self._on_disk.add(key)
                self.spills += 1
        return result

    def _split(self, key: Key) -> Tuple[Key, Key]:
        """Cost-aware association: pick the cheapest of the candidate splits.

        Candidates: left association (prefix reuse), right association
        (suffix reuse), and — for palindromic odd-length keys — the middle
        split that shares the half-path product.  Cached sub-products cost
        nothing, so warm caches steer the association toward reuse.
        """
        candidates = [len(key) - 2, 1]
        if len(key) % 2 == 1 and key == key[::-1]:
            candidates.insert(0, len(key) // 2)
        best: Optional[Tuple[float, Key, Key]] = None
        for split in candidates:
            left, right = key[: split + 1], key[split:]
            left_nnz, left_cost = self._estimate(left)
            right_nnz, right_cost = self._estimate(right)
            inner = max(1, self._hin.num_nodes(key[split]))
            cost = left_cost + right_cost + left_nnz * right_nnz / inner
            if best is None or cost < best[0]:
                best = (cost, left, right)
        assert best is not None
        return best[1], best[2]

    def _estimate(self, key: Key) -> Tuple[float, float]:
        """``(estimated nnz, estimated flops to build)`` of a sub-product.

        Cached products report their true nnz at zero cost.  Otherwise
        nnz propagates along a left fold, preferring the *observed* nnz
        of any prefix composed earlier this generation
        (``_observed_nnz`` — survives eviction) and falling back to the
        standard density bound
        ``nnz(XY) <= min(rows*cols, nnz(X)*nnz(Y)/inner)`` for prefixes
        never built.  (``peek`` keeps estimation from perturbing LRU
        recency or the hit/miss counters.)
        """
        cached = self._cache.peek(("product", key), _MISS)
        if cached is not _MISS:
            return float(cached.nnz), 0.0
        if len(key) == 2:
            return float(self.base(key[0], key[1]).nnz), 0.0
        nnz, cost = self._estimate(key[:2])
        for position in range(1, len(key) - 1):
            hop_nnz = float(self.base(key[position], key[position + 1]).nnz)
            inner = max(1, self._hin.num_nodes(key[position]))
            cost += nnz * hop_nnz / inner
            prefix_observed = self._observed_nnz.get(key[: position + 2])
            if prefix_observed is not None:
                # True intermediate nnz from a prior composition of this
                # prefix — replaces the density-propagation bound, which
                # badly over-estimates on skewed (hub-heavy) graphs.
                nnz = float(prefix_observed)
            else:
                bound = float(
                    self._hin.num_nodes(key[0])
                ) * self._hin.num_nodes(key[position + 1])
                nnz = min(bound, nnz * hop_nnz / inner)
        return nnz, cost

    # -------------------------------------------------------------- #
    # Views of one cached product
    # -------------------------------------------------------------- #

    def counts(
        self,
        metapath: MetaPath,
        remove_self_paths: bool = False,
        max_count: Optional[float] = None,
    ) -> sp.csr_matrix:
        """Commuting (path-instance count) matrix, cached per variant."""
        self._validate(metapath)
        key = tuple(metapath.node_types)
        self_paths = remove_self_paths and metapath.source_type == metapath.target_type
        if max_count is None and not self_paths:
            # The raw variant IS the product — serving it directly keeps
            # the budget accounting alias-free (one entry owns the bytes).
            return self._product(key)

        def build() -> sp.csr_matrix:
            matrix = self._product(key)
            if max_count is not None:
                matrix = matrix.copy()
                matrix.data = np.minimum(matrix.data, max_count)
            if self_paths:
                matrix = drop_diagonal(matrix)
                matrix.eliminate_zeros()
            return matrix

        return self._view(
            ("counts", key, bool(remove_self_paths), max_count), build
        )

    def diagonal(self, metapath: MetaPath) -> np.ndarray:
        """Self-path counts ``M[u, u]`` from the cached raw product."""
        self._sync()
        key = ("diagonal", tuple(metapath.node_types))
        return self._view(key, lambda: self.counts(metapath).diagonal())

    def binary(self, metapath: MetaPath) -> sp.csr_matrix:
        """Binary (reachability) projection with the diagonal removed."""
        self._sync()
        key = ("binary", tuple(metapath.node_types))

        def build() -> sp.csr_matrix:
            binary = self.counts(metapath, remove_self_paths=True).copy()
            binary.data[:] = 1.0
            return binary

        return self._view(key, build)

    def half(self, metapath: MetaPath) -> sp.csr_matrix:
        """Half-path product (endpoint type → middle type)."""
        self._require_symmetric(metapath, "half_commuting_matrix")
        self._require_middle_type(metapath, "half_commuting_matrix")
        types = metapath.node_types
        return self.product(types[: len(types) // 2 + 1])

    def _pair_lookup_keys(self, metapath: MetaPath) -> np.ndarray:
        """Cached flattened entry keys of the raw counts matrix."""
        self._sync()
        key = ("pair_keys", tuple(metapath.node_types))
        return self._view(key, lambda: csr_pair_keys(self.counts(metapath)))

    # -------------------------------------------------------------- #
    # Suffix (reverse-chain) views — pruning masks for the context
    # kernel
    # -------------------------------------------------------------- #

    def suffix_products(self, metapath: MetaPath) -> List[sp.csr_matrix]:
        """Cached suffix chain products ``position → target endpoint``.

        Entry ``j`` is the product of hops ``j..L-2`` of the meta-path,
        i.e. the matrix whose ``(x, v)`` entry counts path completions
        from a node ``x`` at meta-path position ``j`` to a target-type
        node ``v``.  Entry 0 is the full commuting matrix and entry
        ``L-2`` is the last hop's biadjacency.  The batched frontier
        kernel (:mod:`repro.hin.context`) uses these as backward
        reachability masks: a partial path whose head has a zero suffix
        entry for its pair's target can never complete and is pruned
        before expansion.

        Suffix sub-products are shared through the same memo as every
        other chain (the right-association split candidate composes
        ``(T1, T2) @ (T2..Tl+1)``, so ``suffix[j]`` reuses
        ``suffix[j+1]`` when that association wins).  Each suffix is an
        individually cached product, so all of them participate in the
        LRU memory budget; :meth:`suffix_product` serves one position
        lazily without materializing the deeper ones.
        """
        return [
            self.suffix_product(metapath, position)
            for position in range(len(metapath.node_types) - 1)
        ]

    def suffix_product(self, metapath: MetaPath, position: int) -> sp.csr_matrix:
        """One suffix chain product ``position → target endpoint``."""
        self._validate(metapath)
        types = tuple(metapath.node_types)
        if not 0 <= position < len(types) - 1:
            raise IndexError(
                f"suffix position {position} out of range for {metapath.name!r}"
            )
        return self._product(types[position:])

    def suffix_pair_keys(self, metapath: MetaPath, position: int) -> np.ndarray:
        """Cached ``csr_pair_keys`` of one suffix product (kernel lookups)."""
        self._sync()
        key = ("suffix_keys", tuple(metapath.node_types), int(position))
        return self._view(
            key, lambda: csr_pair_keys(self.suffix_product(metapath, position))
        )

    def pair_counts(self, metapath: MetaPath, pairs: np.ndarray) -> np.ndarray:
        """Exact path-instance counts for explicit ``(u, v)`` pairs.

        One ``searchsorted`` against the cached commuting matrix — the
        vectorized form of :func:`repro.hin.context.count_instances`.
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")
        counts = self.counts(metapath)
        return csr_pair_values(
            counts,
            pairs[:, 0],
            pairs[:, 1],
            keys=self._pair_lookup_keys(metapath),
        )

    # -------------------------------------------------------------- #
    # Similarity measures
    # -------------------------------------------------------------- #

    @staticmethod
    def _require_symmetric(metapath: MetaPath, measure: str) -> None:
        if not metapath.is_symmetric():
            raise ValueError(
                f"{measure} requires a symmetric meta-path, got {metapath.name!r}"
            )

    @staticmethod
    def _require_middle_type(metapath: MetaPath, measure: str) -> None:
        if len(metapath.node_types) % 2 == 0:
            raise ValueError(
                f"{measure} needs a middle node type; meta-path "
                f"{metapath.name!r} has an even number of types "
                f"(decompose the middle relation first)"
            )

    def similarity(self, metapath: MetaPath, measure: str) -> sp.csr_matrix:
        """Cached similarity matrix under one of :data:`MEASURES`."""
        self._sync()
        if measure not in MEASURES:
            raise ValueError(
                f"unknown similarity measure {measure!r}; known: {MEASURES}"
            )
        key = ("similarity", measure, tuple(metapath.node_types))
        return self._view(key, lambda: getattr(self, f"_{measure}")(metapath))

    @staticmethod
    def _row_local_pair_scores(
        data: np.ndarray,
        diag_u: np.ndarray,
        diag_v: np.ndarray,
        measure: str,
    ) -> np.ndarray:
        """Elementwise row-local scores; invalid denominators score -inf.

        Same arithmetic as the matrix builders, applied to parallel
        entry arrays; ``-inf`` marks entries absent from the similarity
        matrix (zero denominator), which can never reach a top-k list.
        """
        if measure == "pathsim":
            denom = diag_u + diag_v
        else:  # joinsim
            denom = np.sqrt(diag_u * diag_v)
        out = np.full(data.shape, -np.inf)
        valid = denom > 0
        if measure == "pathsim":
            out[valid] = 2.0 * data[valid] / denom[valid]
        else:
            out[valid] = np.clip(data[valid] / denom[valid], 0.0, 1.0)
        return out

    def _topk_affected_rows(
        self,
        counts: sp.csr_matrix,
        lists: List[np.ndarray],
        dirty: np.ndarray,
        changed: np.ndarray,
        old_diag: np.ndarray,
        new_diag: np.ndarray,
        measure: str,
        k: int,
    ) -> np.ndarray:
        """Clean rows whose cached top-k can differ after a diagonal shift.

        A clean row's entries and own diagonal are unchanged, so only
        its scores against columns in ``changed`` moved.  The cached
        list survives unless a moved score belongs to a *listed*
        neighbor, or now ties/beats the row's k-th listed score (ties
        matter: :func:`csr_row_topk` breaks them toward the lower column
        id, so an equal score can displace).  Both conditions are decided
        from the two diagonals and the unchanged row data — no row is
        rescored unless this proves it necessary.
        """
        empty = np.empty(0, dtype=np.int64)
        if changed.size == 0:
            return empty
        sub = sp.coo_matrix(counts[changed])
        u = sub.col.astype(np.int64)
        v = changed[sub.row]
        data = sub.data
        clean = ~np.isin(u, dirty)
        u, v, data = u[clean], v[clean], data[clean]
        if u.size == 0:
            return empty
        s_old = self._row_local_pair_scores(
            data, old_diag[u], old_diag[v], measure
        )
        s_new = self._row_local_pair_scores(
            data, new_diag[u], new_diag[v], measure
        )
        moved = s_old != s_new
        u, v, s_new = u[moved], v[moved], s_new[moved]
        if u.size == 0:
            return empty
        rows = np.unique(u)
        width = np.int64(counts.shape[1])
        lens = np.fromiter(
            (len(lists[row]) for row in rows), np.int64, count=rows.size
        )
        if int(lens.sum()):
            listed_u = np.repeat(rows, lens)
            listed_w = np.concatenate(
                [np.asarray(lists[row], dtype=np.int64) for row in rows]
            )
            listed_keys = np.sort(listed_u * width + listed_w)
        else:
            listed_keys = empty
        hit = np.isin(u * width + v, listed_keys)
        # Lists come out of csr_row_topk in rank order, so the k-th
        # (boundary) score is the last listed neighbor's — one pair
        # lookup per full row, under the *old* diagonals (rows without a
        # listed moved neighbor kept their boundary score bit-exact).
        kth = np.full(rows.size, -np.inf)
        full = lens >= k
        if full.any():
            last_w = np.fromiter(
                (lists[row][-1] for row in rows[full]),
                np.int64,
                count=int(full.sum()),
            )
            numer = csr_pair_values(counts, rows[full], last_w)
            kth[full] = self._row_local_pair_scores(
                numer, old_diag[rows[full]], old_diag[last_w], measure
            )
        row_pos = np.searchsorted(rows, u)
        enter = s_new >= kth[row_pos]
        return rows[np.unique(row_pos[hit | enter])]

    @staticmethod
    def _row_local_scores(
        counts_rows: sp.csr_matrix,
        rows: np.ndarray,
        diag: np.ndarray,
        measure: str,
    ) -> sp.csr_matrix:
        """Similarity scores for a row slice under a row-local measure.

        ``counts_rows`` is ``counts[rows]``; the result has shape
        ``(len(rows), n)``.  The arithmetic is the same elementwise
        expression as the full-matrix :meth:`_pathsim` / :meth:`_joinsim`
        builders, so each returned row is bit-identical to the matching
        row of the full similarity matrix.
        """
        coo = counts_rows.tocoo()
        local, col, data = coo.row, coo.col, coo.data
        source = rows[local]
        off_diag = source != col
        local, col, data = local[off_diag], col[off_diag], data[off_diag]
        source = source[off_diag]
        if measure == "pathsim":
            denom = diag[source] + diag[col]
        else:  # joinsim
            denom = np.sqrt(diag[source] * diag[col])
        valid = denom > 0
        local, col, data, denom = (
            local[valid], col[valid], data[valid], denom[valid]
        )
        if measure == "pathsim":
            scores = 2.0 * data / denom
        else:
            scores = np.clip(data / denom, 0.0, 1.0)
        return sp.csr_matrix(
            (scores, (local, col)), shape=(rows.size, diag.shape[0])
        )

    def _pathsim(self, metapath: MetaPath) -> sp.csr_matrix:
        """PathSim (Eq. 1): counts and diagonal from ONE cached product."""
        self._require_symmetric(metapath, "PathSim")
        counts = self.counts(metapath).tocoo()
        diag = self.diagonal(metapath)
        row, col, data = counts.row, counts.col, counts.data
        off_diag = row != col
        row, col, data = row[off_diag], col[off_diag], data[off_diag]
        denom = diag[row] + diag[col]
        valid = denom > 0
        row, col, data, denom = row[valid], col[valid], data[valid], denom[valid]
        scores = 2.0 * data / denom
        n = counts.shape[0]
        return sp.csr_matrix((scores, (row, col)), shape=(n, n))

    def _joinsim(self, metapath: MetaPath) -> sp.csr_matrix:
        """JoinSim: geometric-mean denominator, same single product."""
        self._require_symmetric(metapath, "JoinSim")
        counts = self.counts(metapath).tocoo()
        diag = self.diagonal(metapath)
        row, col, data = counts.row, counts.col, counts.data
        off_diag = row != col
        row, col, data = row[off_diag], col[off_diag], data[off_diag]
        denom = np.sqrt(diag[row] * diag[col])
        valid = denom > 0
        row, col, data, denom = row[valid], col[valid], data[valid], denom[valid]
        scores = np.clip(data / denom, 0.0, 1.0)
        n = counts.shape[0]
        return sp.csr_matrix((scores, (row, col)), shape=(n, n))

    def _hetesim(self, metapath: MetaPath) -> sp.csr_matrix:
        """HeteSim: cosine of half-path reachability distributions."""
        self._require_symmetric(metapath, "HeteSim")
        self._require_middle_type(metapath, "HeteSim")
        chain = self.chain(metapath)
        half = chain[: len(chain) // 2]
        reach: sp.csr_matrix = _row_normalize(half[0])
        for matrix in half[1:]:
            reach = sp.csr_matrix(reach @ _row_normalize(matrix))
        unit = _l2_normalize_rows(reach)
        scores = sp.csr_matrix(unit @ unit.T)
        scores.data = np.clip(scores.data, 0.0, 1.0)
        return drop_diagonal(scores)

    def _cosine(self, metapath: MetaPath) -> sp.csr_matrix:
        """Cosine of commuting-matrix rows (structural equivalence)."""
        self._require_symmetric(metapath, "cosine")
        unit = _l2_normalize_rows(self.counts(metapath))
        scores = sp.csr_matrix(unit @ unit.T)
        scores.data = np.clip(scores.data, 0.0, 1.0)
        return drop_diagonal(scores)

    # -------------------------------------------------------------- #
    # Bulk operations over cached matrices
    # -------------------------------------------------------------- #

    def top_k(
        self, metapath: MetaPath, k: int, measure: str = "pathsim"
    ) -> List[np.ndarray]:
        """Per-node top-``k`` neighbor ids under a similarity measure.

        Returns fresh arrays the caller owns (unlike the shared matrix
        views): neighbor lists are small and callers historically mutate
        them (sampling, set ops), which must not corrupt the cache.
        """
        self._sync()
        key = ("top_k", measure, tuple(metapath.node_types), int(k))
        lists = self._view(
            key, lambda: csr_row_topk(self.similarity(metapath, measure), k)
        )
        return [neighbors.copy() for neighbors in lists]

    def pathsim_pairs(self, metapath: MetaPath, pairs: np.ndarray) -> np.ndarray:
        """PathSim for explicit ``(u, v)`` pairs without a full matrix.

        Looks the ``m`` numerators up by ``searchsorted`` against the
        cached counts matrix and reads denominators off the cached
        diagonal — nothing n×n is built beyond the (already cached)
        commuting matrix itself.
        """
        self._require_symmetric(metapath, "PathSim")
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")
        counts = self.counts(metapath)
        u, v = pairs[:, 0], pairs[:, 1]
        numerators = csr_pair_values(
            counts, u, v, keys=self._pair_lookup_keys(metapath)
        )
        diag = self.diagonal(metapath)
        denominators = diag[u] + diag[v]
        scores = np.zeros(pairs.shape[0], dtype=np.float64)
        off_diag = u != v
        valid = off_diag & (denominators > 0)
        scores[valid] = 2.0 * numerators[valid] / denominators[valid]
        return scores

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #

    def stats(self) -> Dict[str, int]:
        """Cache telemetry for the current generation.

        - ``composed_products`` — chain multiplications actually run;
        - ``patched_products`` / ``patched_rows`` — row-scoped delta
          patches applied this generation, and the total rows respliced
          (a patched product is *not* a recomposition);
        - ``patched_views`` — derived top-k neighbor views respliced
          per-row on ingest instead of dropped;
        - ``cached_products`` / ``cached_views`` / ``cached_base`` —
          entry counts currently resident;
        - ``hits`` / ``misses`` — LRU lookups across products and views;
        - ``evictions`` — entries dropped to honor the memory budget;
        - ``spills`` — products written to the disk store;
        - ``disk_hits`` — products loaded from disk instead of composed;
        - ``claim_waits`` — compositions avoided by waiting on another
          worker's claim (concurrent-writer dedupe);
        - ``resident_bytes`` — accounted heap bytes resident in the LRU
          cache (never exceeds ``memory_budget`` when one is set;
          memory-mapped entries count ~0 here);
        - ``mapped_products`` / ``mapped_bytes`` — products currently
          served zero-copy from the store's mmap tier, and the bytes
          they would cost if they were heap-resident (they live in the
          OS page cache instead, shared across co-located workers).

        The cache-derived fields come from one
        :meth:`LRUByteCache.snapshot` (a single lock hold), so entry
        counts, counters, and ``resident_bytes`` are mutually
        consistent even while scheduler threads churn the cache; the
        whole dict doubles as this engine's registry collector
        (``repro_engine_*`` in ``GET /metrics``).
        """
        return self._obs.read()

    def _collect_metrics(self) -> Dict[str, int]:
        """Registry collector; :meth:`stats` is a thin view over it."""
        snap = self._cache.snapshot()
        cached_products = 0
        mapped_products = 0
        mapped_bytes = 0
        for key, value in snap["items"]:
            if key[0] != "product":
                continue
            cached_products += 1
            if value is not None and is_mmap_backed(value):
                mapped_products += 1
                mapped_bytes += nbytes_of(value)
        return {
            "composed_products": len(self.compose_log),
            "patched_products": len(self.patch_log),
            "patched_rows": int(sum(count for _, count in self.patch_log)),
            "patched_views": len(self.view_patch_log),
            "cached_products": cached_products,
            "cached_views": len(snap["items"]) - cached_products,
            "cached_base": len(self._base),
            "hits": snap["hits"],
            "misses": snap["misses"],
            "evictions": snap["evictions"],
            "spills": self.spills,
            "disk_hits": self.disk_hits,
            "claim_waits": self.claim_waits,
            "resident_bytes": snap["resident_bytes"],
            "mapped_products": mapped_products,
            "mapped_bytes": mapped_bytes,
        }


#: Weak-keyed registry: entries (and their engines) die with their HIN.
#: Engines hold only a weak reference back to the graph, so dropping the
#: last user reference to a HIN frees both it and its cached views — the
#: registry never pins pinned-view memory past the graph's lifetime.
_ENGINES: "weakref.WeakKeyDictionary[HIN, CommutingEngine]" = (
    weakref.WeakKeyDictionary()
)


def get_engine(
    hin: HIN,
    memory_budget: Union[Optional[int], object] = _UNSET,
    cache_dir: Union[Optional[str], object] = _UNSET,
) -> CommutingEngine:
    """The shared :class:`CommutingEngine` of a HIN (created on demand).

    Engines live in a weak-keyed registry so every call site touching the
    same graph shares one cache, while dropping the HIN releases the
    engine and everything it pinned; mutation invalidates lazily via the
    HIN's structural version counter.  ``memory_budget`` / ``cache_dir``
    configure the engine when given (creating it if needed, reconfiguring
    the shared instance otherwise); omit them to leave the current
    configuration untouched.
    """
    engine = _ENGINES.get(hin)
    if engine is None:
        engine = CommutingEngine(hin, memory_budget=memory_budget, cache_dir=cache_dir)
        engine._hin_pin = None  # the registry entry must not pin the HIN
        _ENGINES[hin] = engine
    else:
        if memory_budget is not _UNSET:
            engine.set_memory_budget(memory_budget)
        if cache_dir is not _UNSET:
            engine.set_cache_dir(cache_dir)
    return engine


def release_engine(hin: HIN) -> None:
    """Explicitly drop the registry's engine for ``hin`` (if any).

    Usually unnecessary — the registry is weak-keyed, so engines die with
    their HIN — but lets long-lived graphs shed all cached substrate
    state deterministically without waiting for budget-driven eviction.
    """
    _ENGINES.pop(hin, None)
