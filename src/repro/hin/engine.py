"""Shared commuting-matrix engine: compose each meta-path product once.

Every stage of the ConCH pipeline — PathSim filtering (§IV-A), the
similarity ablations, bipartite context graphs (§IV-C), meta-path
discovery, diagnostics, and several baselines — consumes *commuting
matrices*: chain products ``A_{T1,T2} @ ... @ A_{Tl,T_{l+1}}`` of per-hop
biadjacency matrices.  The seed recomputed these chains at every call
site; this module memoizes them per HIN so each distinct product is
composed exactly once.

Prefix-sharing scheme
---------------------
Products are keyed by their node-type tuple (``("A", "P", "C")`` for the
``APC`` half-chain).  A chain is composed by splitting its key into two
shorter keys and multiplying their (recursively memoized) products, so
sub-chains are shared across meta-paths: composing ``APCPA`` materializes
``AP`` and ``APC`` along the way, and a later request for the HeteSim
half-path ``APC`` — or for ``APCPC`` — hits the cache.  Three candidate
splits are considered for every key:

- **left association** ``(T1..Tl) @ (Tl, Tl+1)`` — maximizes prefix reuse;
- **right association** ``(T1, T2) @ (T2..Tl+1)`` — maximizes suffix reuse;
- **middle split** for palindromic odd-length keys — shares the half-path
  product that HeteSim and :func:`half_commuting_matrix` need anyway.

The winner is the split with the lowest *estimated* sparse-flop cost
(``nnz(X) * nnz(Y) / inner_dim``, with sub-product nnz estimated by the
standard density-propagation bound when not already cached); ties go to
left association.  Cached sub-products count as free, so the association
adapts as the cache warms.

Views and bulk operations
-------------------------
From one cached product the engine serves counts (with or without the
diagonal), the diagonal itself, the binary (reachability) projection, the
half-path product, and all four similarity measures — plus vectorized
bulk operations that replace per-row/per-pair Python loops:

- :func:`csr_row_topk` — lexsort-based row-wise top-k over a whole CSR;
- :func:`csr_pair_values` — ``searchsorted`` lookup of ``(u, v)`` entries
  on the ``indptr``/``indices`` structure, never densifying;
- :func:`drop_diagonal` — boolean-mask diagonal removal on the COO
  coordinate arrays that stays CSR end-to-end (no LIL round-trip).

Cache management
----------------
All memoized state (chain products and every derived view) is routed
through :class:`repro.hin.cache.LRUByteCache`: each entry is registered
with its byte size and recency, and a configurable ``memory_budget``
(constructor argument, or :data:`repro.hin.cache.DEFAULT_MEMORY_BUDGET`)
evicts least-recently-used entries when resident bytes exceed it.
Eviction is semantically invisible — an evicted product or view is
transparently recomposed on next access, and prefix sharing consults
whatever survives.  Base per-hop biadjacencies stay pinned outside the
budget (they mirror what the HIN itself holds).

Composed products can additionally persist to a disk-backed store
(:class:`repro.hin.cache.ProductStore`) keyed by the HIN's content hash:
pass ``cache_dir=...`` or set ``REPRO_CACHE_DIR``.  Cold lookups check
disk before composing, compositions write through, and eviction spills
any product not yet on disk — so a second process over the same dataset
composes zero products from scratch.  Disk loads come back **read-only
and memory-mapped** (the store's zero-copy sidecar tier): they register
at ~zero resident bytes in the memory budget because their pages live in
the OS page cache, shared by every co-located worker mapping the same
store.  See :mod:`repro.hin.cache` for the cache-tuning guide (budget,
env var, mmap tier, cold/warm benchmarking).

Cache invalidation
------------------
:class:`~repro.hin.graph.HIN` bumps a structural version counter on every
mutation (``add_node_type`` / ``add_edges``); the engine compares it on
every access and drops all cached state when the graph changed.  Matrices
returned by engine methods are shared cache entries: **treat them as
read-only** (the legacy wrappers in :mod:`repro.hin.adjacency` hand out
copies for callers that want ownership).
"""

from __future__ import annotations

import time
import weakref
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.hin import cache as cache_config
from repro.hin.cache import (
    LRUByteCache,
    ProductStore,
    csr_from_components,
    default_cache_dir,
    is_mmap_backed,
    nbytes_of,
    resident_nbytes,
)
from repro.hin.graph import HIN
from repro.hin.io import hin_content_hash
from repro.hin.metapath import MetaPath

Key = Tuple[str, ...]

#: Sentinel for "argument not given" (None is a meaningful value for both
#: ``memory_budget`` — unlimited — and ``cache_dir`` — disk store off).
_UNSET = object()

_MISS = object()

#: Ranking measures the engine can serve (mirrors similarity.py).
MEASURES = ("pathsim", "hetesim", "joinsim", "cosine")


# ---------------------------------------------------------------------- #
# Vectorized bulk operations (engine-independent, reusable)
# ---------------------------------------------------------------------- #


def drop_diagonal(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Copy of ``matrix`` with a structurally absent diagonal.

    Masks the COO coordinate arrays instead of round-tripping through LIL
    (`tolil()`/`setdiag`/`tocsr`), staying CSR-sorted throughout: within a
    CSR row the column indices are already ordered, and removing entries
    preserves that order, so no re-sort or duplicate coalescing happens.
    """
    matrix = sp.csr_matrix(matrix)
    if not matrix.has_sorted_indices:
        matrix = matrix.copy()
        matrix.sort_indices()
    n_rows = matrix.shape[0]
    lengths = np.diff(matrix.indptr)
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
    keep = matrix.indices != rows
    kept_per_row = np.bincount(rows[keep], minlength=n_rows)
    # concatenate promotes the [0] head to int64; scipy requires indptr
    # and indices dtypes to agree, and csr_from_components skips the
    # constructor's re-cast, so pin the dtype here.
    indptr = np.concatenate(
        ([0], np.cumsum(kept_per_row, dtype=np.int64))
    ).astype(matrix.indptr.dtype, copy=False)
    return csr_from_components(
        matrix.data[keep], matrix.indices[keep], indptr, matrix.shape
    )


def csr_row_topk(matrix: sp.spmatrix, k: int) -> List[np.ndarray]:
    """Per-row top-``k`` column indices by value, ties broken by column id.

    One ``lexsort`` over ``(column, -value, row)`` replaces the per-row
    Python loop: after the sort, rows occupy the same contiguous segments
    as in ``indptr``, so the top-k of every row is a vectorized slice.
    Unlike the seed loop (whose ``argpartition`` broke value ties at the
    k boundary arbitrarily), ties are always resolved toward the lower
    column id, making neighbor selection fully deterministic.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    matrix = sp.csr_matrix(matrix)
    n_rows = matrix.shape[0]
    lengths = np.diff(matrix.indptr)
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
    order = np.lexsort((matrix.indices, -matrix.data, rows))
    sorted_cols = matrix.indices[order]
    ranks = np.arange(matrix.nnz, dtype=np.int64) - np.repeat(
        matrix.indptr[:-1].astype(np.int64), lengths
    )
    keep = ranks < k
    kept_per_row = np.minimum(lengths, k)
    boundaries = np.cumsum(kept_per_row)[:-1]
    return np.split(sorted_cols[keep], boundaries)


def csr_pair_keys(matrix: sp.csr_matrix) -> np.ndarray:
    """Sorted ``row * ncols + col`` keys of a CSR's stored entries.

    CSR stores rows in order and column indices sorted within each row,
    so this flattened key array is globally sorted — ready for
    ``np.searchsorted`` lookups (:func:`csr_pair_values`).
    """
    matrix = sp.csr_matrix(matrix)
    if not matrix.has_sorted_indices:
        matrix.sort_indices()
    lengths = np.diff(matrix.indptr)
    rows = np.repeat(np.arange(matrix.shape[0], dtype=np.int64), lengths)
    return rows * np.int64(matrix.shape[1]) + matrix.indices


def csr_pair_values(
    matrix: sp.spmatrix,
    u: np.ndarray,
    v: np.ndarray,
    keys: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Values ``matrix[u_i, v_i]`` for index arrays, absent entries = 0.

    A single ``searchsorted`` against the flattened sorted entry keys
    replaces per-pair ``matrix[u, v]`` indexing; ``keys`` may be passed
    precomputed (see :func:`csr_pair_keys`) to amortize repeated lookups.
    """
    matrix = sp.csr_matrix(matrix)
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.shape != v.shape:
        raise ValueError("u and v must have the same shape")
    if u.size and (
        u.min() < 0
        or u.max() >= matrix.shape[0]
        or v.min() < 0
        or v.max() >= matrix.shape[1]
    ):
        raise IndexError("pair indices out of range")
    if keys is None:
        keys = csr_pair_keys(matrix)
    targets = u * np.int64(matrix.shape[1]) + v
    positions = np.searchsorted(keys, targets)
    positions_clipped = np.minimum(positions, max(keys.size - 1, 0))
    out = np.zeros(u.shape[0], dtype=np.float64)
    if keys.size:
        hits = keys[positions_clipped] == targets
        out[hits] = matrix.data[positions_clipped[hits]]
    return out


# ---------------------------------------------------------------------- #
# The engine
# ---------------------------------------------------------------------- #


def _row_normalize(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Rows rescaled to sum to 1 (zero rows stay zero)."""
    matrix = sp.csr_matrix(matrix, dtype=np.float64)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(
        1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 0
    )
    return sp.csr_matrix(sp.diags(scale) @ matrix)


def _l2_normalize_rows(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Rows rescaled to unit L2 norm (zero rows stay zero)."""
    matrix = sp.csr_matrix(matrix, dtype=np.float64)
    norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel())
    scale = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
    return sp.csr_matrix(sp.diags(scale) @ matrix)


class CommutingEngine:
    """Per-HIN memoizing layer over meta-path chain products.

    One engine serves one :class:`HIN`; obtain it through
    :func:`get_engine` so all call sites share the same cache.  All cached
    matrices are returned by reference — treat them as read-only.

    Parameters
    ----------
    hin:
        The graph served.  A directly-constructed engine pins it alive;
        engines obtained through :func:`get_engine` hold it weakly, so
        dropping the HIN releases the shared engine and everything it
        cached.
    memory_budget:
        Byte cap on resident cached entries (LRU eviction above it);
        ``None`` = unlimited.  Defaults to
        :data:`repro.hin.cache.DEFAULT_MEMORY_BUDGET`.
    cache_dir:
        Directory of the disk-backed product store; ``None`` disables it.
        Defaults to the ``REPRO_CACHE_DIR`` environment variable.
    """

    def __init__(
        self,
        hin: HIN,
        memory_budget: Union[Optional[int], object] = _UNSET,
        cache_dir: Union[Optional[str], object] = _UNSET,
    ):
        self._hin_ref = weakref.ref(hin)
        #: Strong pin on the graph: a directly-constructed engine keeps
        #: its HIN alive (the pre-existing contract — callers may pass a
        #: temporary).  :func:`get_engine` clears the pin on registry
        #: engines so the weak-keyed registry lets both die together
        #: when the caller drops the HIN.
        self._hin_pin: Optional[HIN] = hin
        self._version = hin.version
        #: Pinned per-hop biadjacencies — outside the memory budget; they
        #: mirror edge data the HIN holds anyway and every recomposition
        #: bottoms out on them.
        self._base: Dict[Tuple[str, str], sp.csr_matrix] = {}
        self._validated: set = set()
        if memory_budget is _UNSET:
            memory_budget = cache_config.DEFAULT_MEMORY_BUDGET
        self._cache = LRUByteCache(memory_budget, on_evict=self._on_evict)
        if cache_dir is _UNSET:
            cache_dir = default_cache_dir()
        self._store: Optional[ProductStore] = (
            ProductStore(cache_dir) if cache_dir else None
        )
        #: Product keys known to be on disk under the current content
        #: hash (written or loaded this generation) — lets eviction skip
        #: redundant spills.
        self._on_disk: set = set()
        #: Log of composed (multiplied) product keys in the current cache
        #: generation — the call-count spy hook: duplicates here mean a
        #: product was rebuilt.  Cleared on invalidation.
        self.compose_log: List[Key] = []
        #: Measured wall-clock seconds of each composition, keyed by
        #: product key (the compose-event log).  Feeds the cost-aware
        #: eviction priority: an entry's rebuild cost weights it against
        #: recency, so a 5-hop product survives pressure from cheap
        #: diagonals.
        self.compose_seconds: Dict[Key, float] = {}
        self.disk_hits = 0
        self.spills = 0
        #: Compositions avoided by waiting on another worker's claim
        #: (concurrent-writer dedupe; see ProductStore.acquire_claim).
        self.claim_waits = 0

    @property
    def _hin(self) -> HIN:
        hin = self._hin_ref()
        if hin is None:
            raise ReferenceError(
                "the HIN behind this CommutingEngine was garbage-collected"
            )
        return hin

    # -------------------------------------------------------------- #
    # Cache configuration and telemetry plumbing
    # -------------------------------------------------------------- #

    @property
    def memory_budget(self) -> Optional[int]:
        """Resident-byte cap of the view cache (``None`` = unlimited)."""
        return self._cache.budget

    def set_memory_budget(self, memory_budget: Optional[int]) -> None:
        """Change the budget; shrinking evicts eagerly to fit."""
        self._cache.budget = memory_budget

    @property
    def cache_dir(self) -> Optional[str]:
        """Directory of the disk-backed product store, if enabled."""
        return str(self._store.directory) if self._store is not None else None

    def set_cache_dir(self, cache_dir: Optional[str]) -> None:
        """Point the engine at a (possibly different) product store.

        A no-op when the directory is unchanged, so repeated pipeline
        runs with the same config keep their on-disk bookkeeping.
        """
        if (str(Path(cache_dir)) if cache_dir else None) == self.cache_dir:
            return
        self._store = ProductStore(cache_dir) if cache_dir else None
        self._on_disk.clear()

    @property
    def hits(self) -> int:
        """Cache hits across all products and views this generation."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Cache misses across all products and views this generation."""
        return self._cache.misses

    def _content_hash(self) -> str:
        return hin_content_hash(self._hin)

    def _on_evict(self, key: Tuple, value) -> None:
        """Eviction hook: spill a composed product to disk before dropping.

        Products are normally written through at composition time, so
        this only writes when the store was attached after the product
        was composed (or a write failed); views are recomputable from
        products and never spill.
        """
        if self._store is None or key[0] != "product":
            return
        hin = self._hin_ref()
        if hin is None or hin.version != self._version:
            # Eviction can fire without a _sync (set_memory_budget /
            # set_cache_dir): never write a value composed from an older
            # graph generation under the current content hash.
            return
        product_key = key[1]
        if len(product_key) < 3 or product_key in self._on_disk:
            return
        if self._store.save(self._content_hash(), product_key, value):
            self._on_disk.add(product_key)
            self.spills += 1

    # -------------------------------------------------------------- #
    # Invalidation
    # -------------------------------------------------------------- #

    def _sync(self) -> None:
        """Drop every cache when the HIN mutated since the last access."""
        if self._hin.version != self._version:
            self.invalidate()

    def invalidate(self) -> None:
        """Drop all cached state and telemetry (mutation does this lazily).

        The compose log and hit/miss counters reset too: the compose-once
        contract is *per cache generation*, so a legitimately invalidated
        engine recomposing a product is not a duplicate composition.
        Disk-store files are untouched — they are keyed by content hash,
        so an unchanged graph reloads them instead of recomposing (the
        "cold memory, warm disk" scenario of a fresh process).
        """
        self._base.clear()
        self._validated.clear()
        self._cache.clear()
        self._cache.reset_stats()
        self._on_disk.clear()
        self.compose_log.clear()
        self.compose_seconds.clear()
        self.disk_hits = 0
        self.spills = 0
        self.claim_waits = 0
        self._version = self._hin.version

    # -------------------------------------------------------------- #
    # Base adjacencies and chain products
    # -------------------------------------------------------------- #

    def base(self, src_type: str, dst_type: str) -> sp.csr_matrix:
        """Cached per-hop biadjacency (union of relations src → dst).

        Column indices are guaranteed sorted within each row: the context
        kernel and the DFS fallback binary-search these index arrays
        (``np.searchsorted`` membership tests), which silently return
        wrong answers on unsorted CSR.
        """
        self._sync()
        key = (src_type, dst_type)
        if key not in self._base:
            matrix = self._hin.adjacency(src_type, dst_type)
            if not matrix.has_sorted_indices:
                matrix.sort_indices()
            self._base[key] = matrix
        return self._base[key]

    def _validate(self, metapath: MetaPath) -> None:
        """Schema-validate a meta-path once per cache generation."""
        self._sync()
        key = tuple(metapath.node_types)
        if key not in self._validated:
            metapath.validate(self._hin.schema())
            self._validated.add(key)

    def _view(self, key: Tuple, build):
        """Serve one derived view through the budgeted LRU cache.

        On a miss the view is rebuilt by ``build()`` and re-registered —
        this is what makes eviction semantically invisible: the build
        closures only read cached products (themselves recomposable) and
        the pinned base matrices.  The build's wall-clock cost weights
        the entry's eviction priority (expensive views outlive cheap
        ones under memory pressure).
        """
        value = self._cache.get(key, _MISS)
        if value is _MISS:
            started = time.perf_counter()
            value = build()
            self._cache.put(key, value, cost=time.perf_counter() - started)
        return value

    def chain(self, metapath: MetaPath) -> List[sp.csr_matrix]:
        """Per-hop biadjacency list along a meta-path (hops all cached)."""
        self._validate(metapath)
        types = metapath.node_types
        return [self.base(a, b) for a, b in zip(types[:-1], types[1:])]

    def product(self, node_types: Sequence[str]) -> sp.csr_matrix:
        """Memoized chain product for a node-type sequence."""
        self._sync()
        key = tuple(node_types)
        if len(key) < 2:
            raise ValueError("a chain needs at least two node types")
        return self._product(key)

    def _product(self, key: Key) -> sp.csr_matrix:
        cached = self._cache.get(("product", key), _MISS)
        if cached is not _MISS:
            return cached
        if len(key) == 2:
            # Alias of the pinned base biadjacency: registered at 0 bytes
            # (the base dict owns the memory) purely so repeated accesses
            # count as hits.
            result = self.base(key[0], key[1])
            self._cache.put(("product", key), result, nbytes=0)
            return result
        # The entry's eviction-priority cost is what a *post-eviction*
        # re-acquisition would pay: the measured disk-load time when the
        # product is on disk, the measured compose time otherwise.
        # Claim-wait blocking time is deliberately excluded — after a
        # wait the product sits on disk, so its re-acquisition is a
        # cheap load no matter how long the peer took to write it.
        cost = 0.0
        result = None
        if self._store is not None:
            content_hash = self._content_hash()
            started = time.perf_counter()
            result = self._store.load(content_hash, key)
            if result is not None:
                cost = time.perf_counter() - started
                self.disk_hits += 1
                self._on_disk.add(key)
            elif self._store.acquire_claim(content_hash, key):
                # This worker won the compose claim for the cluster.
                try:
                    result = self._compose(key, holds_claim=True)
                finally:
                    self._store.release_claim(content_hash, key)
                cost = self.compose_seconds.get(key, 0.0)
            else:
                # Another live worker is composing the same product:
                # wait for its write-through instead of duplicating the
                # multiplication; a dead writer's stale claim times out
                # and composition falls back to us.
                result = self._store.wait_for(content_hash, key)
                if result is not None:
                    self.disk_hits += 1
                    self.claim_waits += 1
                    self._on_disk.add(key)
                else:
                    result = self._compose(key)
                    cost = self.compose_seconds.get(key, 0.0)
        if result is None:
            result = self._compose(key)
            cost = self.compose_seconds.get(key, 0.0)
        # Mapped products are page-cache, not heap: they register at
        # ~zero resident bytes, so N co-located workers mapping the same
        # store pay for one copy total and never evict real heap entries
        # to "free" shared pages.
        self._cache.put(
            ("product", key), result, nbytes=resident_nbytes(result), cost=cost
        )
        return result

    def _compose(self, key: Key, holds_claim: bool = False) -> sp.csr_matrix:
        """Multiply a chain product, log the compose event, write through."""
        started = time.perf_counter()
        left_key, right_key = self._split(key)
        left = self._product(left_key)
        right = self._product(right_key)
        if holds_claim and self._store is not None:
            # Sub-products may have taken a while: renew this key's
            # claim lease before the final multiply so waiters do not
            # mistake a slow-but-live writer for a dead one.  (Only the
            # claim holder refreshes — a fallback composer must never
            # extend a dead writer's lease.)
            self._store.refresh_claim(self._content_hash(), key)
        result = sp.csr_matrix(left @ right)
        result.sort_indices()
        self.compose_log.append(key)
        self.compose_seconds[key] = time.perf_counter() - started
        if self._store is not None and key not in self._on_disk:
            if self._store.save(self._content_hash(), key, result):
                self._on_disk.add(key)
                self.spills += 1
        return result

    def _split(self, key: Key) -> Tuple[Key, Key]:
        """Cost-aware association: pick the cheapest of the candidate splits.

        Candidates: left association (prefix reuse), right association
        (suffix reuse), and — for palindromic odd-length keys — the middle
        split that shares the half-path product.  Cached sub-products cost
        nothing, so warm caches steer the association toward reuse.
        """
        candidates = [len(key) - 2, 1]
        if len(key) % 2 == 1 and key == key[::-1]:
            candidates.insert(0, len(key) // 2)
        best: Optional[Tuple[float, Key, Key]] = None
        for split in candidates:
            left, right = key[: split + 1], key[split:]
            left_nnz, left_cost = self._estimate(left)
            right_nnz, right_cost = self._estimate(right)
            inner = max(1, self._hin.num_nodes(key[split]))
            cost = left_cost + right_cost + left_nnz * right_nnz / inner
            if best is None or cost < best[0]:
                best = (cost, left, right)
        assert best is not None
        return best[1], best[2]

    def _estimate(self, key: Key) -> Tuple[float, float]:
        """``(estimated nnz, estimated flops to build)`` of a sub-product.

        Cached products report their true nnz at zero cost; otherwise nnz
        propagates by the standard density bound
        ``nnz(XY) <= min(rows*cols, nnz(X)*nnz(Y)/inner)`` along a left
        fold, which is cheap and adequate for choosing among three splits.
        (``peek`` keeps estimation from perturbing LRU recency or the
        hit/miss counters; after eviction the estimate simply falls back
        to the density bound — prefix sharing consults what survives.)
        """
        cached = self._cache.peek(("product", key), _MISS)
        if cached is not _MISS:
            return float(cached.nnz), 0.0
        if len(key) == 2:
            return float(self.base(key[0], key[1]).nnz), 0.0
        nnz, cost = self._estimate(key[:2])
        for position in range(1, len(key) - 1):
            hop_nnz = float(self.base(key[position], key[position + 1]).nnz)
            inner = max(1, self._hin.num_nodes(key[position]))
            cost += nnz * hop_nnz / inner
            bound = float(
                self._hin.num_nodes(key[0])
            ) * self._hin.num_nodes(key[position + 1])
            nnz = min(bound, nnz * hop_nnz / inner)
        return nnz, cost

    # -------------------------------------------------------------- #
    # Views of one cached product
    # -------------------------------------------------------------- #

    def counts(
        self,
        metapath: MetaPath,
        remove_self_paths: bool = False,
        max_count: Optional[float] = None,
    ) -> sp.csr_matrix:
        """Commuting (path-instance count) matrix, cached per variant."""
        self._validate(metapath)
        key = tuple(metapath.node_types)
        self_paths = remove_self_paths and metapath.source_type == metapath.target_type
        if max_count is None and not self_paths:
            # The raw variant IS the product — serving it directly keeps
            # the budget accounting alias-free (one entry owns the bytes).
            return self._product(key)

        def build() -> sp.csr_matrix:
            matrix = self._product(key)
            if max_count is not None:
                matrix = matrix.copy()
                matrix.data = np.minimum(matrix.data, max_count)
            if self_paths:
                matrix = drop_diagonal(matrix)
                matrix.eliminate_zeros()
            return matrix

        return self._view(
            ("counts", key, bool(remove_self_paths), max_count), build
        )

    def diagonal(self, metapath: MetaPath) -> np.ndarray:
        """Self-path counts ``M[u, u]`` from the cached raw product."""
        self._sync()
        key = ("diagonal", tuple(metapath.node_types))
        return self._view(key, lambda: self.counts(metapath).diagonal())

    def binary(self, metapath: MetaPath) -> sp.csr_matrix:
        """Binary (reachability) projection with the diagonal removed."""
        self._sync()
        key = ("binary", tuple(metapath.node_types))

        def build() -> sp.csr_matrix:
            binary = self.counts(metapath, remove_self_paths=True).copy()
            binary.data[:] = 1.0
            return binary

        return self._view(key, build)

    def half(self, metapath: MetaPath) -> sp.csr_matrix:
        """Half-path product (endpoint type → middle type)."""
        self._require_symmetric(metapath, "half_commuting_matrix")
        self._require_middle_type(metapath, "half_commuting_matrix")
        types = metapath.node_types
        return self.product(types[: len(types) // 2 + 1])

    def _pair_lookup_keys(self, metapath: MetaPath) -> np.ndarray:
        """Cached flattened entry keys of the raw counts matrix."""
        self._sync()
        key = ("pair_keys", tuple(metapath.node_types))
        return self._view(key, lambda: csr_pair_keys(self.counts(metapath)))

    # -------------------------------------------------------------- #
    # Suffix (reverse-chain) views — pruning masks for the context
    # kernel
    # -------------------------------------------------------------- #

    def suffix_products(self, metapath: MetaPath) -> List[sp.csr_matrix]:
        """Cached suffix chain products ``position → target endpoint``.

        Entry ``j`` is the product of hops ``j..L-2`` of the meta-path,
        i.e. the matrix whose ``(x, v)`` entry counts path completions
        from a node ``x`` at meta-path position ``j`` to a target-type
        node ``v``.  Entry 0 is the full commuting matrix and entry
        ``L-2`` is the last hop's biadjacency.  The batched frontier
        kernel (:mod:`repro.hin.context`) uses these as backward
        reachability masks: a partial path whose head has a zero suffix
        entry for its pair's target can never complete and is pruned
        before expansion.

        Suffix sub-products are shared through the same memo as every
        other chain (the right-association split candidate composes
        ``(T1, T2) @ (T2..Tl+1)``, so ``suffix[j]`` reuses
        ``suffix[j+1]`` when that association wins).  Each suffix is an
        individually cached product, so all of them participate in the
        LRU memory budget; :meth:`suffix_product` serves one position
        lazily without materializing the deeper ones.
        """
        return [
            self.suffix_product(metapath, position)
            for position in range(len(metapath.node_types) - 1)
        ]

    def suffix_product(self, metapath: MetaPath, position: int) -> sp.csr_matrix:
        """One suffix chain product ``position → target endpoint``."""
        self._validate(metapath)
        types = tuple(metapath.node_types)
        if not 0 <= position < len(types) - 1:
            raise IndexError(
                f"suffix position {position} out of range for {metapath.name!r}"
            )
        return self._product(types[position:])

    def suffix_pair_keys(self, metapath: MetaPath, position: int) -> np.ndarray:
        """Cached ``csr_pair_keys`` of one suffix product (kernel lookups)."""
        self._sync()
        key = ("suffix_keys", tuple(metapath.node_types), int(position))
        return self._view(
            key, lambda: csr_pair_keys(self.suffix_product(metapath, position))
        )

    def pair_counts(self, metapath: MetaPath, pairs: np.ndarray) -> np.ndarray:
        """Exact path-instance counts for explicit ``(u, v)`` pairs.

        One ``searchsorted`` against the cached commuting matrix — the
        vectorized form of :func:`repro.hin.context.count_instances`.
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")
        counts = self.counts(metapath)
        return csr_pair_values(
            counts,
            pairs[:, 0],
            pairs[:, 1],
            keys=self._pair_lookup_keys(metapath),
        )

    # -------------------------------------------------------------- #
    # Similarity measures
    # -------------------------------------------------------------- #

    @staticmethod
    def _require_symmetric(metapath: MetaPath, measure: str) -> None:
        if not metapath.is_symmetric():
            raise ValueError(
                f"{measure} requires a symmetric meta-path, got {metapath.name!r}"
            )

    @staticmethod
    def _require_middle_type(metapath: MetaPath, measure: str) -> None:
        if len(metapath.node_types) % 2 == 0:
            raise ValueError(
                f"{measure} needs a middle node type; meta-path "
                f"{metapath.name!r} has an even number of types "
                f"(decompose the middle relation first)"
            )

    def similarity(self, metapath: MetaPath, measure: str) -> sp.csr_matrix:
        """Cached similarity matrix under one of :data:`MEASURES`."""
        self._sync()
        if measure not in MEASURES:
            raise ValueError(
                f"unknown similarity measure {measure!r}; known: {MEASURES}"
            )
        key = ("similarity", measure, tuple(metapath.node_types))
        return self._view(key, lambda: getattr(self, f"_{measure}")(metapath))

    def _pathsim(self, metapath: MetaPath) -> sp.csr_matrix:
        """PathSim (Eq. 1): counts and diagonal from ONE cached product."""
        self._require_symmetric(metapath, "PathSim")
        counts = self.counts(metapath).tocoo()
        diag = self.diagonal(metapath)
        row, col, data = counts.row, counts.col, counts.data
        off_diag = row != col
        row, col, data = row[off_diag], col[off_diag], data[off_diag]
        denom = diag[row] + diag[col]
        valid = denom > 0
        row, col, data, denom = row[valid], col[valid], data[valid], denom[valid]
        scores = 2.0 * data / denom
        n = counts.shape[0]
        return sp.csr_matrix((scores, (row, col)), shape=(n, n))

    def _joinsim(self, metapath: MetaPath) -> sp.csr_matrix:
        """JoinSim: geometric-mean denominator, same single product."""
        self._require_symmetric(metapath, "JoinSim")
        counts = self.counts(metapath).tocoo()
        diag = self.diagonal(metapath)
        row, col, data = counts.row, counts.col, counts.data
        off_diag = row != col
        row, col, data = row[off_diag], col[off_diag], data[off_diag]
        denom = np.sqrt(diag[row] * diag[col])
        valid = denom > 0
        row, col, data, denom = row[valid], col[valid], data[valid], denom[valid]
        scores = np.clip(data / denom, 0.0, 1.0)
        n = counts.shape[0]
        return sp.csr_matrix((scores, (row, col)), shape=(n, n))

    def _hetesim(self, metapath: MetaPath) -> sp.csr_matrix:
        """HeteSim: cosine of half-path reachability distributions."""
        self._require_symmetric(metapath, "HeteSim")
        self._require_middle_type(metapath, "HeteSim")
        chain = self.chain(metapath)
        half = chain[: len(chain) // 2]
        reach: sp.csr_matrix = _row_normalize(half[0])
        for matrix in half[1:]:
            reach = sp.csr_matrix(reach @ _row_normalize(matrix))
        unit = _l2_normalize_rows(reach)
        scores = sp.csr_matrix(unit @ unit.T)
        scores.data = np.clip(scores.data, 0.0, 1.0)
        return drop_diagonal(scores)

    def _cosine(self, metapath: MetaPath) -> sp.csr_matrix:
        """Cosine of commuting-matrix rows (structural equivalence)."""
        self._require_symmetric(metapath, "cosine")
        unit = _l2_normalize_rows(self.counts(metapath))
        scores = sp.csr_matrix(unit @ unit.T)
        scores.data = np.clip(scores.data, 0.0, 1.0)
        return drop_diagonal(scores)

    # -------------------------------------------------------------- #
    # Bulk operations over cached matrices
    # -------------------------------------------------------------- #

    def top_k(
        self, metapath: MetaPath, k: int, measure: str = "pathsim"
    ) -> List[np.ndarray]:
        """Per-node top-``k`` neighbor ids under a similarity measure.

        Returns fresh arrays the caller owns (unlike the shared matrix
        views): neighbor lists are small and callers historically mutate
        them (sampling, set ops), which must not corrupt the cache.
        """
        self._sync()
        key = ("top_k", measure, tuple(metapath.node_types), int(k))
        lists = self._view(
            key, lambda: csr_row_topk(self.similarity(metapath, measure), k)
        )
        return [neighbors.copy() for neighbors in lists]

    def pathsim_pairs(self, metapath: MetaPath, pairs: np.ndarray) -> np.ndarray:
        """PathSim for explicit ``(u, v)`` pairs without a full matrix.

        Looks the ``m`` numerators up by ``searchsorted`` against the
        cached counts matrix and reads denominators off the cached
        diagonal — nothing n×n is built beyond the (already cached)
        commuting matrix itself.
        """
        self._require_symmetric(metapath, "PathSim")
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")
        counts = self.counts(metapath)
        u, v = pairs[:, 0], pairs[:, 1]
        numerators = csr_pair_values(
            counts, u, v, keys=self._pair_lookup_keys(metapath)
        )
        diag = self.diagonal(metapath)
        denominators = diag[u] + diag[v]
        scores = np.zeros(pairs.shape[0], dtype=np.float64)
        off_diag = u != v
        valid = off_diag & (denominators > 0)
        scores[valid] = 2.0 * numerators[valid] / denominators[valid]
        return scores

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #

    def stats(self) -> Dict[str, int]:
        """Cache telemetry for the current generation.

        - ``composed_products`` — chain multiplications actually run;
        - ``cached_products`` / ``cached_views`` / ``cached_base`` —
          entry counts currently resident;
        - ``hits`` / ``misses`` — LRU lookups across products and views;
        - ``evictions`` — entries dropped to honor the memory budget;
        - ``spills`` — products written to the disk store;
        - ``disk_hits`` — products loaded from disk instead of composed;
        - ``claim_waits`` — compositions avoided by waiting on another
          worker's claim (concurrent-writer dedupe);
        - ``resident_bytes`` — accounted heap bytes resident in the LRU
          cache (never exceeds ``memory_budget`` when one is set;
          memory-mapped entries count ~0 here);
        - ``mapped_products`` / ``mapped_bytes`` — products currently
          served zero-copy from the store's mmap tier, and the bytes
          they would cost if they were heap-resident (they live in the
          OS page cache instead, shared across co-located workers).
        """
        cached_products = 0
        mapped_products = 0
        mapped_bytes = 0
        for key in self._cache.keys():
            if key[0] != "product":
                continue
            cached_products += 1
            value = self._cache.peek(key)
            if value is not None and is_mmap_backed(value):
                mapped_products += 1
                mapped_bytes += nbytes_of(value)
        return {
            "composed_products": len(self.compose_log),
            "cached_products": cached_products,
            "cached_views": len(self._cache) - cached_products,
            "cached_base": len(self._base),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self._cache.evictions,
            "spills": self.spills,
            "disk_hits": self.disk_hits,
            "claim_waits": self.claim_waits,
            "resident_bytes": self._cache.resident_bytes,
            "mapped_products": mapped_products,
            "mapped_bytes": mapped_bytes,
        }


#: Weak-keyed registry: entries (and their engines) die with their HIN.
#: Engines hold only a weak reference back to the graph, so dropping the
#: last user reference to a HIN frees both it and its cached views — the
#: registry never pins pinned-view memory past the graph's lifetime.
_ENGINES: "weakref.WeakKeyDictionary[HIN, CommutingEngine]" = (
    weakref.WeakKeyDictionary()
)


def get_engine(
    hin: HIN,
    memory_budget: Union[Optional[int], object] = _UNSET,
    cache_dir: Union[Optional[str], object] = _UNSET,
) -> CommutingEngine:
    """The shared :class:`CommutingEngine` of a HIN (created on demand).

    Engines live in a weak-keyed registry so every call site touching the
    same graph shares one cache, while dropping the HIN releases the
    engine and everything it pinned; mutation invalidates lazily via the
    HIN's structural version counter.  ``memory_budget`` / ``cache_dir``
    configure the engine when given (creating it if needed, reconfiguring
    the shared instance otherwise); omit them to leave the current
    configuration untouched.
    """
    engine = _ENGINES.get(hin)
    if engine is None:
        engine = CommutingEngine(hin, memory_budget=memory_budget, cache_dir=cache_dir)
        engine._hin_pin = None  # the registry entry must not pin the HIN
        _ENGINES[hin] = engine
    else:
        if memory_budget is not _UNSET:
            engine.set_memory_budget(memory_budget)
        if cache_dir is not _UNSET:
            engine.set_cache_dir(cache_dir)
    return engine


def release_engine(hin: HIN) -> None:
    """Explicitly drop the registry's engine for ``hin`` (if any).

    Usually unnecessary — the registry is weak-keyed, so engines die with
    their HIN — but lets long-lived graphs shed all cached substrate
    state deterministically without waiting for budget-driven eviction.
    """
    _ENGINES.pop(hin, None)
