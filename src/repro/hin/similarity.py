"""Meta-path similarity measures beyond PathSim.

ConCH filters neighbors by PathSim (Eq. 1); the paper notes the choice of
ranking function is orthogonal to the architecture.  This module provides
the standard alternatives from the HIN similarity-search literature so the
filtering stage can be ablated:

- :func:`hetesim_matrix` — HeteSim (Shi et al., TKDE 2014): cosine of the
  *probability* distributions over middle-type objects reached from each
  endpoint along the two half-paths.
- :func:`joinsim_matrix` — JoinSim (Xiong et al., VLDB 2015): path-join
  count normalized by the geometric mean of the self-join counts,
  ``M[u,v] / sqrt(M[u,u] * M[v,v])``.
- :func:`cosine_commuting_matrix` — structural equivalence: cosine
  similarity of commuting-matrix rows (two nodes are similar when they
  reach the *same* meta-path neighbors, even if not each other).

All measures are symmetric, bounded in ``[0, 1]``, and returned as sparse
matrices with a structurally absent diagonal, matching the conventions of
:func:`repro.hin.pathsim.pathsim_matrix`.

The matrices themselves are computed and cached by
:mod:`repro.hin.engine` (one commuting-matrix composition per HIN, shared
across measures); these wrappers return owned copies.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from repro.hin.engine import MEASURES, get_engine
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath

#: Ranking measures usable by the neighbor filter (plus "random").
SIMILARITY_MEASURES = MEASURES


def half_commuting_matrix(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """Path-instance counts from the endpoint type to the middle type.

    For ``APCPA`` this is the ``A @ P @ C`` product — the number of
    half-paths from each author to each conference.  Requires a symmetric
    meta-path with an odd number of node types.
    """
    return get_engine(hin).half(metapath).copy()


def hetesim_matrix(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """HeteSim scores for all connected pairs.

    Each hop of the half-path is row-normalized into a transition
    probability matrix; a node's *reachability distribution* over
    middle-type objects is the product of these.  HeteSim is the cosine of
    two nodes' distributions:

        HS(u, v) = <p_u, p_v> / (|p_u| * |p_v|)

    Diagonal entries (always 1 for nodes with any half-path) are dropped.
    """
    return get_engine(hin).similarity(metapath, "hetesim").copy()


def joinsim_matrix(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """JoinSim scores for all connected pairs.

        JS(u, v) = M[u, v] / sqrt(M[u, u] * M[v, v])

    where ``M`` is the commuting matrix.  Cauchy–Schwarz bounds this by 1;
    it differs from PathSim (arithmetic-mean denominator) in penalizing
    degree imbalance less severely.  ``M`` is composed once: both the
    off-diagonal counts and the self-join diagonal come from the same
    cached product.
    """
    return get_engine(hin).similarity(metapath, "joinsim").copy()


def cosine_commuting_matrix(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """Cosine similarity of commuting-matrix rows (structural equivalence).

    Two nodes score high when their meta-path *neighborhoods* overlap,
    regardless of whether they are meta-path neighbors of each other —
    e.g. two authors publishing at the same venues score high under
    ``APCPA`` even with no shared paper.
    """
    return get_engine(hin).similarity(metapath, "cosine").copy()


def similarity_matrix(
    hin: HIN, metapath: MetaPath, measure: str = "pathsim"
) -> sp.csr_matrix:
    """Dispatch to one of the registered similarity measures.

    Parameters
    ----------
    measure:
        One of :data:`SIMILARITY_MEASURES`.
    """
    if measure not in SIMILARITY_MEASURES:
        raise ValueError(
            f"unknown similarity measure {measure!r}; known: {SIMILARITY_MEASURES}"
        )
    return get_engine(hin).similarity(metapath, measure).copy()


def measure_agreement(
    hin: HIN,
    metapath: MetaPath,
    measure_a: str,
    measure_b: str,
    k: int,
) -> float:
    """Mean Jaccard overlap of two measures' per-node top-k neighbor sets.

    Diagnostic used by the filtering ablation to quantify how much the
    ranking function actually changes the selected neighbors.
    """
    engine = get_engine(hin)
    lists_a = engine.top_k(metapath, k, measure_a)
    lists_b = engine.top_k(metapath, k, measure_b)
    overlaps: List[float] = []
    for top_a, top_b in zip(lists_a, lists_b):
        set_a, set_b = set(top_a.tolist()), set(top_b.tolist())
        union = set_a | set_b
        if not union:
            continue
        overlaps.append(len(set_a & set_b) / len(union))
    return float(np.mean(overlaps)) if overlaps else 1.0
