"""Meta-path similarity measures beyond PathSim.

ConCH filters neighbors by PathSim (Eq. 1); the paper notes the choice of
ranking function is orthogonal to the architecture.  This module provides
the standard alternatives from the HIN similarity-search literature so the
filtering stage can be ablated:

- :func:`hetesim_matrix` — HeteSim (Shi et al., TKDE 2014): cosine of the
  *probability* distributions over middle-type objects reached from each
  endpoint along the two half-paths.
- :func:`joinsim_matrix` — JoinSim (Xiong et al., VLDB 2015): path-join
  count normalized by the geometric mean of the self-join counts,
  ``M[u,v] / sqrt(M[u,u] * M[v,v])``.
- :func:`cosine_commuting_matrix` — structural equivalence: cosine
  similarity of commuting-matrix rows (two nodes are similar when they
  reach the *same* meta-path neighbors, even if not each other).

All measures are symmetric, bounded in ``[0, 1]``, and returned as sparse
matrices with a structurally absent diagonal, matching the conventions of
:func:`repro.hin.pathsim.pathsim_matrix`.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from repro.hin.adjacency import metapath_adjacency, relation_chain
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath
from repro.hin.pathsim import pathsim_matrix

#: Ranking measures usable by the neighbor filter (plus "random").
SIMILARITY_MEASURES = ("pathsim", "hetesim", "joinsim", "cosine")


def _require_symmetric(metapath: MetaPath, measure: str) -> None:
    if not metapath.is_symmetric():
        raise ValueError(
            f"{measure} requires a symmetric meta-path, got {metapath.name!r}"
        )


def _require_middle_type(metapath: MetaPath, measure: str) -> None:
    if len(metapath.node_types) % 2 == 0:
        raise ValueError(
            f"{measure} needs a middle node type; meta-path {metapath.name!r} "
            f"has an even number of types (decompose the middle relation first)"
        )


def _row_normalize(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Rows rescaled to sum to 1 (zero rows stay zero)."""
    matrix = sp.csr_matrix(matrix, dtype=np.float64)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(
        1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 0
    )
    return sp.csr_matrix(sp.diags(scale) @ matrix)


def _l2_normalize_rows(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Rows rescaled to unit L2 norm (zero rows stay zero)."""
    matrix = sp.csr_matrix(matrix, dtype=np.float64)
    norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel())
    scale = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
    return sp.csr_matrix(sp.diags(scale) @ matrix)


def _drop_diagonal(matrix: sp.csr_matrix) -> sp.csr_matrix:
    matrix = matrix.tolil()
    matrix.setdiag(0.0)
    matrix = matrix.tocsr()
    matrix.eliminate_zeros()
    return matrix


def half_commuting_matrix(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """Path-instance counts from the endpoint type to the middle type.

    For ``APCPA`` this is the ``A @ P @ C`` product — the number of
    half-paths from each author to each conference.  Requires a symmetric
    meta-path with an odd number of node types.
    """
    _require_symmetric(metapath, "half_commuting_matrix")
    _require_middle_type(metapath, "half_commuting_matrix")
    chain = relation_chain(hin, metapath)
    half = chain[: len(chain) // 2]
    product: sp.csr_matrix = half[0]
    for matrix in half[1:]:
        product = sp.csr_matrix(product @ matrix)
    return product


def hetesim_matrix(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """HeteSim scores for all connected pairs.

    Each hop of the half-path is row-normalized into a transition
    probability matrix; a node's *reachability distribution* over
    middle-type objects is the product of these.  HeteSim is the cosine of
    two nodes' distributions:

        HS(u, v) = <p_u, p_v> / (|p_u| * |p_v|)

    Diagonal entries (always 1 for nodes with any half-path) are dropped.
    """
    _require_symmetric(metapath, "HeteSim")
    _require_middle_type(metapath, "HeteSim")
    chain = relation_chain(hin, metapath)
    half = chain[: len(chain) // 2]
    reach: sp.csr_matrix = _row_normalize(half[0])
    for matrix in half[1:]:
        reach = sp.csr_matrix(reach @ _row_normalize(matrix))
    unit = _l2_normalize_rows(reach)
    scores = sp.csr_matrix(unit @ unit.T)
    # Cosine of probability vectors is bounded by 1; clip accumulated
    # floating-point excess so downstream ranking code can rely on [0, 1].
    scores.data = np.clip(scores.data, 0.0, 1.0)
    return _drop_diagonal(scores)


def joinsim_matrix(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """JoinSim scores for all connected pairs.

        JS(u, v) = M[u, v] / sqrt(M[u, u] * M[v, v])

    where ``M`` is the commuting matrix.  Cauchy–Schwarz bounds this by 1;
    it differs from PathSim (arithmetic-mean denominator) in penalizing
    degree imbalance less severely.
    """
    _require_symmetric(metapath, "JoinSim")
    counts = metapath_adjacency(hin, metapath, remove_self_paths=False).tocoo()
    diag = metapath_adjacency(hin, metapath, remove_self_paths=False).diagonal()

    row, col, data = counts.row, counts.col, counts.data
    off_diag = row != col
    row, col, data = row[off_diag], col[off_diag], data[off_diag]
    denom = np.sqrt(diag[row] * diag[col])
    valid = denom > 0
    row, col, data, denom = row[valid], col[valid], data[valid], denom[valid]
    scores = np.clip(data / denom, 0.0, 1.0)
    n = counts.shape[0]
    return sp.csr_matrix((scores, (row, col)), shape=(n, n))


def cosine_commuting_matrix(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """Cosine similarity of commuting-matrix rows (structural equivalence).

    Two nodes score high when their meta-path *neighborhoods* overlap,
    regardless of whether they are meta-path neighbors of each other —
    e.g. two authors publishing at the same venues score high under
    ``APCPA`` even with no shared paper.
    """
    _require_symmetric(metapath, "cosine")
    counts = metapath_adjacency(hin, metapath, remove_self_paths=False)
    unit = _l2_normalize_rows(counts)
    scores = sp.csr_matrix(unit @ unit.T)
    scores.data = np.clip(scores.data, 0.0, 1.0)
    return _drop_diagonal(scores)


def similarity_matrix(
    hin: HIN, metapath: MetaPath, measure: str = "pathsim"
) -> sp.csr_matrix:
    """Dispatch to one of the registered similarity measures.

    Parameters
    ----------
    measure:
        One of :data:`SIMILARITY_MEASURES`.
    """
    if measure == "pathsim":
        return pathsim_matrix(hin, metapath)
    if measure == "hetesim":
        return hetesim_matrix(hin, metapath)
    if measure == "joinsim":
        return joinsim_matrix(hin, metapath)
    if measure == "cosine":
        return cosine_commuting_matrix(hin, metapath)
    raise ValueError(
        f"unknown similarity measure {measure!r}; known: {SIMILARITY_MEASURES}"
    )


def measure_agreement(
    hin: HIN,
    metapath: MetaPath,
    measure_a: str,
    measure_b: str,
    k: int,
) -> float:
    """Mean Jaccard overlap of two measures' per-node top-k neighbor sets.

    Diagnostic used by the filtering ablation to quantify how much the
    ranking function actually changes the selected neighbors.
    """
    from repro.hin.neighbors import _top_k_rows  # local: avoid cycle at import

    lists_a = _top_k_rows(similarity_matrix(hin, metapath, measure_a), k)
    lists_b = _top_k_rows(similarity_matrix(hin, metapath, measure_b), k)
    overlaps: List[float] = []
    for top_a, top_b in zip(lists_a, lists_b):
        set_a, set_b = set(top_a.tolist()), set(top_b.tolist())
        union = set_a | set_b
        if not union:
            continue
        overlaps.append(len(set_a & set_b) / len(union))
    return float(np.mean(overlaps)) if overlaps else 1.0
