"""Heterogeneous-information-network substrate.

Implements the data structures and algorithms of §III–IV of the ConCH
paper that sit *below* the neural model:

- :class:`~repro.hin.graph.HIN` — a typed multigraph whose relations are
  stored as scipy sparse biadjacency matrices (Definition 1).
- :class:`~repro.hin.schema.NetworkSchema` — the schematic graph over node
  types and relations (Definition 2).
- :class:`~repro.hin.metapath.MetaPath` — a sequence of node types /
  relations (Definition 3), parseable from strings like ``"APCPA"``.
- :mod:`~repro.hin.engine` — the shared commuting-matrix engine: per-HIN
  memoization of chain products with prefix sharing, cached similarity
  views, and vectorized top-k / pair-lookup / diagonal-drop kernels.
- :mod:`~repro.hin.cache` — cache management behind the engine: an LRU
  byte budget over all memoized views and a disk-backed product store
  keyed by HIN content hash (see its docstring for the tuning guide).
- :mod:`~repro.hin.adjacency` — sparse composition of meta-path commuting
  matrices (path-instance counts between endpoint pairs); thin wrappers
  over the engine.
- :mod:`~repro.hin.pathsim` — PathSim similarity (Eq. 1, [58]).
- :mod:`~repro.hin.similarity` — alternative similarity measures
  (HeteSim, JoinSim, cosine) for the filtering ablation.
- :mod:`~repro.hin.neighbors` — top-*k* PathSim neighbor filtering (§IV-A)
  and the random-*k* variant used by the ``ConCH_rd`` ablation.
- :mod:`~repro.hin.discovery` — automatic meta-path enumeration and
  ranking (the "meta-paths obtained via automatic methods" of §IV-A).
- :mod:`~repro.hin.context` — meta-path context extraction (Definition 4)
  and path-instance enumeration.
- :class:`~repro.hin.bipartite.BipartiteGraph` — the object/context
  bipartite graph of §IV-C, with incidence matrices ready for convolution.
"""

from repro.hin.graph import HIN
from repro.hin.schema import NetworkSchema
from repro.hin.metapath import MetaPath
from repro.hin.adjacency import metapath_adjacency, relation_chain
from repro.hin.cache import LRUByteCache, ProductStore, nbytes_of
from repro.hin.engine import (
    CommutingEngine,
    csr_pair_values,
    csr_row_topk,
    drop_diagonal,
    get_engine,
    release_engine,
)
from repro.hin.pathsim import pathsim_matrix, pathsim_pairs
from repro.hin.similarity import (
    SIMILARITY_MEASURES,
    cosine_commuting_matrix,
    hetesim_matrix,
    joinsim_matrix,
    similarity_matrix,
)
from repro.hin.neighbors import (
    NeighborFilter,
    random_k_neighbors,
    top_k_pathsim_neighbors,
    top_k_similarity_neighbors,
)
from repro.hin.discovery import discover_metapaths, rank_metapaths, select_metapaths
from repro.hin.metagraph import (
    MetaGraph,
    metagraph_adjacency,
    metagraph_binary_adjacency,
    metagraph_pathsim,
    top_k_metagraph_neighbors,
)
from repro.hin.context import (
    ContextBatch,
    enumerate_contexts,
    enumerate_path_instances,
    extract_contexts,
    MetaPathContext,
)
from repro.hin.bipartite import BipartiteGraph, build_bipartite_graph
from repro.hin.analysis import MetaPathStats, dataset_report, label_homophily, metapath_stats
from repro.hin.io import hin_content_hash, load_hin, save_hin

__all__ = [
    "HIN",
    "NetworkSchema",
    "MetaPath",
    "metapath_adjacency",
    "relation_chain",
    "CommutingEngine",
    "get_engine",
    "release_engine",
    "LRUByteCache",
    "ProductStore",
    "nbytes_of",
    "csr_row_topk",
    "csr_pair_values",
    "drop_diagonal",
    "pathsim_matrix",
    "pathsim_pairs",
    "SIMILARITY_MEASURES",
    "similarity_matrix",
    "hetesim_matrix",
    "joinsim_matrix",
    "cosine_commuting_matrix",
    "top_k_pathsim_neighbors",
    "top_k_similarity_neighbors",
    "random_k_neighbors",
    "NeighborFilter",
    "discover_metapaths",
    "rank_metapaths",
    "select_metapaths",
    "MetaGraph",
    "metagraph_adjacency",
    "metagraph_binary_adjacency",
    "metagraph_pathsim",
    "top_k_metagraph_neighbors",
    "ContextBatch",
    "enumerate_contexts",
    "enumerate_path_instances",
    "extract_contexts",
    "MetaPathContext",
    "BipartiteGraph",
    "build_bipartite_graph",
    "MetaPathStats",
    "dataset_report",
    "label_homophily",
    "metapath_stats",
    "hin_content_hash",
    "load_hin",
    "save_hin",
]
