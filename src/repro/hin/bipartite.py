"""Object/context bipartite graphs (§IV-C).

For each meta-path ``P``, ConCH builds a bipartite graph
``G_P = (X, V_C, E_OC)`` whose left part is the set of target objects and
whose right part is the set of retained meta-path contexts.  An edge links
object ``x`` and context ``c`` when the path instances in ``c`` start or
end at ``x`` — i.e. each context node has degree exactly 2 (its two
endpoint objects), and each object's degree is bounded by the neighbor
filter's ``k`` (up to ``2k`` when the union of both endpoints' top-k lists
is used, as here).

The incidence matrix ``B`` (objects × contexts) drives both directions of
the mutual update (Eqs. 4–5):

- context update aggregates its two endpoints:  ``B.T @ H_x``
- object update sums its incident contexts:     ``B @ H_c``
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.hin.context import ContextBatch, MetaPathContext, enumerate_contexts
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath
from repro.hin.neighbors import NeighborFilter


class BipartiteGraph:
    """Incidence structure between target objects and meta-path contexts.

    Attributes
    ----------
    metapath:
        The meta-path this graph was derived from.
    num_objects:
        Number of target-type objects (left part size).
    pairs:
        ``(m, 2)`` array of context endpoint pairs; context ``j`` connects
        objects ``pairs[j, 0]`` and ``pairs[j, 1]``.
    incidence:
        Sparse ``(num_objects, m)`` binary matrix ``B``.
    context_batch:
        Flat enumerated instances (:class:`ContextBatch`, same pair order
        as ``pairs``); present when instance-level detail was requested.
        The vectorized feature builder consumes this directly.
    contexts:
        Per-pair :class:`MetaPathContext` view, materialized lazily from
        the batch on first access (tuple lists are Python-heavy; the hot
        path never touches them).  Hand-assembled graphs may pass an
        explicit list instead of a batch.
    """

    def __init__(
        self,
        metapath: MetaPath,
        num_objects: int,
        pairs: np.ndarray,
        incidence: sp.csr_matrix,
        *,
        context_batch: Optional[ContextBatch] = None,
        contexts: Optional[List[MetaPathContext]] = None,
    ):
        self.metapath = metapath
        self.num_objects = num_objects
        self.pairs = pairs
        self.incidence = incidence
        self.context_batch = context_batch
        self._contexts = contexts

    @property
    def contexts(self) -> Optional[List[MetaPathContext]]:
        if self._contexts is None and self.context_batch is not None:
            self._contexts = self.context_batch.to_contexts()
        return self._contexts

    @property
    def num_contexts(self) -> int:
        return self.pairs.shape[0]

    def object_degrees(self) -> np.ndarray:
        """Degree of each object node in the bipartite graph."""
        return np.asarray(self.incidence.sum(axis=1)).ravel().astype(np.int64)

    def context_degrees(self) -> np.ndarray:
        """Degree of each context node (2 unless endpoints coincide)."""
        return np.asarray(self.incidence.sum(axis=0)).ravel().astype(np.int64)

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph({self.metapath.name!r}, objects={self.num_objects}, "
            f"contexts={self.num_contexts})"
        )


def incidence_from_pairs(pairs: np.ndarray, num_objects: int) -> sp.csr_matrix:
    """Build the object×context incidence matrix from endpoint pairs."""
    pairs = np.asarray(pairs, dtype=np.int64)
    m = pairs.shape[0]
    if m == 0:
        return sp.csr_matrix((num_objects, 0), dtype=np.float64)
    rows = pairs.reshape(-1)
    cols = np.repeat(np.arange(m, dtype=np.int64), 2)
    data = np.ones(rows.shape[0], dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(num_objects, m))
    # A context whose endpoints coincide would produce a 2; clamp binary.
    matrix.data[:] = np.minimum(matrix.data, 1.0)
    return matrix


def build_bipartite_graph(
    hin: HIN,
    metapath: MetaPath,
    neighbor_filter: NeighborFilter,
    rng: Optional[np.random.Generator] = None,
    enumerate_instances: bool = False,
    max_instances: int = 32,
) -> BipartiteGraph:
    """Construct the object/context bipartite graph for one meta-path.

    Steps x–z of Fig. 2: filter neighbors, take the retained pairs as
    contexts, and connect each context to its two endpoint objects.

    Parameters
    ----------
    enumerate_instances:
        When True, also enumerate each context's path instances (needed by
        the context-feature builder; skippable when features are computed
        elsewhere or for the ``ConCH_nc`` ablation).
    """
    target_type = metapath.source_type
    if not metapath.endpoints_match(target_type):
        raise ValueError(
            f"meta-path {metapath.name!r} must start and end at the target type"
        )
    num_objects = hin.num_nodes(target_type)
    pairs = neighbor_filter.retained_pairs(hin, metapath, rng=rng)
    incidence = incidence_from_pairs(pairs, num_objects)

    context_batch: Optional[ContextBatch] = None
    if enumerate_instances:
        context_batch = enumerate_contexts(
            hin, metapath, pairs, max_instances=max_instances
        )

    return BipartiteGraph(
        metapath=metapath,
        num_objects=num_objects,
        pairs=pairs,
        incidence=incidence,
        context_batch=context_batch,
    )
