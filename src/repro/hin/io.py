"""HIN serialization: save/load a network (with features and labels) as
a single ``.npz`` archive.

Format (all arrays; strings are stored via numpy's unicode dtype):

- ``__types``: node type names, ``__counts``: node counts
- ``rel/<name>/meta``: [src_type, dst_type]
- ``rel/<name>/src``, ``rel/<name>/dst``: edge endpoint ids
- ``feat/<type>``: feature matrix
- ``label/<type>``: label vector

Reverse relations (``*_rev``) are not stored; they are regenerated on
load by :meth:`repro.hin.graph.HIN.add_edges`.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

import numpy as np

from repro.hin.graph import HIN


def hin_content_hash(hin: HIN) -> str:
    """Stable content hash of a HIN's structure (edge arrays + schema).

    Covers node types with their counts and every relation's typed edge
    arrays — CSR ``indptr``/``indices`` *and* ``data``: adjacencies are
    binarized today, but commuting products multiply the stored values,
    so edge weights must key the cross-process disk cache
    (:class:`repro.hin.cache.ProductStore`) the moment any loader stops
    binarizing.  Features and labels are not hashed (products never read
    them).  Two HINs built from the same edges hash identically
    regardless of instance identity.

    The digest is memoized on the instance per structural version, so
    repeated cache lookups on an unchanged graph pay the O(edges) hash
    exactly once.

    Delta chaining
    --------------
    When the graph advanced from the memoized version purely through
    :meth:`~repro.hin.graph.HIN.apply_delta`, the hash is the memoized
    base hash folded with each delta's digest —
    ``sha256("hin-delta-v1|<prev>|<delta digest>")`` per record — an
    O(delta) update instead of an O(edges) rehash.  The chained key is
    deliberately history-scoped: it identifies *this ingest lineage*, so
    content keys stay stable and cheap across live edits without ever
    colliding with an unrelated graph that happens to share the final
    edge set.
    """
    cached = getattr(hin, "_content_hash_memo", None)
    if cached is not None and cached[0] == hin.version:
        return cached[1]
    if cached is not None and cached[0] < hin.version:
        records = hin.deltas_since(cached[0])
        if records:
            result = cached[1]
            for record in records:
                result = hashlib.sha256(
                    f"hin-delta-v1|{result}|{record.digest}".encode()
                ).hexdigest()
            hin._content_hash_memo = (hin.version, result)
            return result
    digest = hashlib.sha256(b"hin-content-v1")
    for node_type in sorted(hin.node_types):
        digest.update(f"|type:{node_type}:{hin.num_nodes(node_type)}".encode())
    for relation in sorted(hin.relations, key=lambda r: r.name):
        matrix = hin.relation_matrix(relation.name)
        if not matrix.has_sorted_indices:
            matrix = matrix.copy()
            matrix.sort_indices()
        digest.update(
            f"|rel:{relation.name}:{relation.src_type}:{relation.dst_type}"
            f":{matrix.shape[0]}x{matrix.shape[1]}".encode()
        )
        digest.update(np.asarray(matrix.indptr, dtype=np.int64).tobytes())
        digest.update(np.asarray(matrix.indices, dtype=np.int64).tobytes())
        digest.update(np.asarray(matrix.data, dtype=np.float64).tobytes())
    result = digest.hexdigest()
    hin._content_hash_memo = (hin.version, result)
    return result


def save_hin(hin: HIN, path: Union[str, Path]) -> None:
    """Write a HIN to ``path`` (``.npz``)."""
    arrays = {
        "__name": np.array(hin.name),
        "__types": np.array(hin.node_types),
        "__counts": np.array([hin.num_nodes(t) for t in hin.node_types]),
    }
    for relation in hin.relations:
        if relation.name.endswith("_rev"):
            continue
        matrix = hin.relation_matrix(relation.name).tocoo()
        arrays[f"rel/{relation.name}/meta"] = np.array(
            [relation.src_type, relation.dst_type]
        )
        arrays[f"rel/{relation.name}/src"] = matrix.row.astype(np.int64)
        arrays[f"rel/{relation.name}/dst"] = matrix.col.astype(np.int64)
    for node_type in hin.node_types:
        if hin.has_features(node_type):
            arrays[f"feat/{node_type}"] = hin.features(node_type)
        try:
            arrays[f"label/{node_type}"] = hin.labels(node_type)
        except KeyError:
            pass
    np.savez_compressed(Path(path), **arrays)


def load_hin(path: Union[str, Path]) -> HIN:
    """Read a HIN previously written by :func:`save_hin`."""
    archive = np.load(Path(path), allow_pickle=False)
    hin = HIN(name=str(archive["__name"]))
    types = [str(t) for t in archive["__types"]]
    counts = archive["__counts"]
    for node_type, count in zip(types, counts):
        hin.add_node_type(node_type, int(count))

    for key in archive.files:
        if key.startswith("rel/") and key.endswith("/meta"):
            name = key[len("rel/"): -len("/meta")]
            src_type, dst_type = (str(x) for x in archive[key])
            hin.add_edges(
                name,
                src_type,
                dst_type,
                archive[f"rel/{name}/src"],
                archive[f"rel/{name}/dst"],
            )
    for key in archive.files:
        if key.startswith("feat/"):
            hin.set_features(key[len("feat/"):], archive[key])
        elif key.startswith("label/"):
            hin.set_labels(key[len("label/"):], archive[key])
    return hin
