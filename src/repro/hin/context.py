"""Meta-path contexts (Definition 4) and path-instance enumeration.

A *context* ``c_uv`` of a meta-path ``P`` is the set of path instances of
``P`` connecting nodes ``u`` and ``v``.  ConCH turns each retained pair's
context into a first-class node of a bipartite graph; its initial feature
vector is built by :mod:`repro.core.context_features` from the instances
enumerated here (Eqs. 2–3).

Enumeration strategy
--------------------
All retained pairs of a meta-path are enumerated **together** by a
batched frontier-expansion kernel (:func:`enumerate_contexts`) over the
CSR hop matrices cached in :class:`repro.hin.engine.CommutingEngine`:

- The frontier is a flat ``(num_partial_paths, depth+1)`` id matrix plus
  an owner (pair index) array; one hop expands every partial path at once
  through ``indptr``/``indices`` slicing — no per-node Python loop.
- Each new frontier is pruned with *backward reachability masks* served
  by the engine's cached suffix chain products
  (:meth:`CommutingEngine.suffix_products`): a partial path whose head
  cannot reach its pair's target through the remaining hops is dropped
  before it is ever expanded, so every surviving partial path completes
  into at least one instance and no dead branch costs work.
- Work and memory are therefore ``O(total retained instance prefixes)``,
  and per-pair caps bound the frontier at ``max_instances`` partial paths
  per pair per depth.

Ordering and truncation semantics
---------------------------------
Instances are produced in **ascending lexicographic order** of their node
id tuples (CSR column indices are sorted, and expansion preserves order).
When a pair has more than ``max_instances`` instances, exactly the first
``max_instances`` in that order are kept and the context is marked
``truncated`` — a deterministic prefix, unlike the seed DFS whose LIFO
pops kept an arbitrary tail-biased subset.  Exact (uncapped) instance
counts come for free from the cached commuting matrix, so ``truncated``
is always consistent: ``truncated == (total_count > size)``, including
when a cap leaves a retained pair's context empty.

Endpoint canonicalization
-------------------------
For meta-paths whose two endpoint types coincide (the only case ConCH
builds contexts for), pairs are canonicalized to ``u = min, v = max``
**before** enumeration, so ``instances[i][0] == context.u`` and
``instances[i][-1] == context.v`` for both argument orders.  For
asymmetric-endpoint meta-paths the passed orientation is kept (swapping
ids across types would be meaningless).

A fixed-semantics per-pair DFS (:func:`dfs_enumerate_path_instances`) is
retained as the brute-force reference implementation for equivalence
tests; :func:`enumerate_path_instances` and :func:`extract_contexts` are
thin compatibility wrappers over the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.hin.engine import csr_pair_values, get_engine
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


@dataclass
class MetaPathContext:
    """The context of one retained pair under one meta-path.

    Attributes
    ----------
    u, v:
        Endpoint node ids (within the target type), canonicalized to
        ``u <= v`` when the meta-path's endpoint types coincide.
    instances:
        Path instances as tuples of node ids, one id per meta-path
        position (so each tuple has ``len(metapath)`` entries, starting
        with ``u`` and ending with ``v``), in ascending lexicographic
        order.
    truncated:
        True when the instance list is an (exact, deterministic) prefix
        of the full instance set rather than all of it.
    total_count:
        Exact number of instances connecting the pair, regardless of
        caps, when known (the kernel reads it off the cached commuting
        matrix); None for hand-built contexts.
    """

    u: int
    v: int
    instances: List[Tuple[int, ...]] = field(default_factory=list)
    truncated: bool = False
    total_count: Optional[int] = None

    @property
    def size(self) -> int:
        return len(self.instances)


@dataclass
class ContextBatch:
    """All contexts of one meta-path's retained pairs, in flat arrays.

    The kernel's native output: instances of every pair concatenated into
    one ``(total_instances, path_len)`` id matrix with CSR-style segment
    boundaries, ready for vectorized feature construction
    (:func:`repro.core.context_features.build_context_features`) without
    materializing per-instance Python tuples.

    Attributes
    ----------
    metapath:
        The enumerated meta-path.
    pairs:
        ``(m, 2)`` canonicalized endpoint pairs, in input order.
    instance_ids:
        ``(total_kept, L)`` int64 matrix; row = one path instance.
    indptr:
        ``(m + 1,)`` segment boundaries: pair ``j``'s instances are rows
        ``indptr[j]:indptr[j+1]`` of ``instance_ids``, in ascending
        lexicographic order.
    total_counts:
        ``(m,)`` exact uncapped instance counts per pair.
    truncated:
        ``(m,)`` bool; ``total_counts > sizes``.
    """

    metapath: MetaPath
    pairs: np.ndarray
    instance_ids: np.ndarray
    indptr: np.ndarray
    total_counts: np.ndarray
    truncated: np.ndarray

    @property
    def num_pairs(self) -> int:
        return self.pairs.shape[0]

    @property
    def sizes(self) -> np.ndarray:
        """Instances kept per pair (``(m,)``)."""
        return np.diff(self.indptr)

    def owner(self) -> np.ndarray:
        """Pair index of every row of ``instance_ids`` (non-decreasing)."""
        return np.repeat(
            np.arange(self.num_pairs, dtype=np.int64), self.sizes
        )

    def context(self, index: int) -> MetaPathContext:
        """Materialize one pair's :class:`MetaPathContext`."""
        lo, hi = int(self.indptr[index]), int(self.indptr[index + 1])
        rows = self.instance_ids[lo:hi]
        return MetaPathContext(
            u=int(self.pairs[index, 0]),
            v=int(self.pairs[index, 1]),
            instances=[tuple(int(x) for x in row) for row in rows],
            truncated=bool(self.truncated[index]),
            total_count=int(self.total_counts[index]),
        )

    def to_contexts(self) -> List[MetaPathContext]:
        """Materialize the legacy per-pair context list (compat path)."""
        return [self.context(j) for j in range(self.num_pairs)]


def _canonicalize_pairs(metapath: MetaPath, pairs: np.ndarray) -> np.ndarray:
    """Sort each pair ascending when the endpoint types coincide."""
    if metapath.source_type != metapath.target_type:
        return pairs
    return np.stack(
        [np.minimum(pairs[:, 0], pairs[:, 1]), np.maximum(pairs[:, 0], pairs[:, 1])],
        axis=1,
    )


def _cap_segments(owner: np.ndarray, num_segments: int, cap: int) -> np.ndarray:
    """Mask keeping the first ``cap`` entries of each owner segment.

    ``owner`` must be non-decreasing (the kernel's expansion preserves
    pair grouping), so each segment is contiguous and the within-segment
    rank is a subtraction against segment starts.
    """
    counts = np.bincount(owner, minlength=num_segments)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    ranks = np.arange(owner.size, dtype=np.int64) - starts[owner]
    return ranks < cap


def enumerate_contexts(
    hin: HIN,
    metapath: MetaPath,
    pairs: np.ndarray,
    max_instances: int = 32,
) -> ContextBatch:
    """Batched frontier-expansion enumeration of all pairs' contexts.

    One hop-synchronous pass over the meta-path expands every pair's
    partial paths together; see the module docstring for the pruning,
    ordering, and truncation guarantees.

    Parameters
    ----------
    pairs:
        ``(m, 2)`` node-id pairs, e.g. from
        :meth:`repro.hin.neighbors.NeighborFilter.retained_pairs`; each
        pair is canonicalized to ascending order when the meta-path's
        endpoint types coincide.
    max_instances:
        Per-pair cap; the first ``max_instances`` instances in ascending
        lexicographic order are kept.
    """
    if max_instances < 1:
        raise ValueError(f"max_instances must be >= 1, got {max_instances}")
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        pairs = pairs.reshape(0, 2)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")

    engine = get_engine(hin)
    chain = engine.chain(metapath)
    hops = len(chain)
    path_len = hops + 1
    pairs = _canonicalize_pairs(metapath, pairs)
    m = pairs.shape[0]

    total_counts = engine.pair_counts(metapath, pairs).astype(np.int64)
    if m == 0 or total_counts.sum() == 0:
        return ContextBatch(
            metapath=metapath,
            pairs=pairs,
            instance_ids=np.empty((0, path_len), dtype=np.int64),
            indptr=np.zeros(m + 1, dtype=np.int64),
            total_counts=total_counts,
            truncated=np.zeros(m, dtype=bool),
        )

    targets_per_pair = pairs[:, 1]

    # Position-0 frontier: one partial path per connectable pair.  The
    # totals>0 filter *is* the suffix-product prune at position 0.
    alive = np.flatnonzero(total_counts > 0)
    owner = alive.astype(np.int64)
    paths = pairs[alive, 0][:, None]

    for depth in range(hops - 1):
        # Expand position `depth` → `depth+1` for every partial path.
        matrix = chain[depth]
        heads = paths[:, -1]
        starts = matrix.indptr[heads].astype(np.int64)
        degrees = matrix.indptr[heads + 1].astype(np.int64) - starts
        total = int(degrees.sum())
        parent = np.repeat(np.arange(heads.size, dtype=np.int64), degrees)
        ends = np.cumsum(degrees)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            ends - degrees, degrees
        )
        nodes = matrix.indices[np.repeat(starts, degrees) + offsets].astype(
            np.int64
        )
        new_owner = owner[parent]

        # Backward-reachability prune: drop partial paths whose head
        # cannot reach the pair's target through the remaining hops.
        # Each position's suffix product is fetched lazily from the
        # engine (it participates in the LRU memory budget): a frontier
        # that dies early never composes the deeper suffixes, and a
        # budgeted engine recomposes evicted masks transparently.
        position = depth + 1
        completions = csr_pair_values(
            engine.suffix_product(metapath, position),
            nodes,
            targets_per_pair[new_owner],
            keys=engine.suffix_pair_keys(metapath, position),
        )
        keep = completions > 0.0
        # Per-pair cap: every survivor completes at least once, so the
        # first `max_instances` instances come from the first
        # `max_instances` partial paths of each pair.
        keep[keep] = _cap_segments(new_owner[keep], m, max_instances)

        parent, nodes, owner = parent[keep], nodes[keep], new_owner[keep]
        paths = np.concatenate([paths[parent], nodes[:, None]], axis=1)
        if owner.size == 0:
            break

    if owner.size:
        # Final position: pruning guaranteed adjacency to the target, so
        # completion is appending each pair's target id (for hops == 1
        # the totals>0 filter played that role).
        paths = np.concatenate(
            [paths, targets_per_pair[owner][:, None]], axis=1
        )
        keep = _cap_segments(owner, m, max_instances)
        paths, owner = paths[keep], owner[keep]
    else:
        paths = np.empty((0, path_len), dtype=np.int64)

    sizes = np.bincount(owner, minlength=m)
    indptr = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    return ContextBatch(
        metapath=metapath,
        pairs=pairs,
        instance_ids=paths,
        indptr=indptr,
        total_counts=total_counts,
        truncated=total_counts > sizes,
    )


def patch_context_batch(
    hin: HIN,
    metapath: MetaPath,
    old: ContextBatch,
    pairs: np.ndarray,
    dirty_rows: np.ndarray,
    max_instances: int = 32,
) -> Tuple[ContextBatch, np.ndarray, ContextBatch, np.ndarray]:
    """Incrementally rebuild a :class:`ContextBatch` after an edge delta.

    Only pairs whose context can have changed are re-enumerated; every
    other pair's instance segment is spliced verbatim from ``old``.  The
    result is bit-identical to ``enumerate_contexts(hin, metapath,
    pairs, max_instances)`` on the post-delta graph.

    A pair ``(u, v)`` needs re-enumeration iff it is *new* (absent from
    ``old.pairs``) or ``u`` lies in ``dirty_rows`` — the source-type rows
    whose full-chain product rows may differ
    (:meth:`repro.hin.engine.CommutingEngine.dirty_rows`).  Checking
    ``u`` alone is exact: any instance (old or removed) of the pair that
    crosses an edited edge has an unchanged hop prefix up to the first
    edited hop, so backward reachability from that hop's touched rows
    propagates ``u`` into the dirty set.

    Parameters
    ----------
    old:
        The pre-delta batch for the same meta-path; its pairs must be
        unique (retained-pair sets are) and built with the same
        ``max_instances``.
    pairs:
        ``(m, 2)`` post-delta retained pairs; need not overlap ``old``.
    dirty_rows:
        Dirty source-type node ids for the meta-path's full chain,
        against the *pre-delta* engine state.

    Returns
    -------
    ``(patched, need, fresh, old_index)`` — the spliced batch, the
    ``(m,)`` bool mask of re-enumerated pairs, the freshly enumerated
    sub-batch over ``pairs[need]`` (same order), and the ``(m,)`` index
    of each retained pair into ``old.pairs`` (``-1`` where new), so
    callers can splice derived per-pair artifacts (e.g. context feature
    rows) the same way.
    """
    if old.metapath.node_types != metapath.node_types:
        raise ValueError(
            f"batch is for {old.metapath.name!r}, not {metapath.name!r}"
        )
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        pairs = pairs.reshape(0, 2)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")
    pairs = _canonicalize_pairs(metapath, pairs)
    m = pairs.shape[0]

    # Match post-delta pairs against the old batch on flattened keys.
    num_targets = hin.num_nodes(metapath.target_type)
    old_keys = old.pairs[:, 0] * num_targets + old.pairs[:, 1]
    new_keys = pairs[:, 0] * num_targets + pairs[:, 1]
    if old_keys.size:
        order = np.argsort(old_keys, kind="stable")
        if np.any(old_keys[order][1:] == old_keys[order][:-1]):
            raise ValueError("old batch has duplicate pairs")
        slot = np.minimum(
            np.searchsorted(old_keys[order], new_keys), old_keys.size - 1
        )
        old_index = np.where(
            old_keys[order][slot] == new_keys, order[slot], np.int64(-1)
        ).astype(np.int64)
    else:
        old_index = np.full(m, -1, dtype=np.int64)

    dirty_mask = np.zeros(hin.num_nodes(metapath.source_type), dtype=bool)
    dirty_mask[np.asarray(dirty_rows, dtype=np.int64)] = True
    need = (old_index < 0) | dirty_mask[pairs[:, 0]]

    fresh = enumerate_contexts(hin, metapath, pairs[need], max_instances)

    keep = ~need
    kept_source = old_index[keep]
    sizes = np.zeros(m, dtype=np.int64)
    sizes[keep] = old.sizes[kept_source]
    sizes[need] = fresh.sizes
    total_counts = np.zeros(m, dtype=np.int64)
    total_counts[keep] = old.total_counts[kept_source]
    total_counts[need] = fresh.total_counts
    truncated = np.zeros(m, dtype=bool)
    truncated[keep] = old.truncated[kept_source]
    truncated[need] = fresh.truncated

    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    path_len = old.instance_ids.shape[1]
    instance_ids = np.empty((int(indptr[-1]), path_len), dtype=np.int64)

    # Kept pairs: gather their old segments, scatter at the new offsets.
    lengths = old.sizes[kept_source]
    total_kept = int(lengths.sum())
    offsets = np.arange(total_kept, dtype=np.int64) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    src = np.repeat(old.indptr[kept_source], lengths) + offsets
    dst = np.repeat(indptr[np.flatnonzero(keep)], lengths) + offsets
    instance_ids[dst] = old.instance_ids[src]

    # Re-enumerated pairs: fresh segments are already contiguous in the
    # same relative order, so only the destination offsets move.
    lengths = fresh.sizes
    offsets = np.arange(
        int(fresh.indptr[-1]), dtype=np.int64
    ) - np.repeat(fresh.indptr[:-1], lengths)
    dst = np.repeat(indptr[np.flatnonzero(need)], lengths) + offsets
    instance_ids[dst] = fresh.instance_ids

    patched = ContextBatch(
        metapath=metapath,
        pairs=pairs,
        instance_ids=instance_ids,
        indptr=indptr,
        total_counts=total_counts,
        truncated=truncated,
    )
    return patched, need, fresh, old_index


def dfs_enumerate_path_instances(
    hin: HIN,
    metapath: MetaPath,
    u: int,
    v: int,
    max_instances: int = 32,
    max_expansions: int = 10_000,
) -> MetaPathContext:
    """Reference per-pair DFS with the kernel's exact semantics.

    Kept as the brute-force oracle the frontier kernel is tested against
    (and as a fallback that needs no suffix products).  Semantics match
    :func:`enumerate_contexts` whenever ``max_expansions`` is not hit:
    canonical endpoint order, ascending lexicographic instance order,
    and a deterministic-prefix truncation policy.

    ``max_expansions`` bounds *memory*, not just pops: a node is only
    pushed while the budget lasts, so the stack never grows past the
    expansion budget.
    """
    pair = _canonicalize_pairs(metapath, np.array([[u, v]], dtype=np.int64))
    u, v = int(pair[0, 0]), int(pair[0, 1])
    engine = get_engine(hin)
    chain = engine.chain(metapath)
    hops = len(chain)
    context = MetaPathContext(
        u=u, v=v, total_count=int(engine.pair_counts(metapath, pair)[0])
    )
    last = chain[-1]
    expansions = 0
    exhausted = False

    # Iterative DFS carrying the partial path; neighbors are pushed in
    # reverse so LIFO pops visit them in ascending id order.
    stack: List[Tuple[int, Tuple[int, ...]]] = [(0, (u,))]
    while stack and not exhausted:
        depth, path = stack.pop()
        node = path[-1]
        if depth == hops - 1:
            # Final hop: membership test node -> v (indices sorted by the
            # engine's base() guarantee).
            row = last.indices[last.indptr[node]: last.indptr[node + 1]]
            position = np.searchsorted(row, v)
            if position < row.size and row[position] == v:
                context.instances.append(path + (v,))
                if len(context.instances) >= max_instances:
                    exhausted = True
            continue
        matrix = chain[depth]
        neighbors = matrix.indices[matrix.indptr[node]: matrix.indptr[node + 1]]
        for neighbor in neighbors[::-1]:
            if expansions >= max_expansions:
                exhausted = True
                break
            expansions += 1
            stack.append((depth + 1, path + (int(neighbor),)))

    # The flag is exact, not "did a budget trip": a pair whose instance
    # count equals the cap is complete, hence not truncated.
    context.truncated = context.total_count > len(context.instances)
    return context


def enumerate_path_instances(
    hin: HIN,
    metapath: MetaPath,
    u: int,
    v: int,
    max_instances: int = 32,
    max_expansions: int = 10_000,
) -> MetaPathContext:
    """Enumerate path instances of ``metapath`` between ``u`` and ``v``.

    Thin single-pair wrapper over the batched frontier kernel
    (:func:`enumerate_contexts`); ``max_expansions`` is accepted for
    backward compatibility but unused — the kernel's suffix pruning never
    expands a dead branch, so its work is bounded by the instances kept.
    """
    del max_expansions  # kernel needs no expansion budget
    batch = enumerate_contexts(
        hin, metapath, np.array([[u, v]], dtype=np.int64), max_instances
    )
    context = batch.context(0)
    # All instances share the kernel's endpoint structure (first column
    # is u, the appended final column is v), so checking one is enough.
    assert not context.instances or (
        context.instances[0][0] == context.u
        and context.instances[0][-1] == context.v
    ), "instance tuples must span (context.u, context.v)"
    return context


def extract_contexts(
    hin: HIN,
    metapath: MetaPath,
    pairs: np.ndarray,
    max_instances: int = 32,
) -> List[MetaPathContext]:
    """Enumerate contexts for all retained pairs of a meta-path.

    Compatibility wrapper materializing :func:`enumerate_contexts` into
    per-pair :class:`MetaPathContext` objects; vectorized consumers
    should use the :class:`ContextBatch` directly.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return []
    return enumerate_contexts(hin, metapath, pairs, max_instances).to_contexts()


def count_instances(hin: HIN, metapath: MetaPath, u: int, v: int) -> int:
    """Exact instance count via the cached commuting matrix (validation)."""
    counts = get_engine(hin).counts(metapath)
    return int(counts[u, v])
