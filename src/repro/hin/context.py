"""Meta-path contexts (Definition 4) and path-instance enumeration.

A *context* ``c_uv`` of a meta-path ``P`` is the set of path instances of
``P`` connecting nodes ``u`` and ``v``.  ConCH turns each retained pair's
context into a first-class node of a bipartite graph; its initial feature
vector is built by :mod:`repro.core.context_features` from the instances
enumerated here (Eqs. 2–3).

Enumeration is exact up to a per-pair cap (``max_instances``): on
hub-heavy graphs the number of instances of long meta-paths can explode,
and the paper's context feature is a *mean* over instances, which a
truncated enumeration approximates unbiasedly enough at our scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.hin.engine import get_engine
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


@dataclass
class MetaPathContext:
    """The context of one retained pair under one meta-path.

    Attributes
    ----------
    u, v:
        Endpoint node ids (within the target type), ``u < v``.
    instances:
        Path instances as tuples of node ids, one id per meta-path
        position (so each tuple has ``len(metapath)`` entries, starting
        with ``u`` and ending with ``v``).
    truncated:
        True when enumeration stopped at the cap.
    """

    u: int
    v: int
    instances: List[Tuple[int, ...]] = field(default_factory=list)
    truncated: bool = False

    @property
    def size(self) -> int:
        return len(self.instances)


def _row_neighbors(matrix: sp.csr_matrix, row: int) -> np.ndarray:
    return matrix.indices[matrix.indptr[row]: matrix.indptr[row + 1]]


def enumerate_path_instances(
    hin: HIN,
    metapath: MetaPath,
    u: int,
    v: int,
    max_instances: int = 32,
    max_expansions: int = 10_000,
) -> MetaPathContext:
    """Enumerate path instances of ``metapath`` from ``u`` to ``v``.

    Depth-first over the per-hop adjacency chain; stops after
    ``max_instances`` instances or ``max_expansions`` node expansions.
    """
    chain = get_engine(hin).chain(metapath)
    hops = len(chain)
    context = MetaPathContext(u=min(u, v), v=max(u, v))
    # Last-hop reverse adjacency: which nodes at position l-1 connect to v.
    last = chain[-1]
    expansions = 0

    # Iterative DFS carrying the partial path.
    stack: List[Tuple[int, Tuple[int, ...]]] = [(0, (u,))]
    while stack:
        depth, path = stack.pop()
        node = path[-1]
        if depth == hops - 1:
            # Final hop: check direct adjacency node -> v.
            row = _row_neighbors(last, node)
            position = np.searchsorted(row, v)
            if position < row.size and row[position] == v:
                context.instances.append(path + (v,))
                if len(context.instances) >= max_instances:
                    context.truncated = True
                    return context
            continue
        neighbors = _row_neighbors(chain[depth], node)
        for neighbor in neighbors:
            expansions += 1
            if expansions > max_expansions:
                context.truncated = True
                return context
            stack.append((depth + 1, path + (int(neighbor),)))
    return context


def extract_contexts(
    hin: HIN,
    metapath: MetaPath,
    pairs: np.ndarray,
    max_instances: int = 32,
) -> List[MetaPathContext]:
    """Enumerate contexts for all retained pairs of a meta-path.

    Parameters
    ----------
    pairs:
        Array of shape ``(m, 2)`` of node-id pairs (``u < v``), e.g. from
        :meth:`repro.hin.neighbors.NeighborFilter.retained_pairs`.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return []
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")
    contexts: List[MetaPathContext] = []
    for u, v in pairs:
        context = enumerate_path_instances(
            hin, metapath, int(u), int(v), max_instances=max_instances
        )
        contexts.append(context)
    return contexts


def count_instances(hin: HIN, metapath: MetaPath, u: int, v: int) -> int:
    """Exact instance count via the cached commuting matrix (validation)."""
    counts = get_engine(hin).counts(metapath)
    return int(counts[u, v])
