"""The :class:`HIN` typed multigraph (Definition 1 of the paper).

Nodes of each type are numbered ``0..count-1`` *within their type*; a
relation between two types is stored as a scipy sparse biadjacency matrix
of shape ``(count(src_type), count(dst_type))``.  This representation makes
meta-path composition a chain of sparse matrix products and keeps memory
proportional to the number of edges.

Features (per type) and labels (usually only the classification target
type) hang off the graph as numpy arrays.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.hin.schema import NetworkSchema


@dataclass(frozen=True)
class Relation:
    """A typed edge set: ``name`` relates ``src_type`` to ``dst_type``."""

    name: str
    src_type: str
    dst_type: str


def _as_id_array(ids) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(ids, dtype=np.int64).ravel())


@dataclass(frozen=True, eq=False)
class EdgeDelta:
    """One batch of edge edits against a single forward relation.

    ``add_*`` pairs are unioned into the relation (duplicates collapse,
    exactly like :meth:`HIN.add_edges`); ``remove_*`` pairs are dropped
    (removing an absent edge is a no-op, but the endpoints still count
    as touched).  Reverse relations are maintained automatically —
    deltas always target the forward relation.
    """

    relation: str
    add_src: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    add_dst: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    remove_src: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    remove_dst: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    def __post_init__(self):
        for name in ("add_src", "add_dst", "remove_src", "remove_dst"):
            object.__setattr__(self, name, _as_id_array(getattr(self, name)))
        if self.add_src.shape != self.add_dst.shape:
            raise ValueError("add_src and add_dst must have the same length")
        if self.remove_src.shape != self.remove_dst.shape:
            raise ValueError("remove_src and remove_dst must have the same length")

    @classmethod
    def additions(cls, relation: str, src_ids, dst_ids) -> "EdgeDelta":
        return cls(relation, add_src=src_ids, add_dst=dst_ids)

    @classmethod
    def removals(cls, relation: str, src_ids, dst_ids) -> "EdgeDelta":
        return cls(relation, remove_src=src_ids, remove_dst=dst_ids)

    @property
    def num_edits(self) -> int:
        return int(self.add_src.size + self.remove_src.size)

    def digest(self) -> str:
        """Content hash of this edit batch (feeds the delta chain hash)."""
        h = hashlib.sha256(b"edge-delta-v1")
        h.update(self.relation.encode())
        for name in ("add_src", "add_dst", "remove_src", "remove_dst"):
            arr = getattr(self, name)
            h.update(struct.pack("<q", arr.size))
            h.update(arr.tobytes())
        return h.hexdigest()


@dataclass(frozen=True, eq=False)
class DeltaRecord:
    """Ledger entry for one applied :class:`EdgeDelta`.

    ``touched`` maps node type → sorted unique row ids whose adjacency
    rows changed (either direction of the edited relation).  Consumers
    (:class:`repro.hin.engine.CommutingEngine`) use it for row-scoped
    invalidation; :func:`repro.hin.io.hin_content_hash` chains
    ``digest`` onto ``prev_hash`` so content keys stay O(delta).
    """

    prev_version: int
    version: int
    relation: str
    touched: Dict[str, np.ndarray]
    digest: str
    prev_hash: Optional[str] = None


class HIN:
    """A heterogeneous information network.

    Example
    -------
    >>> hin = HIN()
    >>> hin.add_node_type("A", 3)          # authors
    >>> hin.add_node_type("P", 4)          # papers
    >>> hin.add_edges("writes", "A", "P", [0, 0, 1, 2], [0, 1, 1, 3])
    >>> hin.adjacency("A", "P").shape
    (3, 4)
    """

    def __init__(self, name: str = "hin"):
        self.name = name
        self._counts: Dict[str, int] = {}
        self._relations: Dict[str, Relation] = {}
        self._biadjacency: Dict[str, sp.csr_matrix] = {}
        self._features: Dict[str, np.ndarray] = {}
        self._labels: Dict[str, np.ndarray] = {}
        self._version = 0
        #: forward relation name -> auto-registered reverse name (None
        #: when the relation is its own reverse).  Only forward names
        #: are valid :meth:`apply_delta` targets.
        self._reverse_of: Dict[str, Optional[str]] = {}
        #: Recent DeltaRecords, newest last (bounded; see deltas_since).
        self._delta_log: List[DeltaRecord] = []

    #: apply_delta keeps this many records; engines further behind than
    #: the log reaches fall back to full invalidation.
    DELTA_LOG_LIMIT = 64

    @property
    def version(self) -> int:
        """Structural mutation counter (bumped by node/edge additions).

        :mod:`repro.hin.engine` compares this against the version its
        caches were built at and invalidates them when the graph changed.
        """
        return self._version

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_node_type(self, node_type: str, count: int) -> None:
        """Register ``count`` nodes of a new type."""
        if not node_type:
            raise ValueError("node type name must be non-empty")
        if node_type in self._counts:
            raise ValueError(f"node type {node_type!r} already exists")
        if count <= 0:
            raise ValueError(f"node count must be positive, got {count}")
        self._counts[node_type] = int(count)
        self._version += 1

    def add_edges(
        self,
        relation: str,
        src_type: str,
        dst_type: str,
        src_ids: Sequence[int],
        dst_ids: Sequence[int],
        symmetric_name: Optional[str] = None,
    ) -> None:
        """Add a relation as a set of (src, dst) pairs.

        Duplicate pairs are collapsed (binary adjacency).  The reverse
        relation is registered automatically under ``symmetric_name``
        (default ``"<relation>_rev"``) so meta-paths can traverse edges in
        both directions.
        """
        for node_type in (src_type, dst_type):
            if node_type not in self._counts:
                raise KeyError(f"unknown node type {node_type!r}")
        if relation in self._relations:
            raise ValueError(f"relation {relation!r} already exists")
        src_ids = np.asarray(src_ids, dtype=np.int64)
        dst_ids = np.asarray(dst_ids, dtype=np.int64)
        if src_ids.shape != dst_ids.shape:
            raise ValueError("src_ids and dst_ids must have the same length")
        if src_ids.size and (src_ids.min() < 0 or src_ids.max() >= self._counts[src_type]):
            raise IndexError(f"src ids out of range for type {src_type!r}")
        if dst_ids.size and (dst_ids.min() < 0 or dst_ids.max() >= self._counts[dst_type]):
            raise IndexError(f"dst ids out of range for type {dst_type!r}")

        shape = (self._counts[src_type], self._counts[dst_type])
        data = np.ones(src_ids.shape[0], dtype=np.float64)
        matrix = sp.csr_matrix((data, (src_ids, dst_ids)), shape=shape)
        matrix.data[:] = 1.0  # collapse duplicates to binary
        matrix.sum_duplicates()
        matrix.data[:] = 1.0

        self._relations[relation] = Relation(relation, src_type, dst_type)
        self._biadjacency[relation] = matrix

        reverse = symmetric_name or f"{relation}_rev"
        if src_type != dst_type or relation != reverse:
            self._relations[reverse] = Relation(reverse, dst_type, src_type)
            self._biadjacency[reverse] = sp.csr_matrix(matrix.T)
            self._reverse_of[relation] = reverse
        else:
            self._reverse_of[relation] = None
        self._version += 1

    @staticmethod
    def _binarize_pairs(
        src_ids: np.ndarray, dst_ids: np.ndarray, shape: Tuple[int, int]
    ) -> sp.csr_matrix:
        """(src, dst) pairs -> canonical binary CSR.

        The exact construction sequence :meth:`add_edges` uses, factored
        out so :meth:`apply_delta` rebuilds are bit-identical to a cold
        build of the same edge set.
        """
        data = np.ones(src_ids.shape[0], dtype=np.float64)
        matrix = sp.csr_matrix((data, (src_ids, dst_ids)), shape=shape)
        matrix.data[:] = 1.0  # collapse duplicates to binary
        matrix.sum_duplicates()
        matrix.data[:] = 1.0
        return matrix

    def apply_delta(self, delta: EdgeDelta) -> DeltaRecord:
        """Apply an edge edit batch; returns the ledger record.

        Bumps :attr:`version` exactly once, rebuilds the edited relation
        *and* its auto-registered reverse through the same binarization
        sequence as :meth:`add_edges` (so the mutated graph is
        bit-identical to a cold build of the final edge set), and records
        the touched rows per node type for row-scoped downstream
        invalidation.
        """
        if delta.relation not in self._relations:
            raise KeyError(f"unknown relation {delta.relation!r}")
        if delta.relation not in self._reverse_of:
            raise ValueError(
                f"deltas must target the forward relation; "
                f"{delta.relation!r} is an auto-registered reverse"
            )
        info = self._relations[delta.relation]
        num_src = self._counts[info.src_type]
        num_dst = self._counts[info.dst_type]
        for ids, bound, side in (
            (delta.add_src, num_src, "src"),
            (delta.remove_src, num_src, "src"),
            (delta.add_dst, num_dst, "dst"),
            (delta.remove_dst, num_dst, "dst"),
        ):
            if ids.size and (ids.min() < 0 or ids.max() >= bound):
                raise IndexError(f"{side} ids out of range for {delta.relation!r}")

        current = self._biadjacency[delta.relation].tocoo()
        src = np.asarray(current.row, dtype=np.int64)
        dst = np.asarray(current.col, dtype=np.int64)
        if delta.remove_src.size:
            keys = src * num_dst + dst
            remove_keys = delta.remove_src * num_dst + delta.remove_dst
            keep = ~np.isin(keys, remove_keys)
            src, dst = src[keep], dst[keep]
        if delta.add_src.size:
            src = np.concatenate([src, delta.add_src])
            dst = np.concatenate([dst, delta.add_dst])

        matrix = self._binarize_pairs(src, dst, (num_src, num_dst))
        self._biadjacency[delta.relation] = matrix
        reverse = self._reverse_of[delta.relation]
        if reverse is not None:
            self._biadjacency[reverse] = sp.csr_matrix(matrix.T)

        touched: Dict[str, np.ndarray] = {}
        for node_type, parts in (
            (info.src_type, (delta.add_src, delta.remove_src)),
            (info.dst_type, (delta.add_dst, delta.remove_dst)),
        ):
            merged = np.concatenate((touched.get(node_type, np.empty(0, np.int64)),) + parts)
            touched[node_type] = np.unique(merged)

        prev_version = self._version
        memo = getattr(self, "_content_hash_memo", None)
        prev_hash = memo[1] if memo is not None and memo[0] == prev_version else None
        self._version += 1
        record = DeltaRecord(
            prev_version=prev_version,
            version=self._version,
            relation=delta.relation,
            touched=touched,
            digest=delta.digest(),
            prev_hash=prev_hash,
        )
        self._delta_log.append(record)
        del self._delta_log[: -self.DELTA_LOG_LIMIT]
        return record

    def deltas_since(self, version: int) -> Optional[List[DeltaRecord]]:
        """The contiguous delta chain from ``version`` to the present.

        Returns ``[]`` when ``version`` is current, or ``None`` when the
        history cannot be reconstructed as pure deltas — the version is
        too old (log trimmed), unknown, or a non-delta mutation
        (:meth:`add_node_type` / :meth:`add_edges`) intervened.  ``None``
        means callers must fall back to full invalidation.
        """
        if version == self._version:
            return []
        if version > self._version:
            return None
        chain: List[DeltaRecord] = []
        for record in reversed(self._delta_log):
            chain.append(record)
            if record.prev_version == version:
                break
            if record.prev_version < version:
                return None
        else:
            return None
        chain.reverse()
        if chain[-1].version != self._version:
            return None
        for earlier, later in zip(chain, chain[1:]):
            if later.prev_version != earlier.version:
                return None
        return chain

    def set_features(self, node_type: str, features: np.ndarray) -> None:
        features = np.asarray(features, dtype=np.float64)
        if node_type not in self._counts:
            raise KeyError(f"unknown node type {node_type!r}")
        if features.shape[0] != self._counts[node_type]:
            raise ValueError(
                f"feature rows {features.shape[0]} != node count {self._counts[node_type]}"
            )
        self._features[node_type] = features

    def set_labels(self, node_type: str, labels: np.ndarray) -> None:
        labels = np.asarray(labels, dtype=np.int64)
        if node_type not in self._counts:
            raise KeyError(f"unknown node type {node_type!r}")
        if labels.shape != (self._counts[node_type],):
            raise ValueError(
                f"labels shape {labels.shape} != ({self._counts[node_type]},)"
            )
        self._labels[node_type] = labels

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def node_types(self) -> List[str]:
        return list(self._counts)

    @property
    def relations(self) -> List[Relation]:
        return list(self._relations.values())

    def num_nodes(self, node_type: str) -> int:
        if node_type not in self._counts:
            raise KeyError(f"unknown node type {node_type!r}")
        return self._counts[node_type]

    @property
    def total_nodes(self) -> int:
        return sum(self._counts.values())

    @property
    def total_edges(self) -> int:
        """Directed edge count over all registered relations (incl. reverses)."""
        return int(sum(m.nnz for m in self._biadjacency.values()))

    def relation_matrix(self, relation: str) -> sp.csr_matrix:
        """Biadjacency of one named relation."""
        if relation not in self._biadjacency:
            raise KeyError(f"unknown relation {relation!r}")
        return self._biadjacency[relation]

    def relation_info(self, relation: str) -> Relation:
        if relation not in self._relations:
            raise KeyError(f"unknown relation {relation!r}")
        return self._relations[relation]

    def adjacency(self, src_type: str, dst_type: str) -> sp.csr_matrix:
        """Union (binary OR) of all relations from ``src_type`` to ``dst_type``."""
        for node_type in (src_type, dst_type):
            if node_type not in self._counts:
                raise KeyError(f"unknown node type {node_type!r}")
        shape = (self._counts[src_type], self._counts[dst_type])
        total = sp.csr_matrix(shape, dtype=np.float64)
        found = False
        for relation in self._relations.values():
            if relation.src_type == src_type and relation.dst_type == dst_type:
                total = total + self._biadjacency[relation.name]
                found = True
        if not found:
            raise KeyError(f"no relation from {src_type!r} to {dst_type!r}")
        total = sp.csr_matrix(total)
        total.data[:] = 1.0
        return total

    def has_adjacency(self, src_type: str, dst_type: str) -> bool:
        return any(
            r.src_type == src_type and r.dst_type == dst_type
            for r in self._relations.values()
        )

    def features(self, node_type: str) -> np.ndarray:
        if node_type not in self._features:
            raise KeyError(f"no features set for type {node_type!r}")
        return self._features[node_type]

    def has_features(self, node_type: str) -> bool:
        return node_type in self._features

    def labels(self, node_type: str) -> np.ndarray:
        if node_type not in self._labels:
            raise KeyError(f"no labels set for type {node_type!r}")
        return self._labels[node_type]

    def has_labels(self, node_type: str) -> bool:
        return node_type in self._labels

    def schema(self) -> NetworkSchema:
        """Derive the schematic graph (Definition 2)."""
        edges = [
            (relation.src_type, relation.dst_type, relation.name)
            for relation in self._relations.values()
        ]
        return NetworkSchema(self.node_types, edges)

    def is_heterogeneous(self) -> bool:
        """A network is an HIN iff it has >1 node type or >1 relation."""
        forward = [r for r in self._relations.values() if not r.name.endswith("_rev")]
        return len(self._counts) > 1 or len(forward) > 1

    # ------------------------------------------------------------------ #
    # Homogeneous projection & interoperability
    # ------------------------------------------------------------------ #

    def global_offsets(self) -> Dict[str, int]:
        """Offset of each type in a flattened global id space."""
        offsets: Dict[str, int] = {}
        running = 0
        for node_type, count in self._counts.items():
            offsets[node_type] = running
            running += count
        return offsets

    def to_homogeneous(self) -> sp.csr_matrix:
        """Flatten all types/relations into one global adjacency matrix.

        Used to run homogeneous baselines (node2vec, GCN-on-the-raw-graph)
        "ignoring the heterogeneity of the network" as the paper does.
        """
        offsets = self.global_offsets()
        total = self.total_nodes
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        for relation in self._relations.values():
            matrix = self._biadjacency[relation.name].tocoo()
            rows.append(matrix.row + offsets[relation.src_type])
            cols.append(matrix.col + offsets[relation.dst_type])
        if rows:
            row = np.concatenate(rows)
            col = np.concatenate(cols)
        else:
            row = np.empty(0, dtype=np.int64)
            col = np.empty(0, dtype=np.int64)
        data = np.ones(row.shape[0], dtype=np.float64)
        adj = sp.csr_matrix((data, (row, col)), shape=(total, total))
        adj = adj + adj.T
        adj.data[:] = 1.0
        return adj

    def to_networkx(self):
        """Export to a ``networkx.MultiGraph`` with typed nodes (diagnostics)."""
        import networkx as nx

        graph = nx.MultiGraph()
        for node_type, count in self._counts.items():
            for i in range(count):
                graph.add_node((node_type, i), node_type=node_type)
        for relation in self._relations.values():
            if relation.name.endswith("_rev"):
                continue
            matrix = self._biadjacency[relation.name].tocoo()
            for src, dst in zip(matrix.row, matrix.col):
                graph.add_edge(
                    (relation.src_type, int(src)),
                    (relation.dst_type, int(dst)),
                    relation=relation.name,
                )
        return graph

    def __repr__(self) -> str:
        types = ", ".join(f"{t}:{c}" for t, c in self._counts.items())
        return f"HIN({self.name!r}, nodes=[{types}], edges={self.total_edges})"
