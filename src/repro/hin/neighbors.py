"""Neighbor filtering (§IV-A).

For each target node, ConCH keeps only its top-*k* meta-path neighbors by
PathSim score.  The ``ConCH_rd`` ablation replaces this ranking by a
uniform random sample of *k* meta-path neighbors; the similarity measures
in :mod:`repro.hin.similarity` (HeteSim, JoinSim, cosine) can be swapped
in as alternative ranking functions for the filtering ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.hin.adjacency import metapath_adjacency
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath
from repro.hin.pathsim import pathsim_matrix


def _top_k_rows(matrix: sp.csr_matrix, k: int) -> List[np.ndarray]:
    """Per-row top-k column indices by value (ties broken by column id)."""
    matrix = matrix.tocsr()
    result: List[np.ndarray] = []
    for row in range(matrix.shape[0]):
        start, stop = matrix.indptr[row], matrix.indptr[row + 1]
        cols = matrix.indices[start:stop]
        vals = matrix.data[start:stop]
        if cols.size <= k:
            order = np.argsort(-vals, kind="stable")
            result.append(cols[order])
            continue
        # argpartition for the top-k, then sort those k by score.
        part = np.argpartition(-vals, k - 1)[:k]
        order = part[np.argsort(-vals[part], kind="stable")]
        result.append(cols[order])
    return result


def top_k_pathsim_neighbors(hin: HIN, metapath: MetaPath, k: int) -> List[np.ndarray]:
    """Top-*k* PathSim neighbors of every node of the meta-path's endpoint type.

    Returns a list indexed by node id; each entry is an array of at most
    ``k`` neighbor ids sorted by decreasing PathSim.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    scores = pathsim_matrix(hin, metapath)
    return _top_k_rows(scores, k)


def top_k_similarity_neighbors(
    hin: HIN, metapath: MetaPath, k: int, measure: str
) -> List[np.ndarray]:
    """Top-*k* neighbors under any registered similarity measure.

    ``measure="pathsim"`` reproduces :func:`top_k_pathsim_neighbors`; see
    :data:`repro.hin.similarity.SIMILARITY_MEASURES` for the alternatives.
    """
    from repro.hin.similarity import similarity_matrix

    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    scores = similarity_matrix(hin, metapath, measure)
    return _top_k_rows(scores, k)


def random_k_neighbors(
    hin: HIN, metapath: MetaPath, k: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Uniformly sample ``k`` meta-path neighbors per node (``ConCH_rd``)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    counts = metapath_adjacency(hin, metapath, remove_self_paths=True).tocsr()
    result: List[np.ndarray] = []
    for row in range(counts.shape[0]):
        cols = counts.indices[counts.indptr[row]: counts.indptr[row + 1]]
        if cols.size <= k:
            result.append(cols.copy())
        else:
            result.append(rng.choice(cols, size=k, replace=False))
    return result


@dataclass
class NeighborFilter:
    """Configured neighbor selection strategy.

    Attributes
    ----------
    k:
        Number of neighbors kept per node.
    strategy:
        ``"pathsim"`` (paper default), ``"random"`` (``ConCH_rd``), or one
        of the alternative similarity measures ``"hetesim"``,
        ``"joinsim"``, ``"cosine"`` (filtering ablation).
    """

    k: int
    strategy: str = "pathsim"

    #: Accepted values for ``strategy``.
    STRATEGIES = ("pathsim", "random", "hetesim", "joinsim", "cosine")

    def __post_init__(self):
        if self.strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; known: {self.STRATEGIES}"
            )
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")

    def select(
        self,
        hin: HIN,
        metapath: MetaPath,
        rng: Optional[np.random.Generator] = None,
    ) -> List[np.ndarray]:
        if self.strategy == "random":
            if rng is None:
                raise ValueError("random strategy requires an rng")
            return random_k_neighbors(hin, metapath, self.k, rng)
        return top_k_similarity_neighbors(hin, metapath, self.k, self.strategy)

    def retained_pairs(
        self,
        hin: HIN,
        metapath: MetaPath,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Deduplicated undirected pairs ``(u, v)`` with ``u < v``.

        A pair is retained when either endpoint keeps the other in its
        top-k list; each retained pair becomes one context node in the
        bipartite graph (§IV-C).
        """
        neighbor_lists = self.select(hin, metapath, rng=rng)
        pairs = set()
        for u, neighbors in enumerate(neighbor_lists):
            for v in neighbors:
                v = int(v)
                if u == v:
                    continue
                pairs.add((u, v) if u < v else (v, u))
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(sorted(pairs), dtype=np.int64)
