"""Neighbor filtering (§IV-A).

For each target node, ConCH keeps only its top-*k* meta-path neighbors by
PathSim score.  The ``ConCH_rd`` ablation replaces this ranking by a
uniform random sample of *k* meta-path neighbors; the similarity measures
in :mod:`repro.hin.similarity` (HeteSim, JoinSim, cosine) can be swapped
in as alternative ranking functions for the filtering ablation.

Ranking goes through :mod:`repro.hin.engine`: similarity matrices are
cached per HIN and the per-row top-k selection is a single vectorized
lexsort (:func:`repro.hin.engine.csr_row_topk`) instead of a Python loop
over rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hin.engine import get_engine
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


def top_k_pathsim_neighbors(hin: HIN, metapath: MetaPath, k: int) -> List[np.ndarray]:
    """Top-*k* PathSim neighbors of every node of the meta-path's endpoint type.

    Returns a list indexed by node id; each entry is an array of at most
    ``k`` neighbor ids sorted by decreasing PathSim.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return get_engine(hin).top_k(metapath, k, "pathsim")


def top_k_similarity_neighbors(
    hin: HIN, metapath: MetaPath, k: int, measure: str
) -> List[np.ndarray]:
    """Top-*k* neighbors under any registered similarity measure.

    ``measure="pathsim"`` reproduces :func:`top_k_pathsim_neighbors`; see
    :data:`repro.hin.similarity.SIMILARITY_MEASURES` for the alternatives.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return get_engine(hin).top_k(metapath, k, measure)


def random_k_neighbors(
    hin: HIN, metapath: MetaPath, k: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Uniformly sample ``k`` meta-path neighbors per node (``ConCH_rd``)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    counts = get_engine(hin).counts(metapath, remove_self_paths=True)
    result: List[np.ndarray] = []
    for row in range(counts.shape[0]):
        cols = counts.indices[counts.indptr[row]: counts.indptr[row + 1]]
        if cols.size <= k:
            result.append(cols.copy())
        else:
            result.append(rng.choice(cols, size=k, replace=False))
    return result


@dataclass
class NeighborFilter:
    """Configured neighbor selection strategy.

    Attributes
    ----------
    k:
        Number of neighbors kept per node.
    strategy:
        ``"pathsim"`` (paper default), ``"random"`` (``ConCH_rd``), or one
        of the alternative similarity measures ``"hetesim"``,
        ``"joinsim"``, ``"cosine"`` (filtering ablation).
    """

    k: int
    strategy: str = "pathsim"

    #: Accepted values for ``strategy``.
    STRATEGIES = ("pathsim", "random", "hetesim", "joinsim", "cosine")

    def __post_init__(self):
        if self.strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; known: {self.STRATEGIES}"
            )
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")

    def select(
        self,
        hin: HIN,
        metapath: MetaPath,
        rng: Optional[np.random.Generator] = None,
    ) -> List[np.ndarray]:
        if self.strategy == "random":
            if rng is None:
                raise ValueError("random strategy requires an rng")
            return random_k_neighbors(hin, metapath, self.k, rng)
        return top_k_similarity_neighbors(hin, metapath, self.k, self.strategy)

    def retained_pairs(
        self,
        hin: HIN,
        metapath: MetaPath,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Deduplicated undirected pairs ``(u, v)`` with ``u < v``.

        A pair is retained when either endpoint keeps the other in its
        top-k list; each retained pair becomes one context node in the
        bipartite graph (§IV-C).
        """
        neighbor_lists = self.select(hin, metapath, rng=rng)
        lengths = np.fromiter(
            (len(neighbors) for neighbors in neighbor_lists),
            dtype=np.int64,
            count=len(neighbor_lists),
        )
        if lengths.sum() == 0:
            return np.empty((0, 2), dtype=np.int64)
        u = np.repeat(np.arange(len(neighbor_lists), dtype=np.int64), lengths)
        v = np.concatenate(neighbor_lists).astype(np.int64)
        off_diag = u != v
        u, v = u[off_diag], v[off_diag]
        if u.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        ordered = np.stack([np.minimum(u, v), np.maximum(u, v)], axis=1)
        return np.unique(ordered, axis=0)
