"""Cache management for the commuting-matrix engine.

The :class:`~repro.hin.engine.CommutingEngine` memoizes every composed
chain product and derived view (counts, similarity matrices, suffix
pruning masks, top-k lists).  Left unmanaged, those entries are pinned to
the HIN until :meth:`~repro.hin.engine.CommutingEngine.invalidate` — on
large graphs and long experiment sweeps resident memory grows without
bound, and every fresh process re-pays full composition even on an
unchanged dataset.  This module supplies the two mechanisms that bound
both costs:

:class:`LRUByteCache`
    A byte-budgeted least-recently-used cache.  Every entry is registered
    with its ``nbytes`` (see :func:`nbytes_of`) and a recency stamp; when
    the resident total exceeds the budget, least-recently-used *evictable*
    entries are dropped (an eviction callback lets the owner spill them
    first).  Eviction never changes semantics: the engine transparently
    recomposes an evicted entry on next access, and prefix sharing still
    consults whatever survives.

:class:`ProductStore`
    A disk-backed store for composed chain products.  Files are ``.npz``
    archives keyed by a content hash of the HIN (edge arrays + schema —
    :func:`repro.hin.io.hin_content_hash`) and the product's node-type
    tuple, so repeated runs over the same dataset skip composition
    entirely.  A corrupt or stale file (hash mismatch, truncated archive)
    is ignored and rewritten; writes are atomic (temp file + ``rename``)
    so a crashed run never leaves a torn archive behind.

Cache tuning
------------
- ``CommutingEngine(hin, memory_budget=...)`` (or
  ``get_engine(hin, memory_budget=...)``) caps the bytes resident in the
  engine's view cache; ``None`` (the default, via
  :data:`DEFAULT_MEMORY_BUDGET`) means unlimited, ``0`` caches nothing.
  Base per-hop biadjacencies are pinned outside the budget — they are the
  ground truth the graph itself holds anyway.
- The disk store is opt-in: pass ``cache_dir=...`` or set the
  :data:`CACHE_DIR_ENV` (``REPRO_CACHE_DIR``) environment variable.
  Composed products are written through on composition, so a second
  process over the same dataset composes zero products from scratch.
- Cold vs. warm benchmarking: call ``engine.invalidate()`` before a cold
  measurement (drops memory caches; disk files keyed by content hash stay
  valid for an unchanged graph, so "cold memory / warm disk" is the
  second-process scenario).  ``engine.stats()`` reports
  hits/misses/evictions/spills/disk hits and resident bytes.
"""

from __future__ import annotations

import hashlib
import os
import struct
import sys
import time
import zipfile
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Hashable, Iterator, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

#: Module-level default for ``CommutingEngine(memory_budget=...)``.
#: ``None`` = unlimited (the historical pin-everything behavior).
DEFAULT_MEMORY_BUDGET: Optional[int] = None

#: Environment variable naming the default disk-backed product store
#: directory.  Unset (the default, and what CI relies on) disables the
#: disk store unless a ``cache_dir`` is passed explicitly.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Optional[str]:
    """The product-store directory from :data:`CACHE_DIR_ENV`, if set."""
    directory = os.environ.get(CACHE_DIR_ENV, "").strip()
    return directory or None


def nbytes_of(value: Any) -> int:
    """Best-effort resident size in bytes of a cached value.

    Understands scipy sparse matrices (sum of their constituent arrays),
    numpy arrays, and containers thereof; anything else falls back to
    ``sys.getsizeof``.  This is an *accounting* size — Python object
    overhead of containers is ignored, which is negligible next to the
    array payloads the cache manages.
    """
    if sp.issparse(value):
        total = 0
        for attr in ("data", "indices", "indptr", "row", "col", "offsets"):
            array = getattr(value, attr, None)
            if isinstance(array, np.ndarray):
                total += array.nbytes
        return total
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(nbytes_of(item) for item in value)
    if isinstance(value, dict):
        return sum(nbytes_of(item) for item in value.values())
    return int(sys.getsizeof(value))


@dataclass
class _Entry:
    value: Any
    nbytes: int
    evictable: bool
    cost: float = 0.0
    priority: float = 0.0


class LRUByteCache:
    """A byte-budgeted cache with cost-aware (GreedyDual-Size) eviction.

    Entries are kept in recency order (:class:`~collections.OrderedDict`);
    :meth:`get` freshens, :meth:`put` inserts at the most-recent end and
    then evicts evictable entries until the resident total fits the budget
    again.  Entries registered with ``nbytes=0`` (aliases of data pinned
    elsewhere) are never chosen for eviction — dropping them frees
    nothing.

    Victim selection follows GreedyDual-Size: every entry carries a
    priority ``clock + cost / nbytes`` stamped at insertion and refreshed
    on access, where ``cost`` is the caller-measured expense of rebuilding
    the entry (the engine feeds compose/build wall-clock seconds from its
    compose-event log).  Eviction drops the minimum-priority entry and
    advances the clock to that priority, so expensive entries survive
    pressure from cheap ones but age out once the cheap ones have cycled
    enough.  With every cost at the default ``0.0`` all priorities stay
    equal and ties break toward the least recently used — i.e. the policy
    degenerates to exact LRU, the pre-cost behavior.

    The cache never drops *non-evictable* entries for space, so the
    resident total can exceed the budget only by the non-evictable
    portion; the engine registers everything recomputable as evictable.

    Counters (``hits``/``misses``/``evictions``) are exact per-operation
    counts; :meth:`reset_stats` zeroes them without touching contents.
    """

    def __init__(
        self,
        budget: Optional[int] = None,
        on_evict: Optional[Callable[[Hashable, Any], None]] = None,
    ):
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._budget = self._validate_budget(budget)
        self._on_evict = on_evict
        self._resident = 0
        #: GreedyDual-Size aging clock: rises to each evicted priority.
        self._clock = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _validate_budget(budget: Optional[int]) -> Optional[int]:
        if budget is None:
            return None
        budget = int(budget)
        if budget < 0:
            raise ValueError(f"memory budget must be >= 0 or None, got {budget}")
        return budget

    @property
    def budget(self) -> Optional[int]:
        """Byte budget; ``None`` = unlimited.  Shrinking evicts eagerly."""
        return self._budget

    @budget.setter
    def budget(self, budget: Optional[int]) -> None:
        self._budget = self._validate_budget(budget)
        self._enforce()

    @property
    def resident_bytes(self) -> int:
        """Accounted bytes of all currently cached entries."""
        return self._resident

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        """Keys in recency order (least recent first); no recency bump."""
        return iter(list(self._entries))

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Value for ``key`` (freshening it), else ``default``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return default
        self.hits += 1
        self._entries.move_to_end(key)
        entry.priority = self._priority(entry)
        return entry.value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Value for ``key`` without touching recency or counters."""
        entry = self._entries.get(key)
        return default if entry is None else entry.value

    def put(
        self,
        key: Hashable,
        value: Any,
        nbytes: Optional[int] = None,
        evictable: bool = True,
        cost: float = 0.0,
    ) -> None:
        """Insert (or replace) an entry and enforce the budget.

        ``nbytes`` defaults to :func:`nbytes_of`; pass ``0`` for aliases
        whose bytes are pinned elsewhere.  ``cost`` is the measured
        expense of rebuilding the value (seconds, or any consistent
        unit); it weights eviction priority — see the class docstring.
        With a budget of 0 the entry is admitted and immediately evicted
        — callers still return the value they just built, so semantics
        never change.
        """
        if nbytes is None:
            nbytes = nbytes_of(value)
        self.discard(key)
        entry = _Entry(
            value=value,
            nbytes=int(nbytes),
            evictable=evictable,
            cost=float(max(cost, 0.0)),
        )
        entry.priority = self._priority(entry)
        self._entries[key] = entry
        self._resident += int(nbytes)
        self._enforce()

    def discard(self, key: Hashable) -> None:
        """Remove an entry without counting an eviction or spilling."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._resident -= entry.nbytes

    def clear(self) -> None:
        """Drop every entry (no eviction callbacks; counters are kept)."""
        self._entries.clear()
        self._resident = 0
        self._clock = 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _priority(self, entry: _Entry) -> float:
        """GreedyDual-Size priority at the current clock.

        ``cost`` is normalized per byte so a huge cheap matrix does not
        outrank a small expensive one purely by absolute rebuild time.
        """
        if entry.cost <= 0.0:
            return self._clock
        return self._clock + entry.cost / max(entry.nbytes, 1)

    def _enforce(self) -> None:
        if self._budget is None:
            return
        while self._resident > self._budget:
            victim_key = None
            victim_priority = None
            for key, entry in self._entries.items():  # LRU-first order
                if not entry.evictable or entry.nbytes <= 0:
                    continue
                # Strict < keeps ties on the least-recently-used entry,
                # so zero costs reproduce exact LRU.
                if victim_priority is None or entry.priority < victim_priority:
                    victim_key = key
                    victim_priority = entry.priority
            if victim_key is None:
                return
            entry = self._entries.pop(victim_key)
            self._resident -= entry.nbytes
            self.evictions += 1
            # Age the cache: everything still resident is now worth its
            # cost *relative to* the evicted entry's priority.
            self._clock = max(self._clock, entry.priority)
            if self._on_evict is not None:
                self._on_evict(victim_key, entry.value)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "resident_bytes": self._resident,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class ProductStore:
    """Disk-backed ``.npz`` store for composed commuting-matrix products.

    A product is addressed by ``(content_hash, key)`` where
    ``content_hash`` identifies the HIN's edge arrays + schema
    (:func:`repro.hin.io.hin_content_hash`) and ``key`` is the node-type
    tuple of the chain.  Both are stored *inside* the archive and
    verified on load, so a file that is stale (graph changed), corrupt
    (truncated, garbage), or a filename collision is silently treated as
    a miss — the caller recomposes and rewrites it.

    Concurrent-writer dedupe
    ------------------------
    Writes are atomic (temp file + ``rename``), so parallel workers can
    never corrupt the store — but without coordination they *race to
    compose* the same product, paying the multiplication once per
    process.  The claim protocol fixes that: before composing, a worker
    calls :meth:`acquire_claim` (an ``O_CREAT | O_EXCL`` sidecar file —
    atomic on POSIX and NFS alike); exactly one worker per cluster wins
    and composes, while the others :meth:`wait_for` the winner's
    write-through and load the finished product from disk.  Claims are
    leases, not locks: a claim older than ``claim_ttl`` seconds is
    considered abandoned (crashed writer) and is broken by the next
    waiter, which then composes itself — dedupe is best-effort and can
    never deadlock or lose a product.
    """

    #: Bumped when the archive layout changes; mismatches read as misses.
    FORMAT_VERSION = 1

    #: Seconds after which an unreleased claim counts as abandoned.
    DEFAULT_CLAIM_TTL = 60.0

    def __init__(
        self,
        directory: Union[str, Path],
        claim_ttl: float = DEFAULT_CLAIM_TTL,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.claim_ttl = float(claim_ttl)

    def path_for(self, content_hash: str, key: Sequence[str]) -> Path:
        """Deterministic archive path for one ``(hash, node-type key)``."""
        digest = hashlib.sha256(
            f"v{self.FORMAT_VERSION}|{content_hash}|{'|'.join(key)}".encode()
        ).hexdigest()[:40]
        return self.directory / f"product-{digest}.npz"

    def load(
        self, content_hash: str, key: Sequence[str]
    ) -> Optional[sp.csr_matrix]:
        """The stored CSR product, or ``None`` on any miss/mismatch/corruption."""
        path = self.path_for(content_hash, key)
        try:
            with np.load(path, allow_pickle=False) as archive:
                if int(archive["format_version"]) != self.FORMAT_VERSION:
                    return None
                if str(archive["content_hash"]) != content_hash:
                    return None
                if [str(t) for t in archive["key"]] != [str(t) for t in key]:
                    return None
                matrix = sp.csr_matrix(
                    (
                        archive["data"],
                        archive["indices"],
                        archive["indptr"],
                    ),
                    shape=tuple(int(s) for s in archive["shape"]),
                )
        except (
            OSError,
            ValueError,
            KeyError,
            EOFError,
            zipfile.BadZipFile,
            zlib.error,
            struct.error,
        ):
            # Missing, truncated, non-zip, or field-incomplete archive:
            # all read as a cache miss; the caller recomposes + rewrites.
            return None
        matrix.sort_indices()
        return matrix

    def save(
        self, content_hash: str, key: Sequence[str], matrix: sp.spmatrix
    ) -> bool:
        """Atomically persist a product; returns False on I/O failure."""
        matrix = sp.csr_matrix(matrix)
        path = self.path_for(content_hash, key)
        tmp_path = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
        try:
            # Uncompressed on purpose: the store exists to beat
            # recomposition, and zlib on every load eats the win for
            # mid-sized products (disk is cheap, decompression is not).
            with open(tmp_path, "wb") as handle:
                np.savez(
                    handle,
                    format_version=np.int64(self.FORMAT_VERSION),
                    content_hash=np.array(content_hash),
                    key=np.array(list(key)),
                    data=matrix.data,
                    indices=matrix.indices,
                    indptr=matrix.indptr,
                    shape=np.array(matrix.shape, dtype=np.int64),
                )
            os.replace(tmp_path, path)
        except OSError:
            try:
                tmp_path.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        return True

    # ------------------------------------------------------------------ #
    # Concurrent-writer dedupe (claim protocol)
    # ------------------------------------------------------------------ #

    def claim_path_for(self, content_hash: str, key: Sequence[str]) -> Path:
        """Sidecar claim-file path for one ``(hash, node-type key)``."""
        path = self.path_for(content_hash, key)
        return path.with_name(path.name + ".claim")

    def _claim_is_stale(self, claim_path: Path) -> bool:
        """True when the claim is older than the TTL (abandoned writer)."""
        try:
            age = time.time() - claim_path.stat().st_mtime
        except OSError:
            # Vanished between the existence check and stat: the holder
            # finished (or another waiter broke it) — not stale, gone.
            return False
        return age > self.claim_ttl

    def acquire_claim(self, content_hash: str, key: Sequence[str]) -> bool:
        """Try to become the (single) composer of one product.

        Returns True when this process holds the claim and must compose
        + :meth:`save` + :meth:`release_claim`; False when another live
        worker holds it (call :meth:`wait_for`).  A stale claim is
        broken and re-contested once; any filesystem error degrades to
        False — the caller then just composes redundantly, which is
        always safe.
        """
        claim_path = self.claim_path_for(content_hash, key)
        for _attempt in range(2):
            try:
                fd = os.open(
                    claim_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if self._claim_is_stale(claim_path):
                    try:
                        claim_path.unlink(missing_ok=True)
                    except OSError:
                        return False
                    continue  # re-contest the freed claim exactly once
                return False
            except OSError:
                return False
            try:
                os.write(fd, str(os.getpid()).encode())
            except OSError:
                pass
            finally:
                os.close(fd)
            return True
        return False

    def refresh_claim(self, content_hash: str, key: Sequence[str]) -> None:
        """Renew a held claim's lease (mtime) during long compositions.

        The engine calls this between a product's sub-compositions and
        its final multiply, so deep chains do not exhaust the TTL while
        their prefixes build.  A single multiplication longer than
        ``claim_ttl`` can still be stolen — dedupe stays best-effort,
        the duplicate compose is the only cost.
        """
        try:
            os.utime(self.claim_path_for(content_hash, key))
        except OSError:
            pass

    def release_claim(self, content_hash: str, key: Sequence[str]) -> None:
        """Drop this process's claim (missing file is fine)."""
        try:
            self.claim_path_for(content_hash, key).unlink(missing_ok=True)
        except OSError:
            pass

    def wait_for(
        self,
        content_hash: str,
        key: Sequence[str],
        timeout: Optional[float] = None,
        poll_interval: float = 0.05,
    ) -> Optional[sp.csr_matrix]:
        """Poll for a product another worker claimed; None on timeout.

        Returns as soon as the product loads, or — when the claim
        disappears (writer released) or goes stale (writer died) —
        after one final load attempt.  ``None`` means the caller should
        compose the product itself.
        """
        if timeout is None:
            timeout = self.claim_ttl
        claim_path = self.claim_path_for(content_hash, key)
        deadline = time.monotonic() + timeout
        while True:
            matrix = self.load(content_hash, key)
            if matrix is not None:
                return matrix
            if not claim_path.exists() or self._claim_is_stale(claim_path):
                # Writer finished (released before our load raced it) or
                # died; one last look, then hand composition back.
                return self.load(content_hash, key)
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll_interval)
