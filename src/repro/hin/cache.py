"""Cache management for the commuting-matrix engine.

The :class:`~repro.hin.engine.CommutingEngine` memoizes every composed
chain product and derived view (counts, similarity matrices, suffix
pruning masks, top-k lists).  Left unmanaged, those entries are pinned to
the HIN until :meth:`~repro.hin.engine.CommutingEngine.invalidate` — on
large graphs and long experiment sweeps resident memory grows without
bound, and every fresh process re-pays full composition even on an
unchanged dataset.  This module supplies the two mechanisms that bound
both costs:

:class:`LRUByteCache`
    A byte-budgeted least-recently-used cache.  Every entry is registered
    with its ``nbytes`` (see :func:`nbytes_of`) and a recency stamp; when
    the resident total exceeds the budget, least-recently-used *evictable*
    entries are dropped (an eviction callback lets the owner spill them
    first).  Eviction never changes semantics: the engine transparently
    recomposes an evicted entry on next access, and prefix sharing still
    consults whatever survives.

:class:`ProductStore`
    A disk-backed store for composed chain products.  Files are ``.npz``
    archives keyed by a content hash of the HIN (edge arrays + schema —
    :func:`repro.hin.io.hin_content_hash`) and the product's node-type
    tuple, so repeated runs over the same dataset skip composition
    entirely.  A corrupt or stale file (hash mismatch, truncated archive)
    is ignored and rewritten; writes are atomic (temp file + ``rename``)
    so a crashed run never leaves a torn archive behind.

Zero-copy (mmap) tier
---------------------
Next to every ``.npz`` archive the store keeps raw ``.npy`` *sidecar*
files of the product's CSR components (``data``/``indices``/``indptr``),
written through :func:`save_mmap_arrays`.  :meth:`ProductStore.load`
memory-maps those sidecars read-only (:func:`load_mmap_arrays` +
:func:`csr_from_components`) instead of copying the npz payload onto the
heap, so **co-located workers sharing a store directory share one
OS-page-cache-resident copy per product** — N serving workers cost ~1×
memory, not N×.  The npz stays the single source of truth: sidecars
record the npz's ``stat`` identity and are rebuilt from it whenever they
are missing, truncated, corrupt, or stale, and a corrupt *npz* is a miss
regardless of sidecar health (the caller recomposes and rewrites both).
Mmap-backed matrices are read-only; :func:`resident_nbytes` reports them
at ~zero heap cost, which is how the engine's
:class:`LRUByteCache` budget accounts for them.

Claim files
-----------
:class:`ClaimFile` is the reusable ``O_CREAT | O_EXCL`` + TTL-lease
protocol behind the store's concurrent-writer dedupe (see
:class:`ProductStore`); :class:`repro.api.artifacts.ArtifactStore` reuses
it so whole pipeline stages are also composed once per cluster.

Cache tuning
------------
- ``CommutingEngine(hin, memory_budget=...)`` (or
  ``get_engine(hin, memory_budget=...)``) caps the bytes resident in the
  engine's view cache; ``None`` (the default, via
  :data:`DEFAULT_MEMORY_BUDGET`) means unlimited, ``0`` caches nothing.
  Base per-hop biadjacencies are pinned outside the budget — they are the
  ground truth the graph itself holds anyway.
- The disk store is opt-in: pass ``cache_dir=...`` or set the
  :data:`CACHE_DIR_ENV` (``REPRO_CACHE_DIR``) environment variable.
  Composed products are written through on composition, so a second
  process over the same dataset composes zero products from scratch.
- Cold vs. warm benchmarking: call ``engine.invalidate()`` before a cold
  measurement (drops memory caches; disk files keyed by content hash stay
  valid for an unchanged graph, so "cold memory / warm disk" is the
  second-process scenario).  ``engine.stats()`` reports
  hits/misses/evictions/spills/disk hits and resident bytes.
"""

from __future__ import annotations

import hashlib
import json
import mmap as _mmap
import os
import struct
import sys
import threading
import time
import zipfile
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np
import scipy.sparse as sp

from repro.obs import metrics as obs_metrics

#: Module-level default for ``CommutingEngine(memory_budget=...)``.
#: ``None`` = unlimited (the historical pin-everything behavior).
DEFAULT_MEMORY_BUDGET: Optional[int] = None

#: Environment variable naming the default disk-backed product store
#: directory.  Unset (the default, and what CI relies on) disables the
#: disk store unless a ``cache_dir`` is passed explicitly.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


#: Exception set every archive loader in this repo treats as a silent
#: cache miss: missing/truncated/non-zip/garbage files, bad JSON, short
#: reads.  Deliberately excludes ``TypeError`` — in npz/bundle loaders a
#: TypeError means a real bug (malformed header handling), and masking
#: it as a miss would make pipelines silently recompute forever.
ARCHIVE_MISS_ERRORS = (
    OSError,
    ValueError,
    KeyError,
    EOFError,
    zipfile.BadZipFile,
    zlib.error,
    struct.error,
    json.JSONDecodeError,
)

#: The sidecar *manifest* parsers additionally treat ``TypeError`` /
#: ``AttributeError`` as misses: a hand-corrupted ``.mmap.json`` can
#: decode to any JSON shape (a bare int, a list where a dict belongs),
#: and those surface exactly as attribute/type errors during parsing.
_MANIFEST_MISS_ERRORS = ARCHIVE_MISS_ERRORS + (TypeError, AttributeError)


def default_cache_dir() -> Optional[str]:
    """The product-store directory from :data:`CACHE_DIR_ENV`, if set."""
    directory = os.environ.get(CACHE_DIR_ENV, "").strip()
    return directory or None


def nbytes_of(value: Any) -> int:
    """Best-effort resident size in bytes of a cached value.

    Understands scipy sparse matrices (sum of their constituent arrays),
    numpy arrays, and containers thereof; anything else falls back to
    ``sys.getsizeof``.  This is an *accounting* size — Python object
    overhead of containers is ignored, which is negligible next to the
    array payloads the cache manages.
    """
    if sp.issparse(value):
        total = 0
        for attr in ("data", "indices", "indptr", "row", "col", "offsets"):
            array = getattr(value, attr, None)
            if isinstance(array, np.ndarray):
                total += array.nbytes
        return total
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(nbytes_of(item) for item in value)
    if isinstance(value, dict):
        return sum(nbytes_of(item) for item in value.values())
    return int(sys.getsizeof(value))


def _array_is_mapped(array: Any) -> bool:
    """True when an ndarray's storage is a memory-mapped file."""
    seen = 0
    base = array
    while base is not None and seen < 8:  # base chains are short
        if isinstance(base, (np.memmap, _mmap.mmap)):
            return True
        base = getattr(base, "base", None)
        seen += 1
    return False


def is_mmap_backed(matrix: Any) -> bool:
    """True when a CSR/array's payload lives in mapped files, not heap.

    A sparse matrix counts as mapped when *every* component array is
    mapped (empty components — which numpy may materialize on heap —
    are ignored; their bytes are ~zero either way).
    """
    if sp.issparse(matrix):
        components = [
            getattr(matrix, attr)
            for attr in ("data", "indices", "indptr")
            if getattr(matrix, attr, None) is not None
        ]
        sized = [c for c in components if c.size > 0]
        return bool(sized) and all(_array_is_mapped(c) for c in sized)
    if isinstance(matrix, np.ndarray):
        return matrix.size > 0 and _array_is_mapped(matrix)
    return False


def resident_nbytes(value: Any) -> int:
    """Heap-resident bytes of a cached value: mapped arrays count as 0.

    The accounting twin of :func:`nbytes_of` for the zero-copy tier —
    a memory-mapped product's pages belong to the OS page cache (shared
    across every process mapping the same file, reclaimable under
    pressure), so charging them against a per-process heap budget would
    evict real heap entries to "free" memory that was never resident.
    """
    if sp.issparse(value):
        total = 0
        for attr in ("data", "indices", "indptr", "row", "col", "offsets"):
            array = getattr(value, attr, None)
            if isinstance(array, np.ndarray) and not _array_is_mapped(array):
                total += array.nbytes
        return total
    if isinstance(value, np.ndarray):
        return 0 if _array_is_mapped(value) else int(value.nbytes)
    return nbytes_of(value)


def csr_from_components(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: Tuple[int, int],
) -> sp.csr_matrix:
    """A CSR over existing component arrays with **zero copies**.

    The ordinary ``sp.csr_matrix((data, indices, indptr))`` constructor
    runs ``check_format`` which may re-cast index dtypes (copying) and
    would later ``sort_indices`` *in place* — both fatal for read-only
    memory-mapped components.  This builds the matrix by direct attribute
    assignment and marks it sorted/canonical, which is the writer's
    contract: :func:`save_mmap_arrays` callers persist only
    sorted-deduplicated CSR.
    """
    matrix = sp.csr_matrix(tuple(int(s) for s in shape), dtype=data.dtype)
    matrix.data = data
    matrix.indices = indices
    matrix.indptr = indptr
    matrix.has_sorted_indices = True
    try:
        matrix.has_canonical_format = True
    except AttributeError:  # older scipy spells it differently; harmless
        pass
    return matrix


def splice_rows(
    matrix: sp.csr_matrix,
    rows: np.ndarray,
    block: sp.csr_matrix,
) -> sp.csr_matrix:
    """A new CSR equal to ``matrix`` with ``rows`` replaced by ``block``.

    The row-scoped patch primitive of the delta-ingest tier: the engine
    recomposes only the dirty rows of a commuting product as a row block
    and splices them over the stale rows.  ``rows`` must be sorted unique
    row ids; ``block`` has ``len(rows)`` rows, same column count, and
    sorted indices (its rows land verbatim, so per-row sortedness is the
    caller's contract — both inputs canonical ⇒ output canonical).

    ``matrix`` is never written (it may be a read-only mmap-backed
    replica); the result owns fresh component arrays assembled with one
    vectorized scatter per component.
    """
    rows = np.asarray(rows, dtype=np.int64)
    num_rows, num_cols = matrix.shape
    if block.shape != (rows.size, num_cols):
        raise ValueError(
            f"block shape {block.shape} != ({rows.size}, {num_cols})"
        )
    old_indptr = matrix.indptr
    old_lengths = np.diff(old_indptr)
    new_lengths = old_lengths.copy()
    block_lengths = np.diff(block.indptr)
    new_lengths[rows] = block_lengths
    indptr = np.zeros(num_rows + 1, dtype=old_indptr.dtype)
    np.cumsum(new_lengths, out=indptr[1:])

    out_data = np.empty(int(indptr[-1]), dtype=matrix.data.dtype)
    out_indices = np.empty(int(indptr[-1]), dtype=matrix.indices.dtype)

    # Kept old entries: scatter each to its row's new start + offset.
    dirty = np.zeros(num_rows, dtype=bool)
    dirty[rows] = True
    old_row_ids = np.repeat(np.arange(num_rows), old_lengths)
    keep = ~dirty[old_row_ids]
    kept_rows = old_row_ids[keep]
    offsets = np.arange(old_indptr[-1], dtype=np.int64) - np.repeat(
        old_indptr[:-1].astype(np.int64), old_lengths
    )
    dest = indptr[kept_rows].astype(np.int64) + offsets[keep]
    out_data[dest] = matrix.data[keep]
    out_indices[dest] = matrix.indices[keep]

    # Block entries: same scatter against the block's own offsets.
    block_row_ids = np.repeat(rows, block_lengths)
    block_offsets = np.arange(block.indptr[-1], dtype=np.int64) - np.repeat(
        block.indptr[:-1].astype(np.int64), block_lengths
    )
    dest = indptr[block_row_ids].astype(np.int64) + block_offsets
    out_data[dest] = block.data
    out_indices[dest] = block.indices
    return csr_from_components(out_data, out_indices, indptr, matrix.shape)


# ---------------------------------------------------------------------- #
# Raw-``.npy`` sidecar persistence (the zero-copy tier's file format)
# ---------------------------------------------------------------------- #

#: Suffix of the JSON manifest naming one consistent sidecar generation.
MMAP_META_SUFFIX = ".mmap.json"

#: Superseded sidecar generations younger than this are left on disk —
#: they may belong to a concurrent writer whose manifest rename is about
#: to land (see the reap loop in :func:`save_mmap_arrays`).
_REAP_GRACE_SECONDS = 60.0


def _sidecar_meta_path(directory: Path, prefix: str) -> Path:
    return directory / f"{prefix}{MMAP_META_SUFFIX}"


def _sidecar_array_path(
    directory: Path, prefix: str, generation: str, name: str
) -> Path:
    return directory / f"{prefix}.{generation}.{name}.npy"


def save_mmap_arrays(
    directory: Union[str, Path],
    prefix: str,
    arrays: Dict[str, np.ndarray],
    meta: Optional[dict] = None,
) -> bool:
    """Persist named arrays as raw ``.npy`` files + a JSON manifest.

    Every array lands in its own ``<prefix>.<generation>.<name>.npy``
    (atomic temp-file + rename), then the manifest
    ``<prefix>.mmap.json`` is atomically replaced to point at the new
    generation — so readers always see a *consistent set*: a crash
    between array writes leaves the old manifest (and old files) intact,
    and mixed-generation reads are impossible by construction.  Older
    generations are unlinked best-effort afterwards.  Returns False on
    any I/O failure (callers fall back to non-mapped serving).
    """
    directory = Path(directory)
    generation = os.urandom(8).hex()
    manifest = {
        "sidecar_version": 1,
        "generation": generation,
        "arrays": {},
    }
    if meta:
        manifest["meta"] = dict(meta)
    written = []
    try:
        directory.mkdir(parents=True, exist_ok=True)
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            path = _sidecar_array_path(directory, prefix, generation, name)
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            with open(tmp, "wb") as handle:
                np.save(handle, array)
            os.replace(tmp, path)
            written.append(path)
            manifest["arrays"][name] = {
                "shape": list(array.shape),
                "dtype": str(array.dtype),
            }
        meta_path = _sidecar_meta_path(directory, prefix)
        tmp = meta_path.with_name(f"{meta_path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(manifest, sort_keys=True))
        os.replace(tmp, meta_path)
    except OSError:
        for path in written:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        return False
    # Reap superseded generations (best-effort; a concurrent reader that
    # already mapped an old file keeps its pages alive via the open map).
    # Only files older than a grace period are touched: a *concurrent
    # writer's* fresh generation — which may become the current manifest
    # a millisecond from now — must never be unlinked by a racing save.
    cutoff = time.time() - _REAP_GRACE_SECONDS
    for stale in directory.glob(f"{prefix}.*.npy"):
        if f".{generation}." in stale.name:
            continue
        try:
            if stale.stat().st_mtime < cutoff:
                stale.unlink(missing_ok=True)
        except OSError:
            pass
    return True


def load_mmap_arrays(
    directory: Union[str, Path],
    prefix: str,
    expected_meta: Optional[dict] = None,
) -> Optional[Tuple[dict, Dict[str, np.ndarray]]]:
    """Memory-map a sidecar generation read-only; ``None`` on any miss.

    Returns ``(meta, arrays)`` — the manifest's recorded ``meta`` dict
    plus the mapped arrays.  Misses (all silent, mirroring every loader
    in this module): missing or corrupt manifest, ``expected_meta``
    entries that do not match the manifest's recorded ``meta`` exactly
    (the staleness check — e.g. the source npz's stat identity), a
    missing/truncated array file, or a mapped array whose shape/dtype
    disagrees with the manifest.  Zero-size arrays are loaded normally
    (they cannot be mapped) — their heap cost is nil.
    """
    directory = Path(directory)
    meta_path = _sidecar_meta_path(directory, prefix)
    try:
        manifest = json.loads(meta_path.read_text())
        if manifest.get("sidecar_version") != 1:
            return None
        recorded = manifest.get("meta", {})
        if expected_meta:
            for key, value in expected_meta.items():
                if recorded.get(key) != value:
                    return None
        generation = manifest["generation"]
        out: Dict[str, np.ndarray] = {}
        for name, spec in manifest["arrays"].items():
            path = _sidecar_array_path(directory, prefix, generation, name)
            expected_shape = tuple(int(s) for s in spec["shape"])
            if int(np.prod(expected_shape)) == 0:
                array = np.load(path, allow_pickle=False)
            else:
                array = np.load(path, mmap_mode="r", allow_pickle=False)
            if tuple(array.shape) != expected_shape:
                return None
            if str(array.dtype) != spec["dtype"]:
                return None
            out[name] = array
    except _MANIFEST_MISS_ERRORS:
        return None
    return recorded, out


def load_mmap_csr(
    directory: Union[str, Path],
    prefix: str,
    expected_meta: Optional[dict] = None,
) -> Optional[sp.csr_matrix]:
    """Map one sidecar CSR (written by :func:`save_mmap_csr`); None on miss.

    Beyond :func:`load_mmap_arrays`' checks this validates the CSR
    invariants that a torn or mismatched component set would break:
    ``indptr`` length vs. the recorded shape, ``indptr[0] == 0``, and
    ``indptr[-1] == nnz``.
    """
    loaded = load_mmap_arrays(directory, prefix, expected_meta)
    if loaded is None:
        return None
    meta, arrays = loaded
    try:
        shape = tuple(int(s) for s in meta["shape"])
        data, indices, indptr = (
            arrays["data"], arrays["indices"], arrays["indptr"],
        )
    except _MANIFEST_MISS_ERRORS:
        return None
    if len(shape) != 2 or indptr.shape != (shape[0] + 1,):
        return None
    if indices.shape != data.shape:
        return None
    if indptr.size == 0 or int(indptr[0]) != 0 or int(indptr[-1]) != data.size:
        return None
    return csr_from_components(data, indices, indptr, shape)


def save_mmap_csr(
    directory: Union[str, Path],
    prefix: str,
    matrix: sp.spmatrix,
    meta: Optional[dict] = None,
) -> bool:
    """Persist one CSR's components as mappable sidecars (sorted first)."""
    matrix = sp.csr_matrix(matrix)
    if not matrix.has_sorted_indices:
        matrix = matrix.copy()
        matrix.sort_indices()
    full_meta = dict(meta or {})
    full_meta["shape"] = [int(s) for s in matrix.shape]
    return save_mmap_arrays(
        directory,
        prefix,
        {
            "data": matrix.data,
            "indices": matrix.indices,
            "indptr": matrix.indptr,
        },
        meta=full_meta,
    )


def file_stat_identity(path: Union[str, Path]) -> Optional[dict]:
    """A file's (size, mtime_ns, inode) triple — the cheap staleness key.

    Atomic-rename writers (every store in this repo) allocate a fresh
    inode per rewrite, so any rewrite — even a same-size, same-content
    one — changes the identity; in-place corruption changes size or
    mtime.  ``None`` when the file is missing.
    """
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return {
        "size": int(stat.st_size),
        "mtime_ns": int(stat.st_mtime_ns),
        "ino": int(stat.st_ino),
    }


@dataclass
class _Entry:
    value: Any
    nbytes: int
    evictable: bool
    cost: float = 0.0
    priority: float = 0.0


class LRUByteCache:
    """A byte-budgeted cache with cost-aware (GreedyDual-Size) eviction.

    Entries are kept in recency order (:class:`~collections.OrderedDict`);
    :meth:`get` freshens, :meth:`put` inserts at the most-recent end and
    then evicts evictable entries until the resident total fits the budget
    again.  Entries registered with ``nbytes=0`` (aliases of data pinned
    elsewhere) are never chosen for eviction — dropping them frees
    nothing.

    Victim selection follows GreedyDual-Size: every entry carries a
    priority ``clock + cost / nbytes`` stamped at insertion and refreshed
    on access, where ``cost`` is the caller-measured expense of rebuilding
    the entry (the engine feeds compose/build wall-clock seconds from its
    compose-event log).  Eviction drops the minimum-priority entry and
    advances the clock to that priority, so expensive entries survive
    pressure from cheap ones but age out once the cheap ones have cycled
    enough.  With every cost at the default ``0.0`` all priorities stay
    equal and ties break toward the least recently used — i.e. the policy
    degenerates to exact LRU, the pre-cost behavior.

    The cache never drops *non-evictable* entries for space, so the
    resident total can exceed the budget only by the non-evictable
    portion; the engine registers everything recomputable as evictable.

    Counters (``hits``/``misses``/``evictions``) are exact per-operation
    counts; :meth:`reset_stats` zeroes them without touching contents.

    Thread safety: the serving tier shares one engine — and therefore
    one of these caches — across scheduler threads, so every mutable
    field is guarded by a reentrant lock (the ``# guarded-by:``
    annotations below are enforced statically by the lock-discipline
    rule of ``python -m repro.analysis`` and dynamically by
    :mod:`repro.analysis.sanitizer`).  The eviction callback runs with
    the lock held — owners must not call back into the cache from a
    different thread inside it.
    """

    def __init__(
        self,
        budget: Optional[int] = None,
        on_evict: Optional[Callable[[Hashable, Any], None]] = None,
    ):
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()  # guarded-by: _lock
        self._budget = self._validate_budget(budget)  # guarded-by: _lock
        self._on_evict = on_evict
        self._resident = 0  # guarded-by: _lock
        #: GreedyDual-Size aging clock: rises to each evicted priority.
        self._clock = 0.0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self._obs = obs_metrics.REGISTRY.register("cache", self._collect_metrics)

    @staticmethod
    def _validate_budget(budget: Optional[int]) -> Optional[int]:
        if budget is None:
            return None
        budget = int(budget)
        if budget < 0:
            raise ValueError(f"memory budget must be >= 0 or None, got {budget}")
        return budget

    @property
    def budget(self) -> Optional[int]:
        """Byte budget; ``None`` = unlimited.  Shrinking evicts eagerly."""
        with self._lock:
            return self._budget

    @budget.setter
    def budget(self, budget: Optional[int]) -> None:
        with self._lock:
            self._budget = self._validate_budget(budget)
            self._enforce()

    @property
    def resident_bytes(self) -> int:
        """Accounted bytes of all currently cached entries."""
        with self._lock:
            return self._resident

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Iterator[Hashable]:
        """Keys in recency order (least recent first); no recency bump."""
        with self._lock:
            return iter(list(self._entries))

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Value for ``key`` (freshening it), else ``default``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return default
            self.hits += 1
            self._entries.move_to_end(key)
            entry.priority = self._priority(entry)
            return entry.value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Value for ``key`` without touching recency or counters."""
        with self._lock:
            entry = self._entries.get(key)
            return default if entry is None else entry.value

    def put(
        self,
        key: Hashable,
        value: Any,
        nbytes: Optional[int] = None,
        evictable: bool = True,
        cost: float = 0.0,
    ) -> None:
        """Insert (or replace) an entry and enforce the budget.

        ``nbytes`` defaults to :func:`nbytes_of`; pass ``0`` for aliases
        whose bytes are pinned elsewhere.  ``cost`` is the measured
        expense of rebuilding the value (seconds, or any consistent
        unit); it weights eviction priority — see the class docstring.
        With a budget of 0 the entry is admitted and immediately evicted
        — callers still return the value they just built, so semantics
        never change.
        """
        if nbytes is None:
            nbytes = nbytes_of(value)
        with self._lock:
            self.discard(key)
            entry = _Entry(
                value=value,
                nbytes=int(nbytes),
                evictable=evictable,
                cost=float(max(cost, 0.0)),
            )
            entry.priority = self._priority(entry)
            self._entries[key] = entry
            self._resident += int(nbytes)
            self._enforce()

    def replace(
        self, key: Hashable, value: Any, nbytes: Optional[int] = None
    ) -> bool:
        """Swap an existing entry's value in place; ``False`` on miss.

        The patch primitive of the delta-ingest tier: unlike
        :meth:`put` it preserves the entry's recency position, cost and
        evictability — a patched product is the *same* cache citizen
        with updated bytes, not a freshly admitted one.  Accounting is
        updated to the new size and the budget re-enforced.
        """
        if nbytes is None:
            nbytes = nbytes_of(value)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            self._resident += int(nbytes) - entry.nbytes
            entry.value = value
            entry.nbytes = int(nbytes)
            entry.priority = self._priority(entry)
            self._enforce()
            return True

    def discard(self, key: Hashable) -> None:
        """Remove an entry without counting an eviction or spilling."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._resident -= entry.nbytes

    def clear(self) -> None:
        """Drop every entry (no eviction callbacks; counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._resident = 0
            self._clock = 0.0

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def _priority(self, entry: _Entry) -> float:
        """GreedyDual-Size priority at the current clock.

        ``cost`` is normalized per byte so a huge cheap matrix does not
        outrank a small expensive one purely by absolute rebuild time.
        """
        with self._lock:
            if entry.cost <= 0.0:
                return self._clock
            return self._clock + entry.cost / max(entry.nbytes, 1)

    def _enforce(self) -> None:
        with self._lock:
            if self._budget is None:
                return
            while self._resident > self._budget:
                victim_key = None
                victim_priority = None
                for key, entry in self._entries.items():  # LRU-first order
                    if not entry.evictable or entry.nbytes <= 0:
                        continue
                    # Strict < keeps ties on the least-recently-used entry,
                    # so zero costs reproduce exact LRU.
                    if victim_priority is None or entry.priority < victim_priority:
                        victim_key = key
                        victim_priority = entry.priority
                if victim_key is None:
                    return
                entry = self._entries.pop(victim_key)
                self._resident -= entry.nbytes
                self.evictions += 1
                # Age the cache: everything still resident is now worth its
                # cost *relative to* the evicted entry's priority.
                self._clock = max(self._clock, entry.priority)
                if self._on_evict is not None:
                    self._on_evict(victim_key, entry.value)

    def snapshot(self) -> dict:
        """One consistent view of contents *and* counters, single lock hold.

        ``items`` pairs each key with its cached value (no recency bump,
        no counter effects — :meth:`peek` semantics).  Composite readers
        (the engine's ``stats()``) use this instead of interleaving
        ``keys()`` / ``peek()`` / ``resident_bytes`` calls, whose
        separate lock acquisitions can observe an eviction mid-read.
        """
        with self._lock:
            return {
                "items": [(key, entry.value) for key, entry in self._entries.items()],
                "resident_bytes": self._resident,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def _collect_metrics(self) -> dict:
        """Registry collector; :meth:`stats` is a thin view over it."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "resident_bytes": self._resident,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def stats(self) -> dict:
        return self._obs.read()


class ClaimFile:
    """One ``O_CREAT | O_EXCL`` + TTL-lease claim on a filesystem path.

    The reusable concurrent-writer dedupe primitive: before paying an
    expensive computation whose result lands at a shared path, a worker
    tries :meth:`acquire`; exactly one worker per cluster wins (atomic on
    POSIX and NFS alike) and computes + :meth:`release`, while losers
    :meth:`wait` for the winner's write-through.  Claims are leases, not
    locks: one older than ``ttl`` seconds counts as abandoned (crashed
    writer) and is broken by the next contender — dedupe is best-effort
    and can never deadlock or lose a result.

    :class:`ProductStore` claims products with this;
    :class:`repro.api.artifacts.ArtifactStore` claims whole pipeline
    stage artifacts; the serving bundle mapper claims sidecar exports.
    """

    #: Seconds after which an unreleased claim counts as abandoned.
    DEFAULT_TTL = 60.0

    def __init__(self, path: Union[str, Path], ttl: float = DEFAULT_TTL):
        self.path = Path(path)
        self.ttl = float(ttl)

    def is_stale(self) -> bool:
        """True when the claim is older than the TTL (abandoned writer)."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            # Vanished between the existence check and stat: the holder
            # finished (or another waiter broke it) — not stale, gone.
            return False
        return age > self.ttl

    def acquire(self) -> bool:
        """Try to become the (single) computer of this path's result.

        Returns True when this process holds the claim and must compute
        + :meth:`release`; False when another live worker holds it (call
        :meth:`wait`).  A stale claim is broken and re-contested once;
        any filesystem error degrades to False — the caller then just
        computes redundantly, which is always safe.
        """
        for _attempt in range(2):
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if self.is_stale():
                    try:
                        self.path.unlink(missing_ok=True)
                    except OSError:
                        return False
                    continue  # re-contest the freed claim exactly once
                return False
            except OSError:
                return False
            try:
                os.write(fd, str(os.getpid()).encode())
            except OSError:
                pass
            finally:
                os.close(fd)
            return True
        return False

    def refresh(self) -> None:
        """Renew a held claim's lease (mtime) during long computations.

        Only the claim holder should refresh — a fallback computer must
        never extend a dead writer's lease.
        """
        try:
            os.utime(self.path)
        except OSError:
            pass

    def keepalive(self, interval: Optional[float] = None) -> "_LeaseHeartbeat":
        """Context manager: refresh the lease periodically while held.

        Wrap a computation that may outlive the TTL (featurize trains
        embeddings, fit trains the model) so live holders are never
        mistaken for crashed ones and waiters never duplicate the work.
        A crashed holder's heartbeat dies with its process, so the lease
        still expires — liveness is preserved.  Defaults to a third of
        the TTL.
        """
        return _LeaseHeartbeat(
            self, self.ttl / 3.0 if interval is None else float(interval)
        )

    def release(self) -> None:
        """Drop this process's claim (missing file is fine)."""
        try:
            self.path.unlink(missing_ok=True)
        except OSError:
            pass

    def wait(
        self,
        load: Callable[[], Any],
        timeout: Optional[float] = None,
        poll_interval: float = 0.05,
    ):
        """Poll ``load()`` until it returns non-None; None on timeout.

        Returns as soon as ``load()`` produces a value, or — when the
        claim disappears (writer released) or goes stale (writer died) —
        after one final ``load()``.  ``None`` means the caller should
        compute the result itself.

        With ``timeout=None`` (the default) the wait is bounded by the
        claim's **liveness**, not a fixed clock: as long as the holder
        keeps its lease fresh (:meth:`refresh` / :meth:`keepalive`) the
        waiter keeps waiting — that is the whole point of deduping
        stages longer than the TTL — while a dead holder's lease goes
        stale within ``ttl`` seconds and computation falls back.  Pass
        an explicit ``timeout`` for a hard cap.
        """
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        while True:
            value = load()
            if value is not None:
                return value
            if not self.path.exists() or self.is_stale():
                # Writer finished (released before our load raced it) or
                # died; one last look, then hand computation back.
                return load()
            if deadline is not None and time.monotonic() >= deadline:
                return None
            time.sleep(poll_interval)


class _LeaseHeartbeat:
    """Background lease refresh while a claim holder computes.

    Created by :meth:`ClaimFile.keepalive`; the daemon thread wakes every
    ``interval`` seconds and touches the claim file, and dies promptly on
    exit (``Event.wait`` returns the moment the owner leaves the block).
    """

    def __init__(self, claim: ClaimFile, interval: float):
        self._claim = claim
        self._interval = max(float(interval), 0.01)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread = threading.Thread(
            target=self._loop, name="claim-keepalive", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self._claim.refresh()

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None


class ProductStore:
    """Disk-backed ``.npz`` store for composed commuting-matrix products.

    A product is addressed by ``(content_hash, key)`` where
    ``content_hash`` identifies the HIN's edge arrays + schema
    (:func:`repro.hin.io.hin_content_hash`) and ``key`` is the node-type
    tuple of the chain.  Both are stored *inside* the archive and
    verified on load, so a file that is stale (graph changed), corrupt
    (truncated, garbage), or a filename collision is silently treated as
    a miss — the caller recomposes and rewrites it.

    Concurrent-writer dedupe
    ------------------------
    Writes are atomic (temp file + ``rename``), so parallel workers can
    never corrupt the store — but without coordination they *race to
    compose* the same product, paying the multiplication once per
    process.  The claim protocol fixes that: before composing, a worker
    calls :meth:`acquire_claim` (an ``O_CREAT | O_EXCL`` sidecar file —
    atomic on POSIX and NFS alike); exactly one worker per cluster wins
    and composes, while the others :meth:`wait_for` the winner's
    write-through and load the finished product from disk.  Claims are
    leases, not locks: a claim older than ``claim_ttl`` seconds is
    considered abandoned (crashed writer) and is broken by the next
    waiter, which then composes itself — dedupe is best-effort and can
    never deadlock or lose a product.
    """

    #: Bumped when the archive layout changes; mismatches read as misses.
    FORMAT_VERSION = 1

    #: Seconds after which an unreleased claim counts as abandoned.
    DEFAULT_CLAIM_TTL = ClaimFile.DEFAULT_TTL

    def __init__(
        self,
        directory: Union[str, Path],
        claim_ttl: float = DEFAULT_CLAIM_TTL,
        mmap: bool = True,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.claim_ttl = float(claim_ttl)
        #: Serve loads through read-only memory-mapped sidecars when
        #: possible (the zero-copy tier); ``False`` restores the
        #: npz-copy behavior (e.g. on filesystems where mmap is slow).
        self.mmap = bool(mmap)
        # Telemetry counters sit behind their own leaf lock so the IO
        # paths never run locked (blocking-under-lock rule).
        self._stats_lock = threading.Lock()
        self._loads = 0  # guarded-by: _stats_lock
        self._load_hits = 0  # guarded-by: _stats_lock
        self._saves = 0  # guarded-by: _stats_lock
        self._save_failures = 0  # guarded-by: _stats_lock
        self._obs = obs_metrics.REGISTRY.register("store", self._collect_metrics)

    def _collect_metrics(self) -> dict:
        """Registry collector; :meth:`stats` is a thin view over it."""
        with self._stats_lock:
            return {
                "loads": self._loads,
                "load_hits": self._load_hits,
                "load_misses": self._loads - self._load_hits,
                "saves": self._saves,
                "save_failures": self._save_failures,
            }

    def stats(self) -> dict:
        """Load/save counters for this store instance."""
        return self._obs.read()

    def path_for(self, content_hash: str, key: Sequence[str]) -> Path:
        """Deterministic archive path for one ``(hash, node-type key)``."""
        digest = hashlib.sha256(
            f"v{self.FORMAT_VERSION}|{content_hash}|{'|'.join(key)}".encode()
        ).hexdigest()[:40]
        return self.directory / f"product-{digest}.npz"

    def _sidecar_meta(self, content_hash: str, key: Sequence[str]) -> dict:
        """The manifest identity sidecars must match to be served.

        Tying sidecars to the npz's stat identity keeps the npz the
        single source of truth: any rewrite or in-place corruption of
        the archive invalidates the mapped replica too.
        """
        return {
            "format_version": self.FORMAT_VERSION,
            "content_hash": content_hash,
            "key": [str(t) for t in key],
            "npz_stat": file_stat_identity(self.path_for(content_hash, key)),
        }

    def load(
        self,
        content_hash: str,
        key: Sequence[str],
        mmap: Optional[bool] = None,
    ) -> Optional[sp.csr_matrix]:
        """The stored CSR product, or ``None`` on any miss/mismatch/corruption.

        With the mmap tier enabled (the default) the returned matrix is
        **read-only and memory-mapped** whenever healthy sidecars exist;
        missing or stale sidecars are rebuilt from the npz on the way
        through, so the *next* load — from this or any co-located
        process — is zero-copy.  ``mmap=False`` forces the heap path.
        """
        matrix = self._load_impl(content_hash, key, mmap)
        with self._stats_lock:
            self._loads += 1
            if matrix is not None:
                self._load_hits += 1
        return matrix

    def _load_impl(
        self,
        content_hash: str,
        key: Sequence[str],
        mmap: Optional[bool] = None,
    ) -> Optional[sp.csr_matrix]:
        mmap = self.mmap if mmap is None else bool(mmap)
        path = self.path_for(content_hash, key)
        if mmap:
            expected = self._sidecar_meta(content_hash, key)
            if expected["npz_stat"] is not None:
                mapped = load_mmap_csr(self.directory, path.stem, expected)
                if mapped is not None:
                    return mapped
        matrix = self._load_npz(content_hash, key)
        if matrix is None or not mmap:
            return matrix
        # Healthy npz but no (or stale/corrupt) sidecars: rebuild them and
        # hand back the mapped view so even the rebuilding process serves
        # zero-copy; the transient heap copy dies with this frame.  The
        # rebuild is claim-guarded so a stampede of cold workers elects
        # one writer — losers serve this load from the heap copy and map
        # on their next access.
        rebuild = ClaimFile(
            path.with_name(path.name + ".mmap.claim"), self.claim_ttl
        )
        if not rebuild.acquire():
            return matrix
        try:
            if save_mmap_csr(
                self.directory,
                path.stem,
                matrix,
                meta=self._sidecar_meta(content_hash, key),
            ):
                mapped = load_mmap_csr(
                    self.directory,
                    path.stem,
                    self._sidecar_meta(content_hash, key),
                )
                if mapped is not None:
                    return mapped
        finally:
            rebuild.release()
        return matrix

    def _load_npz(
        self, content_hash: str, key: Sequence[str]
    ) -> Optional[sp.csr_matrix]:
        """The npz-archive (heap-copy) load path."""
        path = self.path_for(content_hash, key)
        try:
            with np.load(path, allow_pickle=False) as archive:
                if int(archive["format_version"]) != self.FORMAT_VERSION:
                    return None
                if str(archive["content_hash"]) != content_hash:
                    return None
                if [str(t) for t in archive["key"]] != [str(t) for t in key]:
                    return None
                matrix = sp.csr_matrix(
                    (
                        archive["data"],
                        archive["indices"],
                        archive["indptr"],
                    ),
                    shape=tuple(int(s) for s in archive["shape"]),
                )
        except (
            OSError,
            ValueError,
            KeyError,
            EOFError,
            zipfile.BadZipFile,
            zlib.error,
            struct.error,
        ):
            # Missing, truncated, non-zip, or field-incomplete archive:
            # all read as a cache miss; the caller recomposes + rewrites.
            return None
        matrix.sort_indices()
        return matrix

    def save(
        self, content_hash: str, key: Sequence[str], matrix: sp.spmatrix
    ) -> bool:
        """Atomically persist a product; returns False on I/O failure."""
        saved = self._save_impl(content_hash, key, matrix)
        with self._stats_lock:
            self._saves += 1
            if not saved:
                self._save_failures += 1
        return saved

    def _save_impl(
        self, content_hash: str, key: Sequence[str], matrix: sp.spmatrix
    ) -> bool:
        matrix = sp.csr_matrix(matrix)
        path = self.path_for(content_hash, key)
        tmp_path = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
        try:
            # Uncompressed on purpose: the store exists to beat
            # recomposition, and zlib on every load eats the win for
            # mid-sized products (disk is cheap, decompression is not).
            with open(tmp_path, "wb") as handle:
                np.savez(
                    handle,
                    format_version=np.int64(self.FORMAT_VERSION),
                    content_hash=np.array(content_hash),
                    key=np.array(list(key)),
                    data=matrix.data,
                    indices=matrix.indices,
                    indptr=matrix.indptr,
                    shape=np.array(matrix.shape, dtype=np.int64),
                )
            os.replace(tmp_path, path)
        except OSError:
            try:
                tmp_path.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        if self.mmap:
            # Write the zero-copy sidecars eagerly so the first reader —
            # including this process after an eviction — maps instead of
            # copying.  Failure is benign: load() rebuilds them lazily.
            save_mmap_csr(
                self.directory,
                path.stem,
                matrix,
                meta=self._sidecar_meta(content_hash, key),
            )
        return True

    # ------------------------------------------------------------------ #
    # Concurrent-writer dedupe (claim protocol)
    # ------------------------------------------------------------------ #

    def claim_path_for(self, content_hash: str, key: Sequence[str]) -> Path:
        """Sidecar claim-file path for one ``(hash, node-type key)``."""
        path = self.path_for(content_hash, key)
        return path.with_name(path.name + ".claim")

    def claim(self, content_hash: str, key: Sequence[str]) -> ClaimFile:
        """The :class:`ClaimFile` guarding one product's composition."""
        return ClaimFile(self.claim_path_for(content_hash, key), self.claim_ttl)

    def acquire_claim(self, content_hash: str, key: Sequence[str]) -> bool:
        """Try to become the (single) composer of one product.

        Returns True when this process holds the claim and must compose
        + :meth:`save` + :meth:`release_claim`; False when another live
        worker holds it (call :meth:`wait_for`).  See
        :meth:`ClaimFile.acquire` for the lease semantics.
        """
        return self.claim(content_hash, key).acquire()

    def refresh_claim(self, content_hash: str, key: Sequence[str]) -> None:
        """Renew a held claim's lease (mtime) during long compositions.

        The engine calls this between a product's sub-compositions and
        its final multiply, so deep chains do not exhaust the TTL while
        their prefixes build.  A single multiplication longer than
        ``claim_ttl`` can still be stolen — dedupe stays best-effort,
        the duplicate compose is the only cost.
        """
        self.claim(content_hash, key).refresh()

    def release_claim(self, content_hash: str, key: Sequence[str]) -> None:
        """Drop this process's claim (missing file is fine)."""
        self.claim(content_hash, key).release()

    def wait_for(
        self,
        content_hash: str,
        key: Sequence[str],
        timeout: Optional[float] = None,
        poll_interval: float = 0.05,
    ) -> Optional[sp.csr_matrix]:
        """Poll for a product another worker claimed; None on timeout.

        Returns as soon as the product loads, or — when the claim
        disappears (writer released) or goes stale (writer died) —
        after one final load attempt.  ``None`` means the caller should
        compose the product itself.
        """
        return self.claim(content_hash, key).wait(
            lambda: self.load(content_hash, key),
            timeout=timeout,
            poll_interval=poll_interval,
        )
