"""Bounded worst-N slow-request log.

Keeps the ``capacity`` slowest end-to-end request records seen so far
(a min-heap keyed on duration: the cheapest entry is evicted when a
slower one arrives), each with its child-span tree — the per-phase
breakdown the serving tier computes anyway (queue wait, batch
assembly, forward).  Surfaced as ``stats()["slow_requests"]``.

Unlike the tracer this is always on: the entries are built from
timings the scheduler already measured, so the per-request cost is one
short leaf-lock hold and, when the heap is full and the request is
fast, a single comparison.
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Dict, List, Tuple

__all__ = ["SlowRequestLog"]


class SlowRequestLog:
    """Min-heap of the worst ``capacity`` requests by ``duration_s``."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._heap: List[Tuple[float, int, Dict[str, Any]]] = []  # guarded-by: _lock
        self._seq = 0  # guarded-by: _lock
        self._offered = 0  # guarded-by: _lock

    def offer(self, duration_s: float, entry: Dict[str, Any]) -> bool:
        """Consider *entry* for the log; return True if it was kept.

        *entry* should be a plain JSON-able dict (e.g. a span dict with
        a ``children`` list); the log stores it as-is.
        """
        with self._lock:
            self._offered += 1
            if len(self._heap) < self.capacity:
                self._seq += 1
                heapq.heappush(self._heap, (duration_s, self._seq, entry))
                return True
            if duration_s <= self._heap[0][0]:
                return False
            self._seq += 1
            heapq.heapreplace(self._heap, (duration_s, self._seq, entry))
            return True

    def snapshot(self) -> List[Dict[str, Any]]:
        """The kept entries, slowest first (copies of the dicts)."""
        with self._lock:
            items = list(self._heap)
        items.sort(key=lambda item: (-item[0], -item[1]))
        return [dict(entry) for _, _, entry in items]

    def offered(self) -> int:
        with self._lock:
            return self._offered

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
            self._offered = 0
