"""Structured span tracing with thread-local context propagation.

The tracer produces :class:`Span` records — name, trace/span/parent
ids, attributes, and a monotonic ``(start_s, duration_s)`` pair — from
three entry points:

* :meth:`SpanTracer.span` — a context manager (usable as a decorator
  via :func:`traced`) that opens a span, pushes it onto the calling
  thread's context stack so nested spans parent correctly, and records
  it on exit.
* :meth:`SpanTracer.record` — retroactive recording for work whose
  start/end were measured elsewhere (e.g. a request whose lifetime
  crosses from the submitting thread into a scheduler thread: the
  scheduler knows ``submitted``/``completed`` only after the fact).
* :func:`parse_traceparent` / :func:`format_traceparent` — the wire
  form (``00-<32 hex trace id>-<16 hex span id>-01``, W3C-style) used
  by the HTTP tier to stitch client and server spans into one trace.

Cross-thread propagation is explicit: capture
:meth:`SpanTracer.current_context` where the work is enqueued, carry
the (immutable) :class:`TraceContext` with the work item, and pass it
as ``parent=`` when the span is finally opened or recorded.  This is
how ``ModelServer`` scheduler threads and process-replica workers join
the submitting request's trace.

Everything is gated on the module-level enable flag
(:meth:`SpanTracer.enabled`, default from the ``REPRO_TRACE``
environment variable so spawned replica processes inherit it).  When
disabled, :meth:`~SpanTracer.span` returns a shared no-op context
manager and :meth:`~SpanTracer.record` returns ``None`` after one
attribute check — the hot paths stay instrumented at effectively zero
cost.

Finished spans land in a bounded ring buffer and export as Chrome
``trace_event`` JSON (:meth:`SpanTracer.export_chrome`) for
``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import re
import threading
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
)

__all__ = [
    "Span",
    "SpanTracer",
    "TraceContext",
    "TRACER",
    "TRACE_ENV_VAR",
    "format_traceparent",
    "parse_traceparent",
    "traced",
    "tracing_enabled",
]

#: Environment variable consulted for the initial enable flag.  Spawned
#: replica processes inherit the environment, so exporting
#: ``REPRO_TRACE=1`` before building a ``ProcessReplicaServer`` turns
#: tracing on inside every worker process too.
TRACE_ENV_VAR = "REPRO_TRACE"

# Trace/span ids need uniqueness within a process tree, not secrecy: a
# random 64-bit process prefix (distinguishes replica processes) plus a
# monotone counter is far cheaper per span than urandom-per-id.
# ``itertools.count.__next__`` is atomic under the GIL.
_PROCESS_PREFIX = int.from_bytes(os.urandom(8), "big")
_IDS = itertools.count(1)


def _new_trace_id() -> str:
    return f"{_PROCESS_PREFIX:016x}{next(_IDS):016x}"


def _new_span_id() -> str:
    return f"{next(_IDS) ^ _PROCESS_PREFIX:016x}"


# Thread-name cache: ``threading.current_thread()`` is a dict lookup plus
# object churn per call, which adds up at several spans per request.
# Plain-dict get/set are atomic under the GIL and thread idents are only
# reused after a thread exits, when its (identical) name no longer
# matters — benign by design, so not ``# guarded-by:`` annotated.
_THREAD_NAMES: Dict[int, str] = {}


def _thread_name(ident: int) -> str:
    name = _THREAD_NAMES.get(ident)
    if name is None:
        name = threading.current_thread().name
        _THREAD_NAMES[ident] = name
    return name


class TraceContext(NamedTuple):
    """Immutable propagation handle: where new child spans attach."""

    trace_id: str
    span_id: str


_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$"
)


def format_traceparent(ctx: TraceContext) -> str:
    """Render *ctx* in the W3C ``traceparent`` wire form."""
    return f"00-{ctx.trace_id}-{ctx.span_id}-01"


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; ``None`` if absent or malformed."""
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    return TraceContext(match.group(1), match.group(2))


class Span:
    """One finished (or in-flight) unit of traced work.

    ``start_s`` is ``time.perf_counter()`` based — monotonic and
    comparable across threads of one process, but *not* across
    processes and not wall-clock.  Chrome trace viewers only care
    about relative offsets, so that is exactly what we store.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "duration_s",
        "attrs",
        "thread_id",
        "thread_name",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start_s: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.duration_s = 0.0
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.thread_id = threading.get_ident()
        self.thread_name = _thread_name(self.thread_id)

    @property
    def context(self) -> TraceContext:
        """The propagation handle for parenting children to this span."""
        return TraceContext(self.trace_id, self.span_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "thread_name": self.thread_name,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, trace={self.trace_id[-8:]}, "
            f"dur={self.duration_s * 1e3:.3f}ms)"
        )


class _NoopSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager returned by :meth:`SpanTracer.span` when enabled."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self.span)


class SpanTracer:
    """Process-wide span collector with a bounded finished-span buffer.

    The per-thread context stack lives in a ``threading.local`` and is
    therefore lock-free; only the finished-span ring buffer is shared,
    and it is the sole state behind ``_lock`` (a strict leaf lock: no
    callback, IO, or foreign method is ever invoked while holding it).

    ``enabled`` is a plain attribute read without the lock on hot
    paths; a boolean flip is atomic under the GIL and a momentarily
    stale read merely traces (or skips) one extra span — benign by
    design, so it is deliberately not ``# guarded-by:`` annotated.
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = os.environ.get(TRACE_ENV_VAR, "") not in ("", "0")
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._finished: "deque[Span]" = deque(maxlen=capacity)  # guarded-by: _lock
        self._dropped = 0  # guarded-by: _lock

    # -- enable flag ---------------------------------------------------

    def enable(self) -> None:
        """Turn span collection on (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn span collection off; already-open spans still record."""
        self.enabled = False

    # -- thread-local context stack ------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_context(self) -> Optional[TraceContext]:
        """Propagation handle of the calling thread's innermost span."""
        stack = getattr(self._tls, "stack", None)
        if not stack:
            return None
        return stack[-1].context

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.duration_s = time.perf_counter() - span.start_s
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # unbalanced exit (generator abandoned mid-span): best effort
            try:
                stack.remove(span)
            except ValueError:
                pass
        self._store(span)

    # -- span creation -------------------------------------------------

    def span(
        self,
        name: str,
        parent: Optional[TraceContext] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Open a span as a context manager.

        ``parent`` overrides the thread-local parent — pass a
        :class:`TraceContext` carried across a thread or process hop to
        join that trace.  When tracing is disabled this returns a
        shared no-op context manager after a single attribute check.
        """
        if not self.enabled:
            return _NOOP_SPAN
        if parent is None:
            parent = self.current_context()
        if parent is None:
            trace_id, parent_id = _new_trace_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(
            name,
            trace_id=trace_id,
            span_id=_new_span_id(),
            parent_id=parent_id,
            start_s=time.perf_counter(),
            attrs=attrs,
        )
        return _ActiveSpan(self, span)

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: Optional[TraceContext] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Retroactively record a span whose bounds were measured elsewhere.

        Does *not* touch the thread-local stack — the work may have run
        on a different thread entirely.  Returns the recorded
        :class:`Span` (so callers can parent children to
        ``span.context``), or ``None`` when tracing is disabled.
        """
        if not self.enabled:
            return None
        if parent is None:
            trace_id, parent_id = _new_trace_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(
            name,
            trace_id=trace_id,
            span_id=_new_span_id(),
            parent_id=parent_id,
            start_s=start_s,
            attrs=attrs,
        )
        span.duration_s = max(0.0, end_s - start_s)
        self._store(span)
        return span

    def _store(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) == self.capacity:
                self._dropped += 1
            self._finished.append(span)

    # -- inspection & export -------------------------------------------

    def finished(self) -> List[Span]:
        """Snapshot of the finished-span ring buffer (oldest first)."""
        with self._lock:
            return list(self._finished)

    def spans_for_trace(self, trace_id: str) -> List[Span]:
        return [s for s in self.finished() if s.trace_id == trace_id]

    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._dropped = 0

    def export_chrome(self, path: Optional[str] = None) -> List[Dict[str, Any]]:
        """Render finished spans as Chrome ``trace_event`` objects.

        Complete (``"ph": "X"``) events with microsecond timestamps,
        loadable by ``chrome://tracing`` and Perfetto.  The snapshot is
        copied under the lock; JSON serialization and the optional file
        write happen outside it.
        """
        spans = self.finished()
        events: List[Dict[str, Any]] = []
        pid = os.getpid()
        for span in spans:
            args: Dict[str, Any] = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
            }
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.attrs)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start_s * 1e6,
                    "dur": span.duration_s * 1e6,
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(events, handle, indent=1, default=str)
        return events


def build_span_tree(
    root: Span, candidates: Sequence[Span]
) -> Dict[str, Any]:
    """Assemble *root* plus its (transitive) children into a nested dict.

    ``candidates`` is any superset of the potential descendants, e.g.
    ``tracer.spans_for_trace(root.trace_id)``.
    """
    by_parent: Dict[str, List[Span]] = {}
    for span in candidates:
        if span.parent_id is not None and span.span_id != root.span_id:
            by_parent.setdefault(span.parent_id, []).append(span)

    def expand(span: Span) -> Dict[str, Any]:
        node = span.to_dict()
        children = sorted(
            by_parent.get(span.span_id, ()), key=lambda s: s.start_s
        )
        node["children"] = [expand(child) for child in children]
        return node

    return expand(root)


#: The process-wide tracer every component publishes into.
TRACER = SpanTracer()


def tracing_enabled() -> bool:
    """Cheap module-level view of the global enable flag."""
    return TRACER.enabled


def traced(
    name: Optional[str] = None, **attrs: Any
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator form: trace every call of the wrapped function.

    >>> @traced("pipeline.featurize", stage="featurize")
    ... def featurize(...): ...
    """

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not TRACER.enabled:
                return func(*args, **kwargs)
            with TRACER.span(span_name, attrs=attrs or None):
                return func(*args, **kwargs)

        return wrapper

    return decorate
