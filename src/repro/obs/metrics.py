"""Process-wide metrics registry: counters, gauges, histograms, collectors.

Two publishing styles feed one registry (the module-level
:data:`REGISTRY`):

* **Owned instruments** — :meth:`MetricsRegistry.counter`,
  :meth:`~MetricsRegistry.gauge`, :meth:`~MetricsRegistry.histogram`
  get-or-create a named instrument that hot paths update directly
  (``REGISTRY.counter("repro_server_requests_total").inc()``).
  Histograms use fixed log-spaced latency buckets
  (:data:`LATENCY_BUCKETS_S`) so percentile summaries are comparable
  across components.
* **Component collectors** — long-lived components (engine, caches,
  servers, autoscaler) register a bound ``_collect_metrics`` method
  under a component name (:meth:`MetricsRegistry.register`).  The
  registry holds it via :class:`weakref.WeakMethod`, so registration
  never extends a component's lifetime; dead components are pruned on
  the next snapshot.  The components' public ``stats()`` methods are
  thin views over their own registration
  (:meth:`ComponentRegistration.read`), which keeps every key exactly
  as callers knew it while routing all reads through one place.

Naming convention: ``repro_<component>_<metric>``, e.g.
``repro_engine_compose_seconds``.  Collector dict keys are flattened
into that form for export with an ``instance`` label distinguishing
multiple live instances of one component.

Lock discipline: the registry lock is a strict leaf — collectors are
*always* invoked outside it (:meth:`MetricsRegistry.snapshot` copies
the registration list under the lock, then calls each collector
unlocked), because collectors take their component's own lock and the
reverse edge would create a lock-order cycle with any component that
published an owned metric while holding its lock.

Export: :meth:`MetricsRegistry.prometheus_text` renders the whole
registry in the Prometheus text exposition format (version 0.0.4) —
pure stdlib, served by the HTTP tier's ``GET /metrics``.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
import weakref
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "ComponentRegistration",
    "REGISTRY",
]

#: Fixed log-spaced latency buckets (seconds): 100 µs doubling up to
#: ~13 s.  Shared by every latency histogram so distributions from
#: different components land in comparable bins.
LATENCY_BUCKETS_S: Tuple[float, ...] = tuple(
    1e-4 * (2.0 ** i) for i in range(18)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


class Counter:
    """Monotonically increasing count (``inc`` only)."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, resident bytes)."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics."""

    __slots__ = ("name", "help", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> None:
        upper = tuple(sorted(float(b) for b in buckets))
        if not upper:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.buckets = upper
        self._lock = threading.Lock()
        self._counts = [0] * (len(upper) + 1)  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative ``(le, count)`` pairs plus sum/count, one lock hold."""
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total_count = self._count
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative.append((bound, running))
        cumulative.append((math.inf, total_count))
        return {"buckets": cumulative, "sum": total_sum, "count": total_count}


Instrument = Union[Counter, Gauge, Histogram]
CollectorFn = Callable[[], Dict[str, Any]]


class ComponentRegistration:
    """Handle returned by :meth:`MetricsRegistry.register`.

    Components keep it and implement ``stats()`` as
    ``return self._obs.read()`` — the thin-view contract: same dict,
    same keys, now routed through the registry.
    """

    __slots__ = ("component", "instance", "_ref", "__weakref__")

    def __init__(
        self, component: str, instance: int, collector: CollectorFn
    ) -> None:
        self.component = component
        self.instance = instance
        # WeakMethod for bound methods so the registry never pins the
        # component; plain functions/closures are held strongly.
        try:
            self._ref: Callable[[], Optional[CollectorFn]] = weakref.WeakMethod(
                collector  # type: ignore[arg-type]
            )
        except TypeError:
            self._ref = lambda: collector

    def collector(self) -> Optional[CollectorFn]:
        return self._ref()

    def read(self) -> Dict[str, Any]:
        """Invoke the collector (no registry lock involved)."""
        fn = self._ref()
        if fn is None:  # component was garbage collected
            return {}
        return fn()


class MetricsRegistry:
    """Get-or-create instrument store plus weakly-held component collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}  # guarded-by: _lock
        self._components: List[ComponentRegistration] = []  # guarded-by: _lock
        self._instance_counts: Dict[str, int] = {}  # guarded-by: _lock

    # -- owned instruments ---------------------------------------------

    def _get_or_create(
        self, name: str, factory: Callable[[], Instrument], kind: type
    ) -> Instrument:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(  # type: ignore[return-value]
            name, lambda: Counter(name, help), Counter
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(  # type: ignore[return-value]
            name, lambda: Gauge(name, help), Gauge
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            name, lambda: Histogram(name, help, buckets), Histogram
        )

    # -- component collectors ------------------------------------------

    def register(
        self, component: str, collector: CollectorFn
    ) -> ComponentRegistration:
        """Register a component's metric collector under *component*.

        The collector is a zero-arg callable returning the component's
        stats dict (numbers, possibly nested one level).  Bound methods
        are held via ``WeakMethod`` — unregistration is automatic when
        the component dies.
        """
        clean = _SANITIZE_RE.sub("_", component)
        with self._lock:
            instance = self._instance_counts.get(clean, 0)
            self._instance_counts[clean] = instance + 1
            registration = ComponentRegistration(clean, instance, collector)
            self._components.append(registration)
        return registration

    def _live_components(self) -> List[ComponentRegistration]:
        """Prune dead registrations; return the live ones (lock held briefly)."""
        with self._lock:
            live = [r for r in self._components if r.collector() is not None]
            self._components = live
            return list(live)

    # -- snapshots & export --------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """One dict covering every instrument and every live component.

        Collectors run *outside* the registry lock (see module
        docstring); instruments each snapshot under their own leaf
        lock.
        """
        with self._lock:
            instruments = dict(self._instruments)
        metrics: Dict[str, Any] = {}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Histogram):
                metrics[name] = instrument.snapshot()
            else:
                metrics[name] = instrument.value
        components: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for registration in self._live_components():
            stats = registration.read()
            if not stats:
                continue
            components.setdefault(registration.component, {})[
                str(registration.instance)
            ] = stats
        return {"metrics": metrics, "components": components}

    def prometheus_text(self) -> str:
        """Render the registry in Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        snap = self.snapshot()
        with self._lock:
            instruments = dict(self._instruments)
        for name in sorted(snap["metrics"]):
            instrument = instruments.get(name)
            value = snap["metrics"][name]
            if isinstance(instrument, Histogram):
                lines.append(f"# HELP {name} {instrument.help or name}")
                lines.append(f"# TYPE {name} histogram")
                for bound, count in value["buckets"]:
                    le = "+Inf" if math.isinf(bound) else _format_number(bound)
                    lines.append(f'{name}_bucket{{le="{le}"}} {count}')
                lines.append(f"{name}_sum {_format_number(value['sum'])}")
                lines.append(f"{name}_count {value['count']}")
            else:
                kind = "counter" if isinstance(instrument, Counter) else "gauge"
                help_text = getattr(instrument, "help", "") or name
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                lines.append(f"{name} {_format_number(value)}")
        for component in sorted(snap["components"]):
            instances = snap["components"][component]
            for instance in sorted(instances, key=int):
                for key, value in _flatten(instances[instance]):
                    metric = _SANITIZE_RE.sub("_", f"repro_{component}_{key}")
                    lines.append(
                        f'{metric}{{instance="{instance}"}} '
                        f"{_format_number(value)}"
                    )
        return "\n".join(lines) + "\n"


def _format_number(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _flatten(
    stats: Dict[str, Any], prefix: str = ""
) -> Iterable[Tuple[str, float]]:
    """Yield ``(flattened_key, numeric_value)`` leaves of a stats dict.

    Non-numeric leaves (strings, lists such as ``slow_requests``) are
    skipped — they belong to ``stats()`` callers, not the exposition.
    """
    for key in sorted(stats):
        value = stats[key]
        flat = f"{prefix}{key}"
        if isinstance(value, bool):
            yield flat, float(value)
        elif isinstance(value, (int, float)):
            yield flat, value
        elif isinstance(value, dict):
            yield from _flatten(value, prefix=f"{flat}_")


#: The process-wide registry every component publishes into.
REGISTRY = MetricsRegistry()
