"""Unified telemetry: span tracing, metrics registry, slow-request log.

``repro.obs`` is the one place every tier publishes observability data:

* :mod:`repro.obs.trace` — structured spans with thread-local context
  propagation, retroactive recording for cross-thread work, a
  ``traceparent`` wire form for the HTTP tier, and Chrome
  ``trace_event`` export.  Gated on :data:`TRACER` ``.enabled``
  (initial value from the ``REPRO_TRACE`` environment variable).
* :mod:`repro.obs.metrics` — counters/gauges/histograms plus weakly
  registered component collectors, rendered on demand as a consistent
  snapshot or Prometheus text (``GET /metrics``).  Component
  ``stats()`` methods across the repo are thin views over this
  registry.
* :mod:`repro.obs.slowlog` — a bounded worst-N log of end-to-end
  request spans with child trees, under ``stats()["slow_requests"]``.

Metric names follow ``repro_<component>_<metric>``.  All mutable obs
state sits behind leaf locks with ``# guarded-by:`` annotations, so the
static analysis gate and the runtime sanitizer cover this package like
any other tier.
"""

from repro.obs.metrics import (
    REGISTRY,
    ComponentRegistration,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.slowlog import SlowRequestLog
from repro.obs.trace import (
    TRACE_ENV_VAR,
    TRACER,
    Span,
    SpanTracer,
    TraceContext,
    build_span_tree,
    format_traceparent,
    parse_traceparent,
    traced,
    tracing_enabled,
)

__all__ = [
    "REGISTRY",
    "ComponentRegistration",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "SlowRequestLog",
    "TRACE_ENV_VAR",
    "TRACER",
    "Span",
    "SpanTracer",
    "TraceContext",
    "build_span_tree",
    "format_traceparent",
    "parse_traceparent",
    "traced",
    "tracing_enabled",
]
