"""Typed, content-addressed artifacts for the staged pipeline.

Every stage of :class:`repro.api.Pipeline` returns one of the dataclasses
below.  An artifact is (a) a plain in-memory result consumed by the next
stage and (b) a serializable unit with a **stable content key**: the HIN
content hash (:func:`repro.hin.io.hin_content_hash`) combined with a
fingerprint of exactly the config fields that influence the stage (see
:data:`STAGE_FIELDS`).  Same dataset + same relevant config ⇒ same key ⇒
a rerun (or a second process sharing the store directory) loads the
artifact instead of recomputing the stage.

Persistence reuses the repo's one archive idiom (uncompressed ``.npz``
with a JSON ``__header`` — the same layout as
:mod:`repro.core.serialize` and :class:`repro.hin.cache.ProductStore`):
numeric payloads round-trip bit-exactly, headers carry the key and
shape metadata, and a corrupt or stale file reads as a miss.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.config import ConCHConfig
from repro.hin.cache import ARCHIVE_MISS_ERRORS

#: Bumped when any artifact archive layout changes; mismatches are misses.
FORMAT_VERSION = 1

#: The corrupt-archive exception set every loader in this repo treats as
#: a cache miss — one definition, shared with the cache tier
#: (:data:`repro.hin.cache.ARCHIVE_MISS_ERRORS`).
ARCHIVE_ERRORS = ARCHIVE_MISS_ERRORS

#: Config fields that influence each stage's output, cumulatively: a
#: stage's fingerprint covers its own fields plus every upstream stage's
#: (changing ``k`` must invalidate enumeration *and* everything after
#: it).  ``fit`` covers the full config — any hyper-parameter change
#: retrains.
STAGE_FIELDS: Dict[str, Tuple[str, ...]] = {
    "discover": (),
    "compose": ("neighbor_strategy",),
    "enumerate": ("k", "use_contexts", "max_instances", "seed"),
    "featurize": (
        "context_dim",
        "embed_num_walks",
        "embed_walk_length",
        "embed_window",
        "embed_epochs",
    ),
    "fit": ("*",),
}

_STAGE_ORDER = ("discover", "compose", "enumerate", "featurize", "fit")


def config_fingerprint(config: ConCHConfig, stage: str) -> str:
    """Stable hash of the config fields a stage (and its upstream) reads."""
    if stage not in STAGE_FIELDS:
        raise KeyError(f"unknown stage {stage!r}; known: {_STAGE_ORDER}")
    payload = dataclasses.asdict(config)
    fields: List[str] = []
    for name in _STAGE_ORDER:
        fields.extend(STAGE_FIELDS[name])
        if name == stage:
            break
    if "*" in fields:
        # Full config minus the pure performance knobs: cache placement
        # and budget cannot change any output (PR 3's eviction/disk
        # equivalence), so they must not break fit-stage resume.
        selected = {
            name: value
            for name, value in payload.items()
            if name not in ("cache_dir", "cache_memory_budget")
        }
    else:
        selected = {name: payload[name] for name in sorted(set(fields))}
    digest = hashlib.sha256(
        json.dumps(selected, sort_keys=True, default=str).encode()
    )
    return digest.hexdigest()[:16]


def stage_key(
    content_hash: str,
    config: ConCHConfig,
    stage: str,
    extra: str = "",
) -> str:
    """The content key of one stage's artifact.

    ``extra`` folds in non-config inputs (the meta-path plan for stages
    downstream of discovery, the split hash for ``fit``).
    """
    digest = hashlib.sha256(
        f"v{FORMAT_VERSION}|{stage}|{content_hash}|"
        f"{config_fingerprint(config, stage)}|{extra}".encode()
    )
    return digest.hexdigest()[:40]


def split_hash(split) -> str:
    """Content hash of a train/val/test split (keys the fit stage)."""
    digest = hashlib.sha256(b"split-v1")
    for part in (split.train, split.val, split.test):
        arr = np.asarray(part, dtype=np.int64)
        digest.update(struct.pack("<q", arr.size))
        digest.update(arr.tobytes())
    return digest.hexdigest()[:16]


def supervision_hash(dataset) -> str:
    """Content hash of the target features + labels (keys the fit stage).

    :func:`repro.hin.io.hin_content_hash` deliberately hashes structure
    only — commuting products never read features or labels.  Training
    *does* read both, so the fit artifact must additionally key on them:
    perturbing labels on an unchanged graph (the label-noise generators
    do exactly this) must not resurrect a bundle trained on the old
    supervision.
    """
    digest = hashlib.sha256(b"supervision-v1")
    features = np.ascontiguousarray(dataset.features, dtype=np.float64)
    labels = np.ascontiguousarray(dataset.labels, dtype=np.int64)
    digest.update(struct.pack("<qq", *features.shape))
    digest.update(features.tobytes())
    digest.update(struct.pack("<q", labels.size))
    digest.update(labels.tobytes())
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------------- #
# npz plumbing (shared by every artifact)
# ---------------------------------------------------------------------- #


def _pack_csr(arrays: Dict[str, np.ndarray], prefix: str, matrix: sp.spmatrix) -> None:
    matrix = sp.csr_matrix(matrix)
    arrays[f"{prefix}/data"] = matrix.data
    arrays[f"{prefix}/indices"] = matrix.indices
    arrays[f"{prefix}/indptr"] = matrix.indptr
    arrays[f"{prefix}/shape"] = np.asarray(matrix.shape, dtype=np.int64)


def _unpack_csr(archive, prefix: str) -> sp.csr_matrix:
    matrix = sp.csr_matrix(
        (
            archive[f"{prefix}/data"],
            archive[f"{prefix}/indices"],
            archive[f"{prefix}/indptr"],
        ),
        shape=tuple(int(s) for s in archive[f"{prefix}/shape"]),
    )
    matrix.sort_indices()
    return matrix


def _write_archive(path: Path, header: dict, arrays: Dict[str, np.ndarray]) -> None:
    """Atomic uncompressed npz write (same contract as ProductStore)."""
    payload = dict(arrays)
    payload["__header"] = np.array(json.dumps(header))
    tmp_path = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(tmp_path, "wb") as handle:
        np.savez(handle, **payload)
    tmp_path.replace(path)


def _read_header(
    path: Path,
    version_field: str = "format_version",
    expected_version: int = FORMAT_VERSION,
) -> Optional[dict]:
    """JSON header of an artifact/bundle archive; None on any miss.

    Corrupt, truncated, non-zip, or version-mismatched files all read
    as misses — the one contract every store in this repo shares.
    ``version_field``/``expected_version`` let estimator bundles (which
    carry ``bundle_format_version``) share this implementation.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            if "__header" not in archive.files:
                return None
            header = json.loads(str(archive["__header"]))
    except ARCHIVE_ERRORS:
        return None
    if header.get(version_field) != expected_version:
        return None
    return header


# ---------------------------------------------------------------------- #
# The artifacts
# ---------------------------------------------------------------------- #


@dataclass
class MetaPathPlan:
    """``discover`` output: the meta-path set the pipeline will run on."""

    key: str
    node_types: List[Tuple[str, ...]]
    names: List[str]
    #: "dataset" (the bundle's declared meta-paths) or "discovery"
    #: (schema search via repro.hin.discovery).
    source: str = "dataset"

    kind = "discover"

    def metapaths(self):
        from repro.hin.metapath import MetaPath

        return [
            MetaPath(types, name=name)
            for types, name in zip(self.node_types, self.names)
        ]

    def plan_fingerprint(self) -> str:
        """Keys downstream stages: the plan itself is an input to them."""
        joined = ";".join("-".join(types) for types in self.node_types)
        return hashlib.sha256(joined.encode()).hexdigest()[:16]

    def save(self, path: Path) -> None:
        header = {
            "format_version": FORMAT_VERSION,
            "kind": self.kind,
            "key": self.key,
            "node_types": [list(t) for t in self.node_types],
            "names": self.names,
            "source": self.source,
        }
        _write_archive(path, header, {})

    @classmethod
    def load(cls, path: Path) -> Optional["MetaPathPlan"]:
        header = _read_header(path)
        if header is None or header.get("kind") != cls.kind:
            return None
        return cls(
            key=header["key"],
            node_types=[tuple(t) for t in header["node_types"]],
            names=list(header["names"]),
            source=header.get("source", "dataset"),
        )


@dataclass
class ComposeReport:
    """``compose`` output: which commuting products back this plan.

    The matrices themselves live in the :class:`CommutingEngine` (and its
    :class:`~repro.hin.cache.ProductStore` when a store directory is
    configured) — this artifact records the *ledger*: per meta-path, the
    product key, its nnz, and the measured compose cost.  Reloading it on
    a warm store proves the stage can be skipped; the products
    re-materialize lazily from disk on first access.
    """

    key: str
    product_keys: List[Tuple[str, ...]]
    nnz: List[int]
    compose_seconds: List[float]
    composed: int  # multiplications actually run this time (0 = warm)

    kind = "compose"

    def save(self, path: Path) -> None:
        header = {
            "format_version": FORMAT_VERSION,
            "kind": self.kind,
            "key": self.key,
            "product_keys": [list(k) for k in self.product_keys],
            "nnz": [int(n) for n in self.nnz],
            "compose_seconds": [float(s) for s in self.compose_seconds],
            "composed": int(self.composed),
        }
        _write_archive(path, header, {})

    @classmethod
    def load(cls, path: Path) -> Optional["ComposeReport"]:
        header = _read_header(path)
        if header is None or header.get("kind") != cls.kind:
            return None
        return cls(
            key=header["key"],
            product_keys=[tuple(k) for k in header["product_keys"]],
            nnz=list(header["nnz"]),
            compose_seconds=list(header["compose_seconds"]),
            composed=int(header["composed"]),
        )


@dataclass
class ContextSet:
    """``enumerate`` output: retained pairs + flat context batches.

    One entry per meta-path: the neighbor filter's retained ``(u, v)``
    pairs, and — when contexts are enabled — the enumeration kernel's
    flat instance arrays (:class:`repro.hin.context.ContextBatch` fields),
    which round-trip bit-exactly through the archive.
    """

    key: str
    pairs: List[np.ndarray]                    # (m, 2) per meta-path
    instance_ids: List[Optional[np.ndarray]]   # (total, L) or None
    indptr: List[Optional[np.ndarray]]
    total_counts: List[Optional[np.ndarray]]
    truncated: List[Optional[np.ndarray]]

    kind = "enumerate"

    @property
    def num_metapaths(self) -> int:
        return len(self.pairs)

    def batch(self, index: int, metapath) -> Optional["object"]:
        """Rebuild one meta-path's :class:`ContextBatch` (None = nc mode)."""
        from repro.hin.context import ContextBatch

        if self.instance_ids[index] is None:
            return None
        return ContextBatch(
            metapath=metapath,
            pairs=self.pairs[index],
            instance_ids=self.instance_ids[index],
            indptr=self.indptr[index],
            total_counts=self.total_counts[index],
            truncated=self.truncated[index],
        )

    def save(self, path: Path) -> None:
        arrays: Dict[str, np.ndarray] = {}
        has_batch = []
        for i in range(self.num_metapaths):
            arrays[f"mp{i}/pairs"] = self.pairs[i]
            if self.instance_ids[i] is not None:
                arrays[f"mp{i}/instance_ids"] = self.instance_ids[i]
                arrays[f"mp{i}/indptr"] = self.indptr[i]
                arrays[f"mp{i}/total_counts"] = self.total_counts[i]
                arrays[f"mp{i}/truncated"] = self.truncated[i]
                has_batch.append(True)
            else:
                has_batch.append(False)
        header = {
            "format_version": FORMAT_VERSION,
            "kind": self.kind,
            "key": self.key,
            "num_metapaths": self.num_metapaths,
            "has_batch": has_batch,
        }
        _write_archive(path, header, arrays)

    @classmethod
    def load(cls, path: Path) -> Optional["ContextSet"]:
        header = _read_header(path)
        if header is None or header.get("kind") != cls.kind:
            return None
        pairs, ids, indptr, totals, truncated = [], [], [], [], []
        try:
            with np.load(path, allow_pickle=False) as archive:
                for i in range(int(header["num_metapaths"])):
                    pairs.append(archive[f"mp{i}/pairs"])
                    if header["has_batch"][i]:
                        ids.append(archive[f"mp{i}/instance_ids"])
                        indptr.append(archive[f"mp{i}/indptr"])
                        totals.append(archive[f"mp{i}/total_counts"])
                        truncated.append(archive[f"mp{i}/truncated"])
                    else:
                        ids.append(None)
                        indptr.append(None)
                        totals.append(None)
                        truncated.append(None)
        except ARCHIVE_ERRORS:
            # Intact header over corrupt members (bit rot, torn copy):
            # same contract as a corrupt header — read as a miss.
            return None
        return cls(
            key=header["key"],
            pairs=pairs,
            instance_ids=ids,
            indptr=indptr,
            total_counts=totals,
            truncated=truncated,
        )


@dataclass
class FeatureSet:
    """``featurize`` output: everything the trainer consumes.

    Per meta-path: the object×context incidence, the Eq.-3 context
    features, and the filtered neighbor adjacency (the ``ConCH_nc``
    operator).  Object features and labels are *not* stored — they are
    dataset-derived, exactly like :mod:`repro.core.serialize` treats
    model-adjacent data — so :meth:`to_conch_data` takes the dataset and
    reassembles a :class:`~repro.core.trainer.ConCHData` bit-identical
    to an in-memory run.
    """

    key: str
    metapath_node_types: List[Tuple[str, ...]]
    metapath_names: List[str]
    incidence: List[sp.csr_matrix]
    context_features: List[np.ndarray]
    neighbor_adj: List[sp.csr_matrix]
    truncated_contexts: List[int]
    substrate_stats: Dict[str, int] = field(default_factory=dict)

    kind = "featurize"

    def to_conch_data(self, dataset, preprocess_seconds: float = 0.0):
        from repro.core.trainer import ConCHData, MetaPathData
        from repro.hin.metapath import MetaPath

        metapath_data = [
            MetaPathData(
                metapath=MetaPath(types, name=name),
                incidence=self.incidence[i],
                context_features=self.context_features[i],
                neighbor_adj=self.neighbor_adj[i],
                truncated_contexts=self.truncated_contexts[i],
            )
            for i, (types, name) in enumerate(
                zip(self.metapath_node_types, self.metapath_names)
            )
        ]
        return ConCHData(
            name=dataset.name,
            features=dataset.features,
            labels=dataset.labels,
            num_classes=dataset.num_classes,
            metapath_data=metapath_data,
            preprocess_seconds=preprocess_seconds,
            substrate_stats=dict(self.substrate_stats),
        )

    @classmethod
    def from_conch_data(cls, key: str, data) -> "FeatureSet":
        return cls(
            key=key,
            metapath_node_types=[
                tuple(m.metapath.node_types) for m in data.metapath_data
            ],
            metapath_names=[m.metapath.name for m in data.metapath_data],
            incidence=[m.incidence for m in data.metapath_data],
            context_features=[m.context_features for m in data.metapath_data],
            neighbor_adj=[m.neighbor_adj for m in data.metapath_data],
            truncated_contexts=[m.truncated_contexts for m in data.metapath_data],
            substrate_stats=dict(data.substrate_stats),
        )

    def save(self, path: Path) -> None:
        arrays: Dict[str, np.ndarray] = {}
        for i in range(len(self.metapath_names)):
            _pack_csr(arrays, f"mp{i}/incidence", self.incidence[i])
            _pack_csr(arrays, f"mp{i}/neighbor_adj", self.neighbor_adj[i])
            arrays[f"mp{i}/context_features"] = self.context_features[i]
        header = {
            "format_version": FORMAT_VERSION,
            "kind": self.kind,
            "key": self.key,
            "metapath_node_types": [list(t) for t in self.metapath_node_types],
            "metapath_names": self.metapath_names,
            "truncated_contexts": [int(t) for t in self.truncated_contexts],
            "substrate_stats": {
                k: int(v) for k, v in self.substrate_stats.items()
            },
        }
        _write_archive(path, header, arrays)

    @classmethod
    def load(cls, path: Path) -> Optional["FeatureSet"]:
        header = _read_header(path)
        if header is None or header.get("kind") != cls.kind:
            return None
        incidence, context_features, neighbor_adj = [], [], []
        try:
            with np.load(path, allow_pickle=False) as archive:
                for i in range(len(header["metapath_names"])):
                    incidence.append(_unpack_csr(archive, f"mp{i}/incidence"))
                    neighbor_adj.append(
                        _unpack_csr(archive, f"mp{i}/neighbor_adj")
                    )
                    context_features.append(archive[f"mp{i}/context_features"])
        except ARCHIVE_ERRORS:
            return None
        return cls(
            key=header["key"],
            metapath_node_types=[
                tuple(t) for t in header["metapath_node_types"]
            ],
            metapath_names=list(header["metapath_names"]),
            incidence=incidence,
            context_features=context_features,
            neighbor_adj=neighbor_adj,
            truncated_contexts=list(header["truncated_contexts"]),
            substrate_stats=dict(header.get("substrate_stats", {})),
        )


#: kind string → artifact class, for the store's generic loader.
ARTIFACT_KINDS = {
    cls.kind: cls for cls in (MetaPathPlan, ComposeReport, ContextSet, FeatureSet)
}


class ArtifactStore:
    """Directory of content-addressed stage artifacts.

    Files are ``<kind>-<key>.npz``; a missing, corrupt, or key-mismatched
    file reads as a miss (the pipeline recomputes and rewrites — the
    exact contract :class:`~repro.hin.cache.ProductStore` uses for
    products).

    Stage-level claim dedupe
    ------------------------
    Writes are atomic and last-writer-wins, so concurrent pipelines can
    never corrupt the store — but two cold workers would both *pay* an
    expensive stage (featurize trains metapath2vec) before one's
    write-through landed.  :meth:`claim` extends the product store's
    claim protocol (:class:`repro.hin.cache.ClaimFile` — ``O_CREAT |
    O_EXCL`` sidecar + TTL lease) to whole stage artifacts: exactly one
    worker per cluster computes a given ``(kind, key)``, the rest
    :meth:`wait_for` its artifact and load it.  Claims are best-effort
    leases — a crashed writer's claim goes stale after ``claim_ttl``
    seconds and the next waiter computes itself, so dedupe can never
    deadlock or lose a stage.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        claim_ttl: Optional[float] = None,
    ):
        from repro.hin.cache import ClaimFile

        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.claim_ttl = (
            ClaimFile.DEFAULT_TTL if claim_ttl is None else float(claim_ttl)
        )

    def path_for(self, kind: str, key: str) -> Path:
        return self.directory / f"{kind}-{key}.npz"

    def get(self, kind: str, key: str):
        """The stored artifact for ``(kind, key)``, or None."""
        cls = ARTIFACT_KINDS[kind]
        path = self.path_for(kind, key)
        if not path.exists():
            return None
        artifact = cls.load(path)
        if artifact is None or artifact.key != key:
            return None
        return artifact

    def put(self, artifact) -> Path:
        """Persist an artifact under its content key; returns the path."""
        path = self.path_for(artifact.kind, artifact.key)
        artifact.save(path)
        return path

    def claim(self, kind: str, key: str):
        """The :class:`~repro.hin.cache.ClaimFile` guarding one artifact.

        ``claim(...)`` works for fit bundles too (any ``kind`` string) —
        the claim file sits next to where :meth:`path_for` would write.
        """
        from repro.hin.cache import ClaimFile

        path = self.path_for(kind, key)
        return ClaimFile(path.with_name(path.name + ".claim"), self.claim_ttl)

    def wait_for(
        self,
        kind: str,
        key: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.05,
    ):
        """Poll for an artifact another worker claimed; None on timeout.

        ``None`` means the caller should compute the stage itself (the
        writer died or never wrote) — mirroring
        :meth:`repro.hin.cache.ProductStore.wait_for`.
        """
        return self.claim(kind, key).wait(
            lambda: self.get(kind, key),
            timeout=timeout,
            poll_interval=poll_interval,
        )
