"""One estimator contract for ConCH and the whole baseline zoo.

The repo grew seventeen ad-hoc constructors — ``ConCHTrainer``,
``SemiSupervisedTrainer`` closures, embedding+logreg factories — all
answering the same three questions (train on a split, predict labels,
score an index set) with different call shapes.  This module defines the
single :class:`Estimator` protocol they now share:

``fit(split)`` / ``predict(indices)`` / ``predict_proba(indices)`` /
``embeddings()`` / ``evaluate(indices)`` / ``save(path)`` + a
module-level :func:`load_estimator`.

Two implementations cover everything:

:class:`ConCHEstimator`
    Wraps :class:`~repro.core.trainer.ConCHTrainer` over prepared
    :class:`~repro.core.trainer.ConCHData`.  ``save`` writes a
    *self-contained serving bundle* (model weights + operators + context
    features + object features/labels), so ``load`` — and the
    :class:`repro.api.serving.ModelHandle` built on it — answers
    queries without re-running any preprocessing.

:class:`MethodEstimator`
    Adapts any registered harness method
    (:mod:`repro.baselines.registry`) by running it once with an
    all-nodes query set, then serving ``predict`` / ``predict_proba``
    from the cached full prediction vector.  ``predict_proba`` serves
    the method's own class scores when it surfaces them
    (``MethodOutput.test_scores`` — propagation mass, logits — see
    :func:`repro.eval.harness.scores_to_proba`), degrading to the
    one-hot distribution only for label-only methods; ``save``
    snapshots predictions + probabilities (the adapter's whole state),
    which is exactly what a serving replica of a frozen baseline needs.

:func:`fit` is the one-call surface: ``fit("dblp", model="han")`` runs
any model — ConCH or baseline — through the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Protocol, Union, runtime_checkable

import numpy as np

from repro.core.config import ConCHConfig
from repro.data.base import HINDataset
from repro.data.splits import Split, stratified_split
from repro.eval.metrics import macro_f1, micro_f1

#: Fit-stage / bundle archive format; mismatches fail loudly.
BUNDLE_FORMAT_VERSION = 1


@runtime_checkable
class Estimator(Protocol):
    """What every trainable model in this repo can do."""

    def fit(self, split: Split) -> "Estimator":
        """Train on a split; returns self."""

    def predict(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Predicted labels for ``indices`` (default: all target nodes)."""

    def predict_proba(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-class probabilities ``(n, r)`` for ``indices``."""

    def embeddings(self) -> Optional[np.ndarray]:
        """Learned node embeddings, or None for methods without any."""

    def evaluate(self, indices: np.ndarray) -> Dict[str, float]:
        """Micro/Macro-F1 on an index set."""

    def save(self, path: Union[str, Path]) -> None:
        """Persist enough state to reload and serve predictions."""


def _evaluate(labels, num_classes, predict, indices) -> Dict[str, float]:
    indices = np.asarray(indices)
    predictions = predict(indices)
    truth = labels[indices]
    return {
        "micro_f1": micro_f1(truth, predictions),
        "macro_f1": macro_f1(truth, predictions, num_classes),
    }


class ConCHEstimator:
    """The :class:`Estimator` face of ConCH over prepared data."""

    def __init__(self, data, config: ConCHConfig):
        from repro.core.trainer import ConCHTrainer

        self.data = data
        self.config = config
        self.trainer = ConCHTrainer(data, config)
        self.fitted = False

    # ------------------------------------------------------------- #
    # Protocol surface
    # ------------------------------------------------------------- #

    def fit(self, split: Split, verbose: bool = False) -> "ConCHEstimator":
        self.trainer.fit(split, verbose=verbose)
        self.fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("estimator is not fitted; call fit(split) first")

    def predict(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        self._require_fitted()
        return self.trainer.predict(indices)

    def predict_proba(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        self._require_fitted()
        return self.trainer.predict_proba(indices)

    def embeddings(self) -> Optional[np.ndarray]:
        self._require_fitted()
        return self.trainer.embeddings()

    def evaluate(self, indices: np.ndarray) -> Dict[str, float]:
        self._require_fitted()
        return self.trainer.evaluate(indices)

    # ------------------------------------------------------------- #
    # Persistence: the self-contained serving bundle
    # ------------------------------------------------------------- #

    def save(self, path: Union[str, Path]) -> None:
        """Write a serving bundle: model + operators + features + labels."""
        self._require_fitted()
        from repro.api.artifacts import _pack_csr, _write_archive
        from repro.core.serialize import model_header, model_param_arrays

        data = self.data
        arrays = model_param_arrays(self.trainer.model)
        arrays["features"] = data.features
        arrays["labels"] = data.labels
        for i, m in enumerate(data.metapath_data):
            _pack_csr(arrays, f"mp{i}/incidence", m.incidence)
            _pack_csr(arrays, f"mp{i}/neighbor_adj", m.neighbor_adj)
            arrays[f"mp{i}/context_features"] = m.context_features
        header = {
            "bundle_format_version": BUNDLE_FORMAT_VERSION,
            "kind": "conch-estimator",
            "name": data.name,
            "num_classes": int(data.num_classes),
            "metapath_node_types": [
                list(m.metapath.node_types) for m in data.metapath_data
            ],
            "metapath_names": [
                m.metapath.name for m in data.metapath_data
            ],
            "truncated_contexts": [
                int(m.truncated_contexts) for m in data.metapath_data
            ],
            "model": model_header(self.trainer.model),
        }
        _write_archive(Path(path), header, arrays)

    @classmethod
    def load(cls, path: Union[str, Path]) -> Optional["ConCHEstimator"]:
        """Reload a bundle; None when the file is not a valid bundle."""
        from repro.api.artifacts import _unpack_csr
        from repro.core.serialize import model_from_archive
        from repro.core.trainer import ConCHData, MetaPathData
        from repro.hin.metapath import MetaPath

        path = Path(path)
        header = _read_bundle_header(path)
        if header is None or header.get("kind") != "conch-estimator":
            return None
        from repro.api.artifacts import ARCHIVE_ERRORS

        try:
            with np.load(path, allow_pickle=False) as archive:
                model = model_from_archive(header["model"], archive)
                metapath_data = []
                for i, (types, name) in enumerate(
                    zip(header["metapath_node_types"], header["metapath_names"])
                ):
                    metapath_data.append(
                        MetaPathData(
                            metapath=MetaPath(types, name=name),
                            incidence=_unpack_csr(archive, f"mp{i}/incidence"),
                            context_features=archive[f"mp{i}/context_features"],
                            neighbor_adj=_unpack_csr(
                                archive, f"mp{i}/neighbor_adj"
                            ),
                            truncated_contexts=int(
                                header["truncated_contexts"][i]
                            ),
                        )
                    )
                data = ConCHData(
                    name=header["name"],
                    features=archive["features"],
                    labels=archive["labels"],
                    num_classes=int(header["num_classes"]),
                    metapath_data=metapath_data,
                )
        except ARCHIVE_ERRORS:
            # Intact header over corrupt members: read as a miss so the
            # pipeline retrains instead of crashing.
            return None
        config = ConCHConfig(**header["model"]["config"])
        estimator = cls(data, config)
        estimator.trainer.model = model  # trained weights over fresh operators
        estimator.fitted = True
        return estimator


def _read_bundle_header(path: Path) -> Optional[dict]:
    from repro.api.artifacts import _read_header

    return _read_header(
        path,
        version_field="bundle_format_version",
        expected_version=BUNDLE_FORMAT_VERSION,
    )


@dataclass
class _AllNodesQuery:
    """A split whose ``test`` field queries every target node.

    Harness methods read ``split.train`` / ``split.val`` for optimization
    and return predictions for ``split.test``; widening ``test`` to all
    nodes turns any of them into a full predictor.  (A real
    :class:`Split` forbids overlap between the parts, hence this shim.)
    """

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray


class _PredictionServing:
    """Serve-side half of the contract over a cached full prediction
    vector: shared by the live :class:`MethodEstimator` and its reloaded
    :class:`_FrozenPredictions` snapshot, so the slicing and snapshot
    format live in exactly one place.

    Subclasses set ``_predictions``/``_proba`` and implement
    ``_require_fitted`` and ``_snapshot_fields() -> (name, dataset_name,
    num_classes, seed, labels)``.
    """

    _predictions: Optional[np.ndarray]
    _proba: Optional[np.ndarray]

    def predict(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        self._require_fitted()
        if indices is None:
            return self._predictions.copy()
        return self._predictions[np.asarray(indices)]

    def predict_proba(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Class probabilities: the method's own scores when it produced
        them, else the one-hot degenerate distribution."""
        self._require_fitted()
        if indices is None:
            return self._proba.copy()
        return self._proba[np.asarray(indices)]

    def embeddings(self) -> Optional[np.ndarray]:
        """Prediction snapshots do not expose intermediate embeddings."""
        return None

    def save(self, path: Union[str, Path]) -> None:
        """Snapshot the full prediction vector (the adapter's state)."""
        self._require_fitted()
        from repro.api.artifacts import _write_archive

        name, dataset_name, num_classes, seed, labels = self._snapshot_fields()
        header = {
            "bundle_format_version": BUNDLE_FORMAT_VERSION,
            "kind": "method-estimator",
            "name": name,
            "dataset": dataset_name,
            "num_classes": num_classes,
            "seed": seed,
        }
        _write_archive(
            Path(path),
            header,
            {
                "predictions": self._predictions,
                "proba": self._proba,
                "labels": labels,
            },
        )


class MethodEstimator(_PredictionServing):
    """Adapt a registered harness method to the :class:`Estimator` contract."""

    def __init__(
        self,
        method: Union[str, object],
        dataset: HINDataset,
        seed: int = 0,
        **method_kwargs,
    ):
        if isinstance(method, str):
            from repro.baselines.registry import make_method

            self.name = method
            self._method = make_method(method, **method_kwargs)
        else:
            self.name = getattr(method, "__name__", "method")
            self._method = method
        self.dataset = dataset
        self.seed = seed
        self._predictions: Optional[np.ndarray] = None
        self._proba: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        return self._predictions is not None

    def fit(self, split: Split) -> "MethodEstimator":
        query = _AllNodesQuery(
            train=np.asarray(split.train),
            val=np.asarray(split.val),
            test=np.arange(self.dataset.num_targets, dtype=np.int64),
        )
        output = self._method(self.dataset, query, self.seed)
        predictions = np.asarray(output.test_predictions)
        if predictions.shape[0] != self.dataset.num_targets:
            raise ValueError(
                f"method {self.name!r} returned {predictions.shape[0]} "
                f"predictions for {self.dataset.num_targets} nodes"
            )
        num_classes = self.dataset.num_classes
        if predictions.size and (
            predictions.min() < 0 or predictions.max() >= num_classes
        ):
            # A sentinel like -1 would silently wrap into the last class
            # column of the one-hot scatter below — fail loudly instead.
            raise ValueError(
                f"method {self.name!r} returned class ids outside "
                f"[0, {num_classes}): "
                f"[{predictions.min()}, {predictions.max()}]"
            )
        self._predictions = predictions.astype(np.int64)
        scores = getattr(output, "test_scores", None)
        if scores is not None:
            # Probability-aware path: the method surfaced real class
            # scores (propagation mass, logits, calibrated proba) — use
            # them instead of degenerating to one-hot.
            from repro.eval.harness import scores_to_proba

            scores = np.asarray(scores, dtype=np.float64)
            if scores.shape != (predictions.shape[0], num_classes):
                raise ValueError(
                    f"method {self.name!r} returned scores of shape "
                    f"{scores.shape}; expected "
                    f"{(predictions.shape[0], num_classes)}"
                )
            self._proba = scores_to_proba(scores)
        else:
            proba = np.zeros(
                (predictions.shape[0], num_classes), dtype=np.float64
            )
            proba[np.arange(predictions.shape[0]), self._predictions] = 1.0
            self._proba = proba
        return self

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("estimator is not fitted; call fit(split) first")

    # predict/predict_proba/embeddings/save come from _PredictionServing.

    def _snapshot_fields(self):
        return (
            self.name,
            self.dataset.name,
            int(self.dataset.num_classes),
            int(self.seed),
            np.asarray(self.dataset.labels),
        )

    def evaluate(self, indices: np.ndarray) -> Dict[str, float]:
        self._require_fitted()
        return _evaluate(
            self.dataset.labels, self.dataset.num_classes, self.predict, indices
        )

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        dataset: Optional[HINDataset] = None,
    ) -> Optional["_FrozenPredictions"]:
        """Reload a snapshot as a frozen (already-fitted) estimator.

        ``dataset``, when given, is checked against the snapshot's
        recorded dataset name — a mismatched snapshot raises rather
        than silently scoring against the archived labels.
        """
        path = Path(path)
        header = _read_bundle_header(path)
        if header is None or header.get("kind") != "method-estimator":
            return None
        if dataset is not None and header.get("dataset") != dataset.name:
            raise ValueError(
                f"snapshot {path} was taken on dataset "
                f"{header.get('dataset')!r}, not {dataset.name!r}"
            )
        from repro.api.artifacts import ARCHIVE_ERRORS

        try:
            with np.load(path, allow_pickle=False) as archive:
                predictions = archive["predictions"]
                proba = archive["proba"]
                labels = archive["labels"]
        except ARCHIVE_ERRORS:
            return None
        return _FrozenPredictions(
            name=header["name"],
            dataset_name=header["dataset"],
            num_classes=int(header["num_classes"]),
            predictions=predictions,
            proba=proba,
            labels=labels,
        )


class _FrozenPredictions(_PredictionServing):
    """A reloaded :class:`MethodEstimator` snapshot: serve-only."""

    def __init__(self, name, dataset_name, num_classes, predictions, proba, labels):
        self.name = name
        self.dataset_name = dataset_name
        self.num_classes = num_classes
        self._predictions = predictions
        self._proba = proba
        self._labels = labels
        self.fitted = True

    def fit(self, split: Split) -> "_FrozenPredictions":
        raise RuntimeError(
            "a reloaded method snapshot is frozen; re-create the "
            "MethodEstimator to retrain"
        )

    def _require_fitted(self) -> None:
        pass  # a snapshot is fitted by construction

    def _snapshot_fields(self):
        return (
            self.name, self.dataset_name, int(self.num_classes), 0,
            self._labels,
        )

    def evaluate(self, indices: np.ndarray) -> Dict[str, float]:
        return _evaluate(self._labels, self.num_classes, self.predict, indices)


def load_estimator(path: Union[str, Path]):
    """Reload any saved estimator bundle (ConCH or method snapshot)."""
    path = Path(path)
    header = _read_bundle_header(path)
    if header is None:
        raise ValueError(f"{path} is not an estimator bundle")
    if header["kind"] == "conch-estimator":
        estimator = ConCHEstimator.load(path)
    else:
        estimator = MethodEstimator.load(path)
    if estimator is None:
        raise ValueError(f"{path} failed to load as {header['kind']}")
    return estimator


def fit(
    dataset: Union[str, HINDataset],
    model: str = "conch",
    split: Optional[Split] = None,
    train_fraction: float = 0.1,
    val_fraction: float = 0.1,
    seed: Optional[int] = None,
    config: Optional[ConCHConfig] = None,
    store_dir: Optional[Union[str, Path]] = None,
    **model_kwargs,
):
    """Train any model — ConCH or baseline — through one code path.

    Parameters
    ----------
    dataset:
        Registered dataset name (loaded with paper defaults) or an
        :class:`HINDataset`.
    model:
        ``"conch"`` (or an ablation variant like ``"conch_nc"``) routes
        through the staged :class:`~repro.api.pipeline.Pipeline`; any
        name in :data:`repro.baselines.registry.BASELINES` (e.g.
        ``"HAN"``, case-insensitive) routes through
        :class:`MethodEstimator`.  Everything answers the same
        :class:`Estimator` contract afterwards.
    split:
        Explicit split; default is a stratified split at
        ``train_fraction``.
    seed:
        Run seed.  ``None`` (the default) keeps the config's own seed;
        an explicit value overrides it.
    config:
        ConCH hyper-parameters (ConCH models only); defaults to the
        dataset's paper values.
    store_dir:
        Optional pipeline store — reruns skip completed stages.
    model_kwargs:
        Extra keyword arguments for baseline method factories.

    Returns
    -------
    A fitted :class:`Estimator`.
    """
    from repro.api.pipeline import Pipeline, _resolve_dataset

    resolved_seed = seed if seed is not None else (
        config.seed if config is not None else 0
    )
    dataset = _resolve_dataset(dataset, resolved_seed)
    if split is None:
        split = stratified_split(
            dataset.labels, train_fraction, val_fraction=val_fraction,
            seed=resolved_seed,
        )
    lowered = model.lower()
    if lowered == "conch" or lowered.startswith("conch_"):
        if config is None:
            from repro.api.pipeline import default_config

            config = default_config(dataset)
        if lowered.startswith("conch_"):
            from repro.core.variants import variant_config

            config = variant_config(lowered[len("conch_"):], config)
        if seed is not None:
            config = config.with_overrides(seed=seed)
        pipeline = Pipeline(dataset, config=config, store_dir=store_dir)
        return pipeline.fit(split=split)
    from repro.baselines.registry import BASELINES

    canonical = {name.lower(): name for name in BASELINES}
    if lowered not in canonical:
        raise KeyError(
            f"unknown model {model!r}; known: ['conch', 'conch_<variant>'] "
            f"+ {sorted(BASELINES)}"
        )
    estimator = MethodEstimator(
        canonical[lowered], dataset, seed=resolved_seed, **model_kwargs
    )
    return estimator.fit(split)
