"""Per-node serving over a trained ConCH bundle — no full-graph re-prep.

:class:`ModelHandle` answers label/probability queries for *individual
nodes* the way a serving replica would: it loads a self-contained
estimator bundle once (model weights + the cached operators the pipeline
built), and each ``predict_nodes(ids)`` call touches only the **rows**
of those cached matrices that the queried nodes' receptive fields need —
the first cut of the ROADMAP's minibatch-aware row-sliced caching
direction.

How the slice stays exact
-------------------------
One ConCH layer is two hops in the object/context bipartite graph
(context ← its 2 endpoint objects, object ← its incident contexts), so
an ``L``-layer model's output at a node depends on the ``2L``-hop ball
around it.  ``predict_nodes`` grows that ball by ``L`` rounds of
row-sliced sparse lookups — contexts incident to the frontier
(``B[rows]``), then their endpoint objects (``Bᵀ[cols]``) — across *all*
meta-path towers at once, then runs the ordinary forward on the induced
sub-operators.  Nodes on the ball's boundary see truncated neighborhoods,
but their (possibly wrong) deep-layer values cannot propagate back to
the queried ids within ``L`` layers, so the returned predictions are
**bit-identical** to a full-graph forward — the conformance tests assert
exactly that.

On the synthetic DBLP fixture a single-node query touches a few percent
of the graph instead of all of it; the win grows with graph size and
shrinks with ``L`` and density, exactly like minibatch GNN sampling.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor, no_grad


class ModelHandle:
    """A loaded, query-ready ConCH model (see module docstring).

    Build one with :meth:`load` (from a bundle path) or
    :meth:`from_estimator` (from a fitted
    :class:`~repro.api.estimator.ConCHEstimator`).
    """

    def __init__(self, data, config, model):
        self.data = data
        self.config = config
        self.model = model
        self.model.eval()
        self.use_contexts = bool(config.use_contexts)
        self.num_objects = data.features.shape[0]
        # Row-sliceable cached operators.  Incidence transposes are
        # precomputed once: they answer "which objects touch these
        # contexts" by row slicing too.
        self._operators: List[sp.csr_matrix] = []
        self._transposed: List[Optional[sp.csr_matrix]] = []
        self._context_features: List[Optional[np.ndarray]] = []
        for m in data.metapath_data:
            if self.use_contexts:
                operator = sp.csr_matrix(m.incidence)
                self._transposed.append(sp.csr_matrix(operator.T))
                self._context_features.append(m.context_features)
            else:
                operator = sp.csr_matrix(m.neighbor_adj)
                self._transposed.append(None)
                self._context_features.append(None)
            self._operators.append(operator)
        #: Telemetry of the most recent query: sizes of the induced
        #: subgraph vs. the full graph.
        self.last_query_stats: Dict[str, object] = {}

    # ------------------------------------------------------------- #
    # Constructors
    # ------------------------------------------------------------- #

    @classmethod
    def from_estimator(cls, estimator) -> "ModelHandle":
        """Wrap a fitted ConCH estimator without touching disk."""
        estimator._require_fitted()
        return cls(estimator.data, estimator.config, estimator.trainer.model)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ModelHandle":
        """Open a serving handle over a saved estimator bundle."""
        from repro.api.estimator import ConCHEstimator

        estimator = ConCHEstimator.load(path)
        if estimator is None:
            raise ValueError(f"{path} is not a ConCH estimator bundle")
        return cls.from_estimator(estimator)

    # ------------------------------------------------------------- #
    # Receptive-field gathering (row slices only)
    # ------------------------------------------------------------- #

    def _rows_union(self, matrix: sp.csr_matrix, rows: np.ndarray) -> np.ndarray:
        """Unique column ids touched by a set of rows (pure row slice)."""
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = matrix.indptr[rows]
        stops = matrix.indptr[rows + 1]
        chunks = [
            matrix.indices[a:b] for a, b in zip(starts, stops) if b > a
        ]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks)).astype(np.int64)

    def _gather(self, ids: np.ndarray):
        """The ``2L``-hop ball of ``ids`` across every meta-path tower."""
        num_layers = self.config.num_layers
        objects = np.unique(ids)
        contexts: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in self._operators
        ]
        for _ in range(num_layers):
            frontier = [objects]
            for index, operator in enumerate(self._operators):
                if self.use_contexts:
                    ctx = self._rows_union(operator, objects)
                    contexts[index] = ctx
                    frontier.append(
                        self._rows_union(self._transposed[index], ctx)
                    )
                else:
                    frontier.append(self._rows_union(operator, objects))
            objects = np.unique(np.concatenate(frontier))
        return objects, contexts

    # ------------------------------------------------------------- #
    # Queries
    # ------------------------------------------------------------- #

    def _sliced_forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64).ravel()
        if ids.size == 0:
            return np.empty((0, self.data.num_classes), dtype=np.float64)
        if ids.min() < 0 or ids.max() >= self.num_objects:
            raise IndexError(
                f"node ids out of range [0, {self.num_objects})"
            )
        objects, contexts = self._gather(ids)
        operators = []
        context_tensors = []
        for index, operator in enumerate(self._operators):
            if self.use_contexts:
                ctx = contexts[index]
                operators.append(operator[objects][:, ctx])
                context_tensors.append(
                    Tensor(self._context_features[index][ctx])
                )
            else:
                operators.append(operator[objects][:, objects])
                context_tensors.append(None)
        self.last_query_stats = {
            "query_nodes": int(ids.size),
            "subgraph_objects": int(objects.size),
            "subgraph_contexts": [int(c.size) for c in contexts],
            "total_objects": int(self.num_objects),
            "object_fraction": float(objects.size) / max(self.num_objects, 1),
        }
        features = Tensor(self.data.features[objects])
        self.model.eval()
        with no_grad():
            logits, _ = self.model(features, operators, context_tensors)
        positions = np.searchsorted(objects, ids)
        return logits.data[positions]

    def predict_nodes(self, ids) -> np.ndarray:
        """Predicted labels for the queried node ids (input order kept)."""
        return self._sliced_forward(ids).argmax(axis=1)

    def predict_proba_nodes(self, ids) -> np.ndarray:
        """Per-class probabilities for the queried node ids."""
        from repro.eval.metrics import softmax

        return softmax(self._sliced_forward(ids))

    def __repr__(self) -> str:
        return (
            f"ModelHandle({self.data.name!r}, objects={self.num_objects}, "
            f"metapaths={len(self._operators)}, "
            f"layers={self.config.num_layers})"
        )
