"""Per-node serving over a trained ConCH bundle — no full-graph re-prep.

:class:`ModelHandle` answers label/probability queries for *individual
nodes* the way a serving replica would: it loads a self-contained
estimator bundle once (model weights + the cached operators the pipeline
built), and each ``predict_nodes(ids)`` call touches only the **rows**
of those cached matrices that the queried nodes' receptive fields need —
the ROADMAP's minibatch-aware row-sliced caching direction.

How the slice stays exact
-------------------------
One ConCH layer is two hops in the object/context bipartite graph
(context ← its 2 endpoint objects, object ← its incident contexts), so
an ``L``-layer model's output at a node depends on the ``2L``-hop ball
around it.  ``predict_nodes`` grows that ball by ``L`` rounds of
row-sliced sparse lookups — contexts incident to the frontier
(``B[rows]``), then their endpoint objects (``Bᵀ[cols]``) — across *all*
meta-path towers at once, then runs the ordinary forward on the induced
sub-operators.  Nodes on the ball's boundary see truncated neighborhoods,
but their (possibly wrong) deep-layer values cannot propagate back to
the queried ids within ``L`` layers, so the returned predictions are
**bit-identical** to a full-graph forward — the conformance tests assert
exactly that.

Batched (union-slice) queries
-----------------------------
Because the slice is exact for *any* id set, many small requests can be
coalesced into one: :meth:`ModelHandle.forward_many` takes the requests'
id arrays, runs a **single** sliced forward over their union, and
scatters each request's rows back out — one receptive-field gather and
one model forward per batch instead of per request.  The equivalence
guarantee (pinned by the tests): predicted **labels are bit-identical**
to issuing the requests one at a time, and raw logits/probabilities
agree to ~1 ulp — BLAS may choose different blocking for the union
slice's different shape, the same float-determinism standard the
sliced-vs-full-forward conformance suite already holds the handle to.
:class:`repro.serve.ModelServer` builds its micro-batching scheduler on
exactly this call.

Zero-copy (mmap) operator tier
------------------------------
``ModelHandle.load(path)`` maps the bundle's big payloads — operators,
context features, object features — from raw ``.npy`` sidecar files
(built next to the bundle on first load, shared by every later load)
instead of copying the npz onto the heap, so **co-located serving
workers share one OS-resident copy of the operator tier**; only the
model weights (KBs) are private per process.  Sidecars are validated
against the bundle's stat identity and rebuilt when stale; concurrent
first loads build them once per cluster (claim-file dedupe).  Pass
``mmap=False`` to force private heap copies.

Live refresh (delta ingest)
---------------------------
:meth:`ModelHandle.refresh` swaps the whole operator tier — incidence
operators, their transposes, context features — for the artifacts a
:meth:`repro.api.Pipeline.ingest` produced after an edge delta.  The
next generation is built entirely outside the lock and published with a
single pointer swap; every query takes one snapshot up front, so
concurrent readers always see a complete generation (never operators
from one and features from another).  Model weights are untouched:
refresh changes *what the graph looks like*, not what the model learned.

Request semantics (shared by every query path)
----------------------------------------------
- **empty** id arrays return an empty result of the right shape;
- **duplicate** ids are answered per occurrence, in input order;
- ids must be an **integer** array/sequence (``TypeError`` otherwise —
  a float id would silently truncate to the wrong node);
- **out-of-range** ids raise ``IndexError("node ids out of range
  [0, N)")`` — the batched path validates each request *before* the
  union, so one bad request cannot change any other request's answer
  or error.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor, no_grad
from repro.obs.trace import TRACER

#: Suffix of the sidecar directory holding a bundle's mapped payloads.
BUNDLE_SIDECAR_SUFFIX = ".mmap"


class _OperatorState:
    """One immutable generation of a handle's operator tier.

    Readers snapshot the whole tier in one pointer read
    (:meth:`ModelHandle._snapshot`), so a concurrent
    :meth:`ModelHandle.refresh` — which builds the next generation
    off-lock and swaps the pointer — can never expose a torn view
    (operators of one generation with context features of another).
    """

    __slots__ = ("operators", "transposed", "context_features", "generation")

    def __init__(self, operators, transposed, context_features, generation):
        self.operators: List[sp.csr_matrix] = operators
        self.transposed: List[Optional[sp.csr_matrix]] = transposed
        self.context_features: List[Optional[np.ndarray]] = context_features
        self.generation = int(generation)


class ModelHandle:
    """A loaded, query-ready ConCH model (see module docstring).

    Build one with :meth:`load` (from a bundle path — memory-mapped by
    default) or :meth:`from_estimator` (from a fitted
    :class:`~repro.api.estimator.ConCHEstimator`, heap-backed).
    """

    def __init__(self, data, config, model, transposed=None):
        self.data = data
        self.config = config
        self.model = model
        self.model.eval()
        self.use_contexts = bool(config.use_contexts)
        self.num_objects = data.features.shape[0]
        # Row-sliceable cached operators, bundled into one immutable
        # generation (see _OperatorState) so refresh() can swap them
        # atomically under live queries.
        self._refresh_lock = threading.Lock()
        self._state = self._build_state(  # guarded-by: _refresh_lock
            data.metapath_data, transposed=transposed, generation=0
        )
        #: Telemetry of the most recent query: sizes of the induced
        #: subgraph vs. the full graph.
        self.last_query_stats: Dict[str, object] = {}

    def _build_state(
        self, metapath_data, transposed=None, generation=0
    ) -> _OperatorState:
        """Materialize one operator generation from per-meta-path data.

        Incidence transposes answer "which objects touch these contexts"
        by row slicing too; the mapped loader passes them precomputed
        (so they map from disk), otherwise they are materialized here.
        """
        operators: List[sp.csr_matrix] = []
        transposed_out: List[Optional[sp.csr_matrix]] = []
        context_features: List[Optional[np.ndarray]] = []
        for index, m in enumerate(metapath_data):
            if self.use_contexts:
                operator = sp.csr_matrix(m.incidence)
                if transposed is not None and transposed[index] is not None:
                    transposed_out.append(transposed[index])
                else:
                    transposed_out.append(sp.csr_matrix(operator.T))
                context_features.append(m.context_features)
            else:
                operator = sp.csr_matrix(m.neighbor_adj)
                transposed_out.append(None)
                context_features.append(None)
            if operator.shape[0] != self.num_objects:
                raise ValueError(
                    f"operator {index} covers {operator.shape[0]} objects, "
                    f"handle serves {self.num_objects}"
                )
            operators.append(operator)
        return _OperatorState(
            operators, transposed_out, context_features, generation
        )

    def _snapshot(self) -> _OperatorState:
        """The current operator generation (one consistent view)."""
        with self._refresh_lock:
            return self._state

    # Back-compat views over the current generation (tests and examples
    # introspect these; queries snapshot once instead — see _gather).
    @property
    def _operators(self) -> List[sp.csr_matrix]:
        return self._snapshot().operators

    @property
    def _transposed(self) -> List[Optional[sp.csr_matrix]]:
        return self._snapshot().transposed

    @property
    def _context_features(self) -> List[Optional[np.ndarray]]:
        return self._snapshot().context_features

    @property
    def generation(self) -> int:
        """Monotonic operator-tier generation (bumped by refresh)."""
        return self._snapshot().generation

    def refresh(self, data) -> int:
        """Atomically swap in updated operators; returns the generation.

        ``data`` is a :class:`~repro.core.trainer.ConCHData` (e.g.
        ``pipeline.data`` after :meth:`repro.api.Pipeline.ingest`) or a
        bare ``metapath_data`` list.  The next generation is built
        entirely off-lock; the swap itself is one pointer write, and
        every query takes one snapshot up front — readers always see a
        complete generation, never a torn mix.  The object set must be
        unchanged (edge deltas never add nodes); model weights are
        untouched.
        """
        metapath_data = getattr(data, "metapath_data", data)
        current = self._snapshot()
        if len(metapath_data) != len(current.operators):
            raise ValueError(
                f"refresh got {len(metapath_data)} meta-path towers, "
                f"handle serves {len(current.operators)}"
            )
        state = self._build_state(metapath_data)
        with self._refresh_lock:
            state.generation = self._state.generation + 1
            self._state = state
            return state.generation

    # ------------------------------------------------------------- #
    # Constructors
    # ------------------------------------------------------------- #

    @classmethod
    def from_estimator(cls, estimator) -> "ModelHandle":
        """Wrap a fitted ConCH estimator without touching disk."""
        estimator._require_fitted()
        return cls(estimator.data, estimator.config, estimator.trainer.model)

    @classmethod
    def load(cls, path: Union[str, Path], mmap: bool = True) -> "ModelHandle":
        """Open a serving handle over a saved estimator bundle.

        With ``mmap=True`` (the default) the bundle's operators and
        feature matrices are served from read-only memory-mapped sidecar
        files next to the bundle — built on first load, after which
        every co-located worker shares one OS-resident copy.  Falls back
        to the heap path when sidecars cannot be built (e.g. a read-only
        bundle directory).
        """
        if mmap:
            handle = _load_mapped_handle(path)
            if handle is not None:
                return handle
        from repro.api.estimator import ConCHEstimator

        estimator = ConCHEstimator.load(path)
        if estimator is None:
            raise ValueError(f"{path} is not a ConCH estimator bundle")
        return cls.from_estimator(estimator)

    # ------------------------------------------------------------- #
    # Request validation
    # ------------------------------------------------------------- #

    def check_ids(self, ids) -> np.ndarray:
        """Validate + normalize one request's node ids (see module docs).

        Every query path — single, batched, server-side — funnels
        through this, so error behavior (and the exact error messages)
        cannot drift between them.
        """
        array = np.asarray(ids).ravel()
        if array.size == 0:
            return np.empty(0, dtype=np.int64)
        if not np.issubdtype(array.dtype, np.integer):
            raise TypeError(
                f"node ids must be integers, got dtype {array.dtype}"
            )
        array = array.astype(np.int64)
        if array.min() < 0 or array.max() >= self.num_objects:
            raise IndexError(
                f"node ids out of range [0, {self.num_objects})"
            )
        return array

    # ------------------------------------------------------------- #
    # Receptive-field gathering (row slices only)
    # ------------------------------------------------------------- #

    def _rows_union(self, matrix: sp.csr_matrix, rows: np.ndarray) -> np.ndarray:
        """Unique column ids touched by a set of rows (pure row slice)."""
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = matrix.indptr[rows]
        stops = matrix.indptr[rows + 1]
        chunks = [
            matrix.indices[a:b] for a, b in zip(starts, stops) if b > a
        ]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks)).astype(np.int64)

    def _gather(self, ids: np.ndarray, state: _OperatorState):
        """The ``2L``-hop ball of ``ids`` across every meta-path tower.

        Operates on one :class:`_OperatorState` snapshot so a concurrent
        refresh cannot mix generations mid-gather.
        """
        num_layers = self.config.num_layers
        objects = np.unique(ids)
        contexts: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in state.operators
        ]
        for _ in range(num_layers):
            frontier = [objects]
            for index, operator in enumerate(state.operators):
                if self.use_contexts:
                    ctx = self._rows_union(operator, objects)
                    contexts[index] = ctx
                    frontier.append(
                        self._rows_union(state.transposed[index], ctx)
                    )
                else:
                    frontier.append(self._rows_union(operator, objects))
            objects = np.unique(np.concatenate(frontier))
        return objects, contexts

    # ------------------------------------------------------------- #
    # Queries
    # ------------------------------------------------------------- #

    def _sliced_forward(
        self, ids: np.ndarray, state: Optional[_OperatorState] = None
    ) -> np.ndarray:
        ids = self.check_ids(ids)
        if state is None:
            state = self._snapshot()  # one generation for the whole query
        if ids.size == 0:
            return np.empty((0, self.data.num_classes), dtype=np.float64)
        with TRACER.span(
            "handle.sliced_forward",
            attrs={"ids": int(ids.size), "generation": state.generation},
        ):
            return self._sliced_forward_inner(ids, state)

    def _sliced_forward_inner(
        self, ids: np.ndarray, state: "_OperatorState"
    ) -> np.ndarray:
        objects, contexts = self._gather(ids, state)
        operators = []
        context_tensors = []
        for index, operator in enumerate(state.operators):
            if self.use_contexts:
                ctx = contexts[index]
                operators.append(operator[objects][:, ctx])
                context_tensors.append(
                    Tensor(np.asarray(state.context_features[index][ctx]))
                )
            else:
                operators.append(operator[objects][:, objects])
                context_tensors.append(None)
        self.last_query_stats = {
            "query_nodes": int(ids.size),
            "subgraph_objects": int(objects.size),
            "subgraph_contexts": [int(c.size) for c in contexts],
            "total_objects": int(self.num_objects),
            "object_fraction": float(objects.size) / max(self.num_objects, 1),
            "generation": state.generation,
        }
        features = Tensor(np.asarray(self.data.features[objects]))
        self.model.eval()
        with no_grad():
            logits, _ = self.model(features, operators, context_tensors)
        positions = np.searchsorted(objects, ids)
        return logits.data[positions]

    def forward_many(
        self,
        id_arrays: Sequence,
        validated: bool = False,
        return_generation: bool = False,
    ):
        """Logits for many requests through ONE union sliced forward.

        Validates every request first (so a bad request fails the whole
        call before any work — per-request isolation is the
        :class:`repro.serve.BatchPlanner`'s job), unions the ids, runs a
        single receptive-field gather + forward, and scatters each
        request's rows back out in its own input order.  Labels match
        per-request calls bit-exactly, logits to ~1 ulp (see module
        docstring) — the batched equivalence guarantee.

        ``validated=True`` skips the per-array re-validation for callers
        whose arrays already went through :meth:`check_ids` (the planner
        and server validate per request for error isolation); the union
        still passes one final check inside the sliced forward.

        ``return_generation=True`` returns ``(answers, generation)``
        where ``generation`` is the operator generation the whole batch
        was answered against — the snapshot is taken once up front, so
        the tag is exact even when a concurrent :meth:`refresh` swaps
        generations mid-call.  Serving caches key on it.
        """
        if validated:
            arrays = [np.asarray(ids, dtype=np.int64) for ids in id_arrays]
        else:
            arrays = [self.check_ids(ids) for ids in id_arrays]
        state = self._snapshot()  # one generation for the whole batch
        non_empty = [a for a in arrays if a.size]
        if not non_empty:
            empty = np.empty((0, self.data.num_classes), dtype=np.float64)
            out = [empty.copy() for _ in arrays]
            return (out, state.generation) if return_generation else out
        union = np.unique(np.concatenate(non_empty))
        union_logits = self._sliced_forward(union, state=state)
        self.last_query_stats["batched_requests"] = len(arrays)
        out: List[np.ndarray] = []
        for array in arrays:
            if array.size == 0:
                out.append(
                    np.empty((0, self.data.num_classes), dtype=np.float64)
                )
            else:
                out.append(union_logits[np.searchsorted(union, array)])
        return (out, state.generation) if return_generation else out

    def predict_nodes(self, ids) -> np.ndarray:
        """Predicted labels for the queried node ids (input order kept)."""
        return self._sliced_forward(ids).argmax(axis=1)

    def predict_proba_nodes(self, ids) -> np.ndarray:
        """Per-class probabilities for the queried node ids."""
        from repro.eval.metrics import softmax

        return softmax(self._sliced_forward(ids))

    def predict_nodes_batch(self, id_arrays: Sequence) -> List[np.ndarray]:
        """Labels for many requests via one union forward (see above)."""
        return [
            logits.argmax(axis=1) if logits.size else
            np.empty(0, dtype=np.int64)
            for logits in self.forward_many(id_arrays)
        ]

    def predict_proba_nodes_batch(self, id_arrays: Sequence) -> List[np.ndarray]:
        """Probabilities for many requests via one union forward."""
        from repro.eval.metrics import softmax

        return [softmax(logits) for logits in self.forward_many(id_arrays)]

    def __repr__(self) -> str:
        return (
            f"ModelHandle({self.data.name!r}, objects={self.num_objects}, "
            f"metapaths={len(self._operators)}, "
            f"layers={self.config.num_layers})"
        )


# ------------------------------------------------------------------ #
# The mapped bundle loader (zero-copy operator tier)
# ------------------------------------------------------------------ #


def _bundle_sidecar_dir(path: Path) -> Path:
    return path.with_name(path.name + BUNDLE_SIDECAR_SUFFIX)


def _bundle_sidecar_meta(path: Path) -> Optional[dict]:
    from repro.hin.cache import file_stat_identity

    stat = file_stat_identity(path)
    if stat is None:
        return None
    return {"kind": "conch-bundle-sidecars", "bundle_stat": stat}


def _export_bundle_sidecars(path: Path, header: dict) -> bool:
    """Materialize a bundle's big payloads as mappable ``.npy`` sidecars.

    One manifest covers the whole export (written atomically last), so a
    reader either sees a complete, consistent generation or rebuilds.
    Incidence transposes are exported too — computing them per process
    would put a full heap copy back in every worker.
    """
    from repro.api.artifacts import ARCHIVE_ERRORS, _unpack_csr
    from repro.hin.cache import save_mmap_arrays

    arrays: Dict[str, np.ndarray] = {}
    csr_shapes: Dict[str, List[int]] = {}

    def pack_csr(name: str, matrix: sp.csr_matrix) -> None:
        matrix = sp.csr_matrix(matrix)
        if not matrix.has_sorted_indices:
            matrix.sort_indices()
        arrays[f"{name}.data"] = matrix.data
        arrays[f"{name}.indices"] = matrix.indices
        arrays[f"{name}.indptr"] = matrix.indptr
        csr_shapes[name] = [int(s) for s in matrix.shape]

    try:
        with np.load(path, allow_pickle=False) as archive:
            arrays["features"] = archive["features"]
            arrays["labels"] = archive["labels"]
            for i in range(len(header["metapath_names"])):
                incidence = _unpack_csr(archive, f"mp{i}/incidence")
                pack_csr(f"mp{i}.incidence", incidence)
                pack_csr(f"mp{i}.incidence_T", sp.csr_matrix(incidence.T))
                pack_csr(
                    f"mp{i}.neighbor_adj",
                    _unpack_csr(archive, f"mp{i}/neighbor_adj"),
                )
                arrays[f"mp{i}.context_features"] = archive[
                    f"mp{i}/context_features"
                ]
    except ARCHIVE_ERRORS:
        return False
    meta = _bundle_sidecar_meta(path)
    if meta is None:
        return False
    meta["csr_shapes"] = csr_shapes
    return save_mmap_arrays(_bundle_sidecar_dir(path), "bundle", arrays, meta)


def _load_mapped_handle(path: Union[str, Path]) -> Optional[ModelHandle]:
    """Open a bundle with its big payloads memory-mapped; None on any miss.

    Misses fall back to the heap loader in :meth:`ModelHandle.load` —
    never an error.  Sidecars are built on first load (claim-file
    dedupe: concurrent cold workers build once per cluster, the rest
    wait and map the winner's export).
    """
    from repro.api.estimator import _read_bundle_header
    from repro.core.serialize import model_from_archive
    from repro.core.config import ConCHConfig
    from repro.core.trainer import ConCHData, MetaPathData
    from repro.hin.cache import (
        ClaimFile,
        csr_from_components,
        load_mmap_arrays,
    )
    from repro.hin.metapath import MetaPath

    path = Path(path)
    header = _read_bundle_header(path)
    if header is None or header.get("kind") != "conch-estimator":
        return None
    expected = _bundle_sidecar_meta(path)
    if expected is None:
        return None
    sidecar_dir = _bundle_sidecar_dir(path)

    def try_map():
        return load_mmap_arrays(sidecar_dir, "bundle", expected)

    loaded = try_map()
    if loaded is None:
        claim = ClaimFile(path.with_name(path.name + ".mmap.claim"))
        if claim.acquire():
            try:
                if not _export_bundle_sidecars(path, header):
                    return None
            finally:
                claim.release()
        else:
            claim.wait(try_map)
        loaded = try_map()
        if loaded is None:
            return None
    meta, arrays = loaded
    csr_shapes = meta.get("csr_shapes", {})

    def unpack_csr(name: str) -> Optional[sp.csr_matrix]:
        shape = csr_shapes.get(name)
        try:
            data = arrays[f"{name}.data"]
            indices = arrays[f"{name}.indices"]
            indptr = arrays[f"{name}.indptr"]
        except KeyError:
            return None
        if shape is None or len(shape) != 2:
            return None
        if indptr.shape != (int(shape[0]) + 1,):
            return None
        return csr_from_components(data, indices, indptr, tuple(shape))

    from repro.api.artifacts import ARCHIVE_ERRORS

    try:
        with np.load(path, allow_pickle=False) as archive:
            model = model_from_archive(header["model"], archive)
    except ARCHIVE_ERRORS:
        return None
    metapath_data: List[MetaPathData] = []
    transposed: List[Optional[sp.csr_matrix]] = []
    for i, (types, name) in enumerate(
        zip(header["metapath_node_types"], header["metapath_names"])
    ):
        incidence = unpack_csr(f"mp{i}.incidence")
        incidence_t = unpack_csr(f"mp{i}.incidence_T")
        neighbor_adj = unpack_csr(f"mp{i}.neighbor_adj")
        context_features = arrays.get(f"mp{i}.context_features")
        if incidence is None or neighbor_adj is None or context_features is None:
            return None
        metapath_data.append(
            MetaPathData(
                metapath=MetaPath(types, name=name),
                incidence=incidence,
                context_features=context_features,
                neighbor_adj=neighbor_adj,
                truncated_contexts=int(header["truncated_contexts"][i]),
            )
        )
        transposed.append(incidence_t)
    data = ConCHData(
        name=header["name"],
        features=arrays["features"],
        labels=arrays["labels"],
        num_classes=int(header["num_classes"]),
        metapath_data=metapath_data,
    )
    config = ConCHConfig(**header["model"]["config"])
    return ModelHandle(data, config, model, transposed=transposed)
