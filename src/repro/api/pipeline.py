"""The staged ConCH pipeline: ``discover → compose → enumerate → featurize → fit``.

The paper's method is inherently staged — find meta-paths, compose their
commuting matrices, enumerate meta-path contexts, build context features,
train — but the legacy surface exposed it as one monolithic
``prepare_conch_data`` call.  :class:`Pipeline` names each stage, gives
each a typed artifact (:mod:`repro.api.artifacts`) with a stable content
key, and persists those artifacts (plus the composed products, through
the engine's :class:`~repro.hin.cache.ProductStore`) under a store
directory — so a rerun, or a second process sharing the directory, skips
every completed stage and reproduces results bit-exactly.

Stage graph and what each stage owns::

    discover   which meta-paths (dataset's declared set, or schema search)
    compose    commuting-matrix products for the plan (engine + ProductStore)
    enumerate  neighbor filtering (retained pairs) + context enumeration
    featurize  metapath2vec embeddings → Eq.-3 context features,
               incidence and neighbor-adjacency operators
    fit        estimator training on a split (repro.api.estimator)

``prepare_conch_data`` survives as a thin shim over the first four
stages (run in memory when no store is configured), so every legacy
call site keeps its exact behavior.

Example
-------
>>> from repro.api import Pipeline
>>> pipe = Pipeline("dblp", store_dir="runs/dblp")      # doctest: +SKIP
>>> est = pipe.fit(train_fraction=0.1)                  # doctest: +SKIP
>>> est.evaluate(pipe.split.test)                       # doctest: +SKIP
...   # second run: all stages load from runs/dblp, zero products composed
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.api.artifacts import (
    ArtifactStore,
    ComposeReport,
    ContextSet,
    FeatureSet,
    MetaPathPlan,
    split_hash,
    stage_key,
    supervision_hash,
)
from repro.core.config import ConCHConfig
from repro.data.base import HINDataset
from repro.data.splits import Split, stratified_split
from repro.hin.engine import CommutingEngine, get_engine
from repro.hin.io import hin_content_hash
from repro.hin.metapath import MetaPath
from repro.obs import metrics as obs_metrics
from repro.obs.trace import TRACER

#: Stage names, in execution order.
STAGES = ("discover", "compose", "enumerate", "featurize", "fit")


@dataclass
class StageEvent:
    """One stage execution: what ran (or loaded) and how long it took.

    Stages that were never *entered* log nothing: when featurize loads
    from the store, compose/enumerate are bypassed entirely, so a fully
    warm resume logs exactly discover/featurize/fit as ``loaded``.
    ``waited`` means another worker held the stage's claim and this
    pipeline loaded its write-through instead of recomputing (the
    cluster-wide stage dedupe; see ``ArtifactStore.claim``).
    ``patched`` means :meth:`Pipeline.ingest` updated the stage's
    artifact incrementally from an edge delta instead of recomputing it
    from scratch.

    ``duration_s`` mirrors ``seconds`` under the span-tier field name
    (every :class:`repro.obs.Span` carries ``duration_s``); events are
    also re-emitted as ``pipeline.<stage>`` spans when tracing is on,
    so a resumed run's trace shows ``loaded`` stages at near-zero cost
    next to the ``computed`` ones that paid.
    """

    stage: str
    key: str
    action: str          # "computed" | "loaded" | "waited" | "patched"
    seconds: float
    detail: Dict[str, object] = field(default_factory=dict)
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s == 0.0:
            self.duration_s = self.seconds


def _resolve_dataset(dataset: Union[str, HINDataset], seed: int) -> HINDataset:
    if isinstance(dataset, str):
        from repro.data.registry import load_dataset

        return load_dataset(dataset, seed=seed)
    return dataset


def default_config(dataset: Union[str, HINDataset], **overrides) -> ConCHConfig:
    """A :class:`ConCHConfig` with the dataset's per-paper hyper-parameters.

    For registered dataset names this applies the §V-C per-dataset ``k``,
    ``L``, context dim and λ from :mod:`repro.data.registry`; for ad-hoc
    :class:`HINDataset` instances it falls back to the global defaults.
    """
    from repro.data.registry import default_conch_config

    name = dataset if isinstance(dataset, str) else dataset.name
    return default_conch_config(name, **overrides)


class Pipeline:
    """Staged, resumable facade over the ConCH preprocessing + training.

    Parameters
    ----------
    dataset:
        A registered dataset name (loaded with its paper defaults) or a
        prepared :class:`HINDataset`.
    config:
        ConCH hyper-parameters; defaults to :func:`default_config` for
        the dataset.
    store_dir:
        Directory for stage artifacts (``artifacts/``) and composed
        commuting products (``products/``, wired into the engine's
        :class:`~repro.hin.cache.ProductStore`).  ``None`` runs fully in
        memory — stages still execute in order, nothing persists.
    discover_source:
        ``"dataset"`` uses the bundle's declared meta-paths;
        ``"discovery"`` runs the schema search
        (:func:`repro.hin.discovery.discover_metapaths`).
    seed:
        Dataset-generation seed when ``dataset`` is a name.

    Attributes
    ----------
    stage_log:
        :class:`StageEvent` per stage execution — the resume audit trail
        (``action == "loaded"`` means the stage was skipped).
    """

    def __init__(
        self,
        dataset: Union[str, HINDataset],
        config: Optional[ConCHConfig] = None,
        store_dir: Optional[Union[str, Path]] = None,
        discover_source: str = "dataset",
        seed: int = 0,
    ):
        if discover_source not in ("dataset", "discovery"):
            raise ValueError(
                f"unknown discover_source {discover_source!r}; "
                "expected 'dataset' or 'discovery'"
            )
        self.dataset = _resolve_dataset(dataset, seed)
        self.config = config if config is not None else default_config(self.dataset)
        self.discover_source = discover_source
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.store: Optional[ArtifactStore] = (
            ArtifactStore(self.store_dir / "artifacts")
            if self.store_dir is not None
            else None
        )
        self.stage_log: List[StageEvent] = []
        self._plan: Optional[MetaPathPlan] = None
        self._compose_report: Optional[ComposeReport] = None
        self._context_set: Optional[ContextSet] = None
        self._feature_set: Optional[FeatureSet] = None
        self._data = None  # ConCHData, assembled by featurize()
        self._embeddings: Optional[Dict[str, np.ndarray]] = None
        #: True when featurize ran on caller-supplied embeddings: those
        #: features are outside the content key, so neither the
        #: featurize artifact nor a fit bundle derived from them may be
        #: stored under (or loaded from) the canonical keys.
        self._off_key_features = False

    # -------------------------------------------------------------- #
    # Shared plumbing
    # -------------------------------------------------------------- #

    @property
    def engine(self) -> CommutingEngine:
        """The dataset's shared commuting engine, wired to the store.

        With a store directory, composed products write through to
        ``<store_dir>/products`` (unless the config names an explicit
        ``cache_dir``, which wins); the config's memory budget applies
        either way.
        """
        kwargs: Dict[str, object] = {}
        if self.config.cache_memory_budget is not None:
            kwargs["memory_budget"] = self.config.cache_memory_budget
        cache_dir = self.config.cache_dir
        if cache_dir is None and self.store_dir is not None:
            cache_dir = str(self.store_dir / "products")
        if cache_dir is not None:
            kwargs["cache_dir"] = cache_dir
        return get_engine(self.dataset.hin, **kwargs)

    def _content_hash(self) -> str:
        return hin_content_hash(self.dataset.hin)

    def _key(self, stage: str, extra: str = "") -> str:
        return stage_key(self._content_hash(), self.config, stage, extra=extra)

    def _load(self, kind: str, key: str):
        if self.store is None:
            return None
        return self.store.get(kind, key)

    def _persist(self, artifact) -> None:
        if self.store is not None:
            self.store.put(artifact)

    def _log(self, stage: str, key: str, action: str, seconds: float, **detail):
        self.stage_log.append(
            StageEvent(
                stage=stage, key=key, action=action, seconds=seconds,
                detail=dict(detail),
            )
        )
        obs_metrics.REGISTRY.counter(
            f"repro_pipeline_stage_{action}_total",
            help=f"Pipeline stage executions with action={action}",
        ).inc()
        obs_metrics.REGISTRY.histogram(
            "repro_pipeline_stage_seconds",
            help="Wall-clock seconds per pipeline stage execution",
        ).observe(seconds)
        if TRACER.enabled:
            # Re-emit the stage event as a retroactive span: the stage
            # just finished, so its end is "now" and its start follows
            # from the measured duration.
            end_s = time.perf_counter()
            TRACER.record(
                f"pipeline.{stage}",
                start_s=end_s - max(seconds, 0.0),
                end_s=end_s,
                parent=TRACER.current_context(),
                attrs={"action": action, "key": key},
            )

    def _claimed_compute(self, kind: str, key: str, compute, persist=True):
        """Compute one stage's artifact with cluster-wide claim dedupe.

        Returns ``(artifact, action)`` where action is ``"computed"``
        (this worker paid the stage) or ``"waited"`` (another worker
        held the stage's claim; we loaded its write-through — the
        product store's dedupe protocol extended to whole stages, so
        two cold pipelines sharing a store never both pay featurize).
        A dead writer's stale claim times out and computation falls
        back to us; without a store (or for off-key artifacts) this is
        a plain compute.
        """
        if self.store is None or not persist:
            return compute(), "computed"
        claim = self.store.claim(kind, key)
        if claim.acquire():
            try:
                # Heartbeat the lease: a stage slower than the TTL
                # (featurize trains embeddings) must not look abandoned
                # to waiters — only a genuinely dead holder expires.
                with claim.keepalive():
                    artifact = compute()
                self.store.put(artifact)
            finally:
                claim.release()
            return artifact, "computed"
        artifact = self.store.wait_for(kind, key)
        if artifact is not None:
            return artifact, "waited"
        artifact = compute()
        self.store.put(artifact)
        return artifact, "computed"

    # -------------------------------------------------------------- #
    # Stage 1: discover
    # -------------------------------------------------------------- #

    def discover(self) -> MetaPathPlan:  # fingerprint-stage: discover
        """Decide the meta-path set (declared or schema-searched)."""
        if self._plan is not None:
            return self._plan
        extra = self.discover_source
        if self.discover_source == "dataset":
            # The declared set is an *input* here (not derivable from the
            # graph structure the content hash covers): editing
            # dataset.metapaths on an unchanged graph must miss.
            declared = ";".join(
                "-".join(m.node_types) for m in self.dataset.metapaths
            )
            extra = f"{extra}|{declared}"
        key = self._key("discover", extra=extra)
        started = time.perf_counter()
        cached = self._load("discover", key)
        if cached is not None:
            self._plan = cached
            self._log("discover", key, "loaded", time.perf_counter() - started)
            return cached
        def build() -> MetaPathPlan:
            if self.discover_source == "discovery":
                from repro.hin.discovery import discover_metapaths

                metapaths = discover_metapaths(
                    self.dataset.hin, self.dataset.target_type
                )
                if not metapaths:
                    raise RuntimeError(
                        f"meta-path discovery found nothing for "
                        f"{self.dataset.name!r}; use the dataset's declared set"
                    )
            else:
                metapaths = list(self.dataset.metapaths)
            return MetaPathPlan(
                key=key,
                node_types=[tuple(m.node_types) for m in metapaths],
                names=[m.name for m in metapaths],
                source=self.discover_source,
            )

        plan, action = self._claimed_compute("discover", key, build)
        self._plan = plan
        self._log(
            "discover", key, action, time.perf_counter() - started,
            metapaths=plan.names,
        )
        return plan

    # -------------------------------------------------------------- #
    # Stage 2: compose
    # -------------------------------------------------------------- #

    def compose(self) -> ComposeReport:  # fingerprint-stage: compose
        """Materialize each meta-path's commuting product in the engine.

        With a store directory, products write through to disk, so any
        later process (or stage) finds them warm; on an already-warm
        store this stage composes **zero** products — every matrix loads.
        """
        if self._compose_report is not None:
            return self._compose_report
        plan = self.discover()
        key = self._key("compose", extra=plan.plan_fingerprint())
        started = time.perf_counter()
        cached = self._load("compose", key)
        if cached is not None:
            self._compose_report = cached
            self._log("compose", key, "loaded", time.perf_counter() - started)
            return cached
        def build() -> ComposeReport:
            engine = self.engine
            before = len(engine.compose_log)
            product_keys, nnz, seconds = [], [], []
            for metapath in plan.metapaths():
                product = engine.counts(metapath)
                product_key = tuple(metapath.node_types)
                product_keys.append(product_key)
                nnz.append(int(product.nnz))
                seconds.append(engine.compose_seconds.get(product_key, 0.0))
            return ComposeReport(
                key=key,
                product_keys=product_keys,
                nnz=nnz,
                compose_seconds=seconds,
                composed=len(engine.compose_log) - before,
            )

        report, action = self._claimed_compute("compose", key, build)
        self._compose_report = report
        self._log(
            "compose", key, action, time.perf_counter() - started,
            composed=report.composed,
        )
        return report

    # -------------------------------------------------------------- #
    # Stage 3: enumerate
    # -------------------------------------------------------------- #

    def enumerate(self) -> ContextSet:  # fingerprint-stage: enumerate
        """Neighbor filtering + per-pair context enumeration."""
        if self._context_set is not None:
            return self._context_set
        plan = self.discover()
        key = self._key("enumerate", extra=plan.plan_fingerprint())
        started = time.perf_counter()
        cached = self._load("enumerate", key)
        if cached is not None:
            self._context_set = cached
            self._log("enumerate", key, "loaded", time.perf_counter() - started)
            return cached
        def build() -> ContextSet:
            self.compose()  # products first (warm store ⇒ zero compositions)
            from repro.hin.context import enumerate_contexts
            from repro.hin.neighbors import NeighborFilter

            config = self.config
            neighbor_filter = NeighborFilter(
                k=config.k, strategy=config.neighbor_strategy
            )
            # One rng across meta-paths, matching the legacy monolith's
            # draw order exactly (only the "random" strategy consumes it).
            rng = np.random.default_rng(config.seed)
            hin = self.dataset.hin
            pairs_list, ids_list, indptr_list = [], [], []
            totals_list, truncated_list = [], []
            for metapath in plan.metapaths():
                # Same guard the legacy build_bipartite_graph enforced:
                # pair ids below index target-type objects, so an
                # unanchored meta-path must fail loudly here, not
                # corrupt the incidence.
                if not metapath.endpoints_match(self.dataset.target_type):
                    raise ValueError(
                        f"meta-path {metapath.name!r} must start and end "
                        f"at the target type"
                    )
                pairs = neighbor_filter.retained_pairs(hin, metapath, rng=rng)
                pairs_list.append(pairs)
                if config.use_contexts:
                    batch = enumerate_contexts(
                        hin, metapath, pairs,
                        max_instances=config.max_instances,
                    )
                    ids_list.append(batch.instance_ids)
                    indptr_list.append(batch.indptr)
                    totals_list.append(batch.total_counts)
                    truncated_list.append(batch.truncated)
                else:
                    ids_list.append(None)
                    indptr_list.append(None)
                    totals_list.append(None)
                    truncated_list.append(None)
            return ContextSet(
                key=key,
                pairs=pairs_list,
                instance_ids=ids_list,
                indptr=indptr_list,
                total_counts=totals_list,
                truncated=truncated_list,
            )

        context_set, action = self._claimed_compute("enumerate", key, build)
        self._context_set = context_set
        self._log(
            "enumerate", key, action, time.perf_counter() - started,
            pairs=[int(p.shape[0]) for p in context_set.pairs],
        )
        return context_set

    # -------------------------------------------------------------- #
    # Stage 4: featurize
    # -------------------------------------------------------------- #

    def featurize(  # fingerprint-stage: featurize
        self, embeddings: Optional[Dict[str, np.ndarray]] = None
    ) -> FeatureSet:
        """Context features + incidence/neighbor operators (→ ConCHData).

        ``embeddings`` optionally supplies precomputed per-type initial
        embeddings (else metapath2vec trains here, as in the paper).
        """
        supplied_embeddings = embeddings is not None
        if self._feature_set is not None and not supplied_embeddings:
            return self._feature_set
        plan = self.discover()
        key = self._key("featurize", extra=plan.plan_fingerprint())
        started = time.perf_counter()
        if not supplied_embeddings:
            cached = self._load("featurize", key)
            if cached is not None:
                self._feature_set = cached
                self._log(
                    "featurize", key, "loaded", time.perf_counter() - started
                )
                return cached
        def build() -> FeatureSet:
            context_set = self.enumerate()
            from repro.core.bipartite_conv import neighbor_adjacency_from_pairs
            from repro.core.context_features import build_context_features
            from repro.core.trainer import ConCHData, MetaPathData
            from repro.hin.bipartite import BipartiteGraph, incidence_from_pairs

            config = self.config
            dataset = self.dataset
            metapaths = plan.metapaths()
            embeds = embeddings
            if config.use_contexts and embeds is None:
                from repro.embedding.metapath2vec import metapath2vec_embeddings

                embeds = metapath2vec_embeddings(
                    dataset.hin,
                    metapaths,
                    dim=config.context_dim,
                    num_walks=config.embed_num_walks,
                    walk_length=config.embed_walk_length,
                    window=config.embed_window,
                    epochs=config.embed_epochs,
                    seed=config.seed,
                )
            self._embeddings = embeds
            num_objects = dataset.num_targets
            metapath_data: List[MetaPathData] = []
            for index, metapath in enumerate(metapaths):
                pairs = context_set.pairs[index]
                incidence = incidence_from_pairs(pairs, num_objects)
                batch = context_set.batch(index, metapath)
                bipartite = BipartiteGraph(
                    metapath=metapath,
                    num_objects=num_objects,
                    pairs=pairs,
                    incidence=incidence,
                    context_batch=batch,
                )
                if config.use_contexts:
                    context_features = build_context_features(bipartite, embeds)
                    truncated = int(batch.truncated.sum())
                else:
                    context_features = np.zeros(
                        (bipartite.num_contexts, config.context_dim)
                    )
                    truncated = 0
                metapath_data.append(
                    MetaPathData(
                        metapath=metapath,
                        incidence=incidence,
                        context_features=context_features,
                        neighbor_adj=neighbor_adjacency_from_pairs(
                            pairs, num_objects
                        ),
                        truncated_contexts=truncated,
                    )
                )
            data = ConCHData(
                name=dataset.name,
                features=dataset.features,
                labels=dataset.labels,
                num_classes=dataset.num_classes,
                metapath_data=metapath_data,
                substrate_stats=self.engine.stats(),
            )
            self._data = data
            return FeatureSet.from_conch_data(key, data)

        # Caller-supplied embeddings are outside the content key: never
        # store that artifact as if it were the canonical metapath2vec
        # run (it would poison every later resume) — and never claim it
        # either, so an off-key run can't block the canonical one.
        self._off_key_features = supplied_embeddings
        feature_set, action = self._claimed_compute(
            "featurize", key, build, persist=not supplied_embeddings
        )
        self._feature_set = feature_set
        self._log("featurize", key, action, time.perf_counter() - started)
        return feature_set

    # -------------------------------------------------------------- #
    # Composite prep + stage 5: fit
    # -------------------------------------------------------------- #

    def prepare(self, embeddings: Optional[Dict[str, np.ndarray]] = None):
        """Run ``discover → compose → enumerate → featurize``; ConCHData.

        This is the staged equivalent of the legacy monolithic
        ``prepare_conch_data`` (which now delegates here) and produces a
        bit-identical :class:`~repro.core.trainer.ConCHData`.
        """
        started = time.perf_counter()
        feature_set = self.featurize(embeddings=embeddings)
        if self._data is None:  # featurize was loaded, not computed
            self._data = feature_set.to_conch_data(self.dataset)
        self._data.preprocess_seconds = time.perf_counter() - started
        self._data.substrate_stats = self.engine.stats()
        return self._data

    @property
    def data(self):
        """The prepared :class:`ConCHData` (runs the prep stages once)."""
        if self._data is None:
            self.prepare()
        return self._data

    # -------------------------------------------------------------- #
    # Delta ingest: patch prepared artifacts after an edge-batch edit
    # -------------------------------------------------------------- #

    def ingest(
        self,
        delta,
        embeddings: Optional[Dict[str, np.ndarray]] = None,
    ) -> List[StageEvent]:
        """Apply an :class:`~repro.hin.graph.EdgeDelta` and patch stages.

        Applies the delta to the dataset's HIN (bumping its version and
        chaining the content hash), lets the engine patch its cached
        products row-wise, re-enumerates only the contexts whose
        full-chain product rows changed, and splices the context-feature
        rows of unaffected pairs — producing artifacts bit-identical to
        a cold :meth:`prepare` on the mutated graph under the same
        initial embeddings.  Each patched stage logs a
        :class:`StageEvent` with ``action == "patched"`` under the
        post-delta content key, so a later resume from the store is warm.

        Initial embeddings are *not* retrained: the incremental path
        keeps the embeddings featurize ran with (or ``embeddings`` when
        given), which is exactly the live-serving contract.  When no
        embeddings are available (featurize was loaded from a store by
        another process) and contexts are enabled, featurize falls back
        to a full recompute and logs ``"computed"``.

        Requires a prepared pipeline; returns the events it logged.
        The fit stage is untouched — refresh a served model with
        :meth:`repro.api.serving.ModelHandle.refresh`.
        """
        if self._plan is None or self._context_set is None:
            raise RuntimeError(
                "ingest() needs a prepared pipeline; call prepare() first"
            )
        from repro.hin.context import patch_context_batch
        from repro.hin.neighbors import NeighborFilter

        engine = self.engine  # bind pre-delta so ingest sees the chain
        hin = self.dataset.hin
        config = self.config
        events_before = len(self.stage_log)
        record = hin.apply_delta(delta)

        # --- discover: the plan is graph-independent; re-key it. ------
        started = time.perf_counter()
        extra = self.discover_source
        if self.discover_source == "dataset":
            declared = ";".join(
                "-".join(m.node_types) for m in self.dataset.metapaths
            )
            extra = f"{extra}|{declared}"
        plan = MetaPathPlan(
            key=self._key("discover", extra=extra),
            node_types=list(self._plan.node_types),
            names=list(self._plan.names),
            source=self._plan.source,
        )
        self._persist(plan)
        self._plan = plan
        self._log(
            "discover", plan.key, "patched", time.perf_counter() - started,
            metapaths=plan.names,
        )

        # --- compose: the engine patches dirty product rows in place. -
        started = time.perf_counter()
        key = self._key("compose", extra=plan.plan_fingerprint())
        before = len(engine.compose_log)
        patched_before = len(engine.patch_log)
        metapaths = plan.metapaths()
        dirty: Dict[int, np.ndarray] = {}
        product_keys, nnz, seconds = [], [], []
        for index, metapath in enumerate(metapaths):
            # First engine touch syncs it: row-scoped patch, or a full
            # invalidation when the delta dirties too much of the graph.
            dirty[index] = engine.dirty_rows(
                tuple(metapath.node_types), [record]
            )
            product = engine.counts(metapath)
            product_key = tuple(metapath.node_types)
            product_keys.append(product_key)
            nnz.append(int(product.nnz))
            seconds.append(engine.compose_seconds.get(product_key, 0.0))
        report = ComposeReport(
            key=key,
            product_keys=product_keys,
            nnz=nnz,
            compose_seconds=seconds,
            composed=len(engine.compose_log) - before,
        )
        self._persist(report)
        self._compose_report = report
        self._log(
            "compose", key, "patched", time.perf_counter() - started,
            composed=report.composed,
            patched_products=len(engine.patch_log) - patched_before,
        )

        # --- enumerate: re-enumerate only dirty-rooted pairs. ---------
        started = time.perf_counter()
        key = self._key("enumerate", extra=plan.plan_fingerprint())
        neighbor_filter = NeighborFilter(
            k=config.k, strategy=config.neighbor_strategy
        )
        # Fresh rng in the cold stage's exact draw order, so retained
        # pairs bit-match a from-scratch enumerate on the mutated graph.
        rng = np.random.default_rng(config.seed)
        pairs_list, ids_list, indptr_list = [], [], []
        totals_list, truncated_list = [], []
        patch_info = []  # (need, fresh, old_index) per meta-path
        reenumerated = []
        for index, metapath in enumerate(metapaths):
            pairs = neighbor_filter.retained_pairs(hin, metapath, rng=rng)
            pairs_list.append(pairs)
            if not config.use_contexts:
                ids_list.append(None)
                indptr_list.append(None)
                totals_list.append(None)
                truncated_list.append(None)
                patch_info.append(None)
                continue
            old_batch = self._context_set.batch(index, metapath)
            batch, need, fresh, old_index = patch_context_batch(
                hin, metapath, old_batch, pairs, dirty[index],
                max_instances=config.max_instances,
            )
            pairs_list[-1] = batch.pairs
            ids_list.append(batch.instance_ids)
            indptr_list.append(batch.indptr)
            totals_list.append(batch.total_counts)
            truncated_list.append(batch.truncated)
            patch_info.append((need, fresh, old_index))
            reenumerated.append(int(need.sum()))
        context_set = ContextSet(
            key=key,
            pairs=pairs_list,
            instance_ids=ids_list,
            indptr=indptr_list,
            total_counts=totals_list,
            truncated=truncated_list,
        )
        self._persist(context_set)
        old_features = (
            list(self._feature_set.context_features)
            if self._feature_set is not None
            else None
        )
        self._context_set = context_set
        self._log(
            "enumerate", key, "patched", time.perf_counter() - started,
            pairs=[int(p.shape[0]) for p in context_set.pairs],
            reenumerated=reenumerated,
        )

        # --- featurize: splice feature rows of unaffected pairs. ------
        embeds = embeddings if embeddings is not None else self._embeddings
        if embeddings is not None:
            self._off_key_features = True
        if config.use_contexts and (embeds is None or old_features is None):
            # No embeddings to featurize fresh pairs with — pay the
            # full stage (it retrains metapath2vec on the new graph).
            self._feature_set = None
            self._data = None
            self.featurize()
            self.prepare()
            return self.stage_log[events_before:]
        started = time.perf_counter()
        key = self._key("featurize", extra=plan.plan_fingerprint())
        from repro.core.bipartite_conv import neighbor_adjacency_from_pairs
        from repro.core.context_features import context_features_from_batch
        from repro.core.trainer import ConCHData, MetaPathData
        from repro.hin.bipartite import incidence_from_pairs

        self._embeddings = embeds
        num_objects = self.dataset.num_targets
        metapath_data: List[MetaPathData] = []
        for index, metapath in enumerate(metapaths):
            pairs = pairs_list[index]
            if config.use_contexts:
                need, fresh, old_index = patch_info[index]
                keep = ~need
                dim = embeds[metapath.source_type].shape[1]
                features = np.zeros((pairs.shape[0], dim))
                features[keep] = old_features[index][old_index[keep]]
                if need.any():
                    features[need] = context_features_from_batch(fresh, embeds)
                truncated = int(truncated_list[index].sum())
            else:
                features = np.zeros((pairs.shape[0], config.context_dim))
                truncated = 0
            metapath_data.append(
                MetaPathData(
                    metapath=metapath,
                    incidence=incidence_from_pairs(pairs, num_objects),
                    context_features=features,
                    neighbor_adj=neighbor_adjacency_from_pairs(
                        pairs, num_objects
                    ),
                    truncated_contexts=truncated,
                )
            )
        data = ConCHData(
            name=self.dataset.name,
            features=self.dataset.features,
            labels=self.dataset.labels,
            num_classes=self.dataset.num_classes,
            metapath_data=metapath_data,
            substrate_stats=engine.stats(),
        )
        self._data = data
        feature_set = FeatureSet.from_conch_data(key, data)
        if not self._off_key_features:
            self._persist(feature_set)
        self._feature_set = feature_set
        self._log("featurize", key, "patched", time.perf_counter() - started)
        return self.stage_log[events_before:]

    def fit(  # fingerprint-stage: fit
        self,
        split: Optional[Split] = None,
        train_fraction: float = 0.1,
        val_fraction: float = 0.1,
        seed: Optional[int] = None,
    ):
        """Train (or reload) a :class:`~repro.api.estimator.ConCHEstimator`.

        The fit artifact is keyed by the featurize key + the split's
        content hash + the full config fingerprint: a rerun with the
        same inputs loads the trained bundle instead of retraining, and
        its predictions are bit-identical to the in-memory run's.
        """
        from repro.api.estimator import ConCHEstimator

        seed = self.config.seed if seed is None else seed
        if split is None:
            split = stratified_split(
                self.dataset.labels,
                train_fraction,
                val_fraction=val_fraction,
                seed=seed,
            )
        self.split = split
        feature_set = self.featurize()
        # Besides the featurize chain and the split, the fit key covers
        # the supervision signal itself: features/labels are outside the
        # structural HIN hash but the trained bundle embodies them.
        key = self._key(
            "fit",
            extra=f"{feature_set.key}|{split_hash(split)}"
                  f"|{supervision_hash(self.dataset)}",
        )
        started = time.perf_counter()
        # Features built from caller-supplied embeddings live outside
        # the content key: a fit bundle derived from them must neither
        # satisfy nor overwrite the canonical key.
        use_store = self.store is not None and not self._off_key_features

        def load_bundle():
            path = self.store.path_for("fit", key)
            return ConCHEstimator.load(path) if path.exists() else None

        def train() -> ConCHEstimator:
            estimator = ConCHEstimator(self.data, self.config).fit(split)
            if use_store:
                estimator.save(self.store.path_for("fit", key))
            return estimator

        if not use_store:
            estimator = train()
            self._log("fit", key, "computed", time.perf_counter() - started)
            return estimator
        estimator = load_bundle()
        if estimator is not None:
            self._log("fit", key, "loaded", time.perf_counter() - started)
            return estimator
        # Same claim protocol as the artifact stages, over the bundle
        # path: one worker per cluster trains, the rest load its bundle.
        claim = self.store.claim("fit", key)
        if claim.acquire():
            try:
                with claim.keepalive():  # training may outlive the TTL
                    estimator = train()
            finally:
                claim.release()
            self._log("fit", key, "computed", time.perf_counter() - started)
            return estimator
        estimator = claim.wait(load_bundle)
        if estimator is not None:
            self._log("fit", key, "waited", time.perf_counter() - started)
            return estimator
        estimator = train()
        self._log("fit", key, "computed", time.perf_counter() - started)
        return estimator

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #

    def describe(self) -> List[Dict[str, object]]:
        """Stage log as plain dicts (for printing / JSON dumping)."""
        return [
            {
                "stage": event.stage,
                "key": event.key,
                "action": event.action,
                "seconds": round(event.seconds, 6),
                "duration_s": round(event.duration_s, 6),
                **event.detail,
            }
            for event in self.stage_log
        ]
