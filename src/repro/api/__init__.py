"""``repro.api`` — the staged pipeline + estimator surface.

Three layers, smallest on top:

:func:`fit`
    One call: ``fit("dblp", model="conch")`` or ``model="HAN"`` — every
    model (ConCH, its ablation variants, the whole baseline registry)
    trains through the same :class:`Estimator` contract.

:class:`Pipeline`
    The staged facade — ``discover → compose → enumerate → featurize →
    fit`` — where each stage returns a typed artifact with a stable
    content key.  Give it a ``store_dir`` and a rerun (or another
    process) skips every completed stage: artifacts reload, composed
    commuting products come from the disk store, and predictions are
    bit-identical to the cold run.

:class:`ModelHandle`
    The serving surface: ``ModelHandle.load(path).predict_nodes(ids)``
    answers per-node queries via row slices of the cached operators —
    no full-graph re-preprocessing on the serving path.  Bundles load
    through a memory-mapped operator tier (co-located workers share one
    OS-resident copy), and ``forward_many`` coalesces many requests
    into one union slice — the engine under
    :class:`repro.serve.ModelServer`'s micro-batching front-end.

Quickstart
----------
>>> from repro import api
>>> from repro.data import load_dataset, stratified_split
>>> dataset = load_dataset("dblp")                         # doctest: +SKIP
>>> split = stratified_split(dataset.labels, 0.1)          # doctest: +SKIP
>>> est = api.fit(dataset, model="conch", split=split)     # doctest: +SKIP
>>> est.evaluate(split.test)                               # doctest: +SKIP
{'micro_f1': 0.96, 'macro_f1': 0.96}

Staged + resumable:

>>> pipe = api.Pipeline("dblp", store_dir="runs/dblp")     # doctest: +SKIP
>>> est = pipe.fit(train_fraction=0.1)                     # doctest: +SKIP
>>> est.save("conch.npz")                                  # doctest: +SKIP
>>> api.ModelHandle.load("conch.npz").predict_nodes([0, 7])  # doctest: +SKIP
"""

from repro.api.artifacts import (
    ArtifactStore,
    ComposeReport,
    ContextSet,
    FeatureSet,
    MetaPathPlan,
    config_fingerprint,
    split_hash,
    stage_key,
)
from repro.api.estimator import (
    ConCHEstimator,
    Estimator,
    MethodEstimator,
    fit,
    load_estimator,
)
from repro.api.pipeline import STAGES, Pipeline, StageEvent, default_config
from repro.api.serving import ModelHandle

__all__ = [
    "ArtifactStore",
    "ComposeReport",
    "ConCHEstimator",
    "ContextSet",
    "Estimator",
    "FeatureSet",
    "MetaPathPlan",
    "MethodEstimator",
    "ModelHandle",
    "Pipeline",
    "STAGES",
    "StageEvent",
    "config_fingerprint",
    "default_config",
    "fit",
    "load_estimator",
    "split_hash",
    "stage_key",
]
