"""Replica autoscaling for :class:`repro.serve.ProcessReplicaServer`.

A small closed-loop controller: every ``interval_s`` it samples the
server's :meth:`~repro.serve.server.ProcessReplicaServer.autoscale_signals`
— in-flight queue depth, cumulative shed count, current replica count —
and votes the pool up or down one replica at a time.

The policy is deliberately boring (threshold + hysteresis), because a
serving pool must not flap:

* **scale up** when per-replica load (``queue_depth / replicas``)
  reaches ``up_queue_per_replica``, *or* when any request was shed since
  the last tick (shedding means admission control is already turning
  callers away — the strongest possible "underprovisioned" signal);
* **scale down** only when per-replica load has fallen to
  ``down_queue_per_replica`` *and* nothing was shed;
* a vote must repeat for ``up_ticks`` / ``down_ticks`` consecutive
  samples before the controller acts (scaling down is much slower to
  trigger than scaling up — capacity mistakes in the two directions are
  not symmetric: a late scale-up sheds traffic, a late scale-down only
  wastes a process);
* after any action the controller holds still for ``cooldown_s`` so the
  pool's reaction (spawn cost, sentinel-lagged retirement) is visible in
  the signals before the next decision.

The controller is duck-typed over its server: anything with
``autoscale_signals()`` and ``scale_to(n)`` works, which is how the unit
tests drive the policy against a fake server with scripted signals, one
:meth:`ReplicaAutoscaler.tick` at a time, without processes or clocks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs import metrics as obs_metrics


@dataclass(frozen=True)
class AutoscalePolicy:
    """Bounds and hysteresis for :class:`ReplicaAutoscaler`.

    Parameters
    ----------
    min_replicas / max_replicas:
        Hard pool bounds; ``scale_to`` clamps to them too.
    interval_s:
        Sampling period of the controller thread.
    up_queue_per_replica:
        Per-replica in-flight depth at (or above) which the tick votes
        to scale up.
    down_queue_per_replica:
        Per-replica in-flight depth at (or below) which the tick votes
        to scale down (only when nothing was shed since the last tick).
    up_ticks / down_ticks:
        Consecutive same-direction votes required before acting.
    cooldown_s:
        Quiet period after any scaling action.
    """

    min_replicas: int = 1
    max_replicas: int = 4
    interval_s: float = 0.25
    up_queue_per_replica: float = 8.0
    down_queue_per_replica: float = 1.0
    up_ticks: int = 2
    down_ticks: int = 8
    cooldown_s: float = 1.0

    def __post_init__(self):
        if self.min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if self.down_queue_per_replica > self.up_queue_per_replica:
            raise ValueError(
                "down_queue_per_replica must be <= up_queue_per_replica "
                f"({self.down_queue_per_replica} > "
                f"{self.up_queue_per_replica})"
            )
        if self.up_ticks < 1 or self.down_ticks < 1:
            raise ValueError("up_ticks and down_ticks must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")


class ReplicaAutoscaler:
    """Drives ``server.scale_to`` from observed load, with hysteresis.

    One background thread (started by the server's own ``start``) calls
    :meth:`tick` every ``policy.interval_s``; tests call :meth:`tick`
    directly.  All decision state (vote streaks, last shed total,
    cooldown clock) is touched only by whoever runs the tick, so it
    needs no lock; the shared telemetry (:meth:`stats` readers vs the
    ticker) does, and is annotated for the lock-discipline checker.
    """

    def __init__(self, server, policy: AutoscalePolicy):
        self.server = server
        self.policy = policy
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Controller-local decision state — single-threaded by
        # construction (only the ticker touches it).
        self._up_votes = 0
        self._down_votes = 0
        self._last_shed_total: Optional[float] = None
        self._cooldown_left = 0.0
        # Telemetry shared with stats() readers.
        self._lock = threading.Lock()
        self._ticks = 0  # guarded-by: _lock
        self._events: List[Dict[str, object]] = []  # guarded-by: _lock
        self._obs = obs_metrics.REGISTRY.register(
            "autoscale", self._collect_metrics
        )

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    def start(self) -> "ReplicaAutoscaler":
        """Start the sampling thread (idempotent, restart-safe)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop_event.wait(self.policy.interval_s):
            try:
                self.tick(elapsed_s=self.policy.interval_s)
            except Exception:
                # A transient sampling failure (e.g. racing a stop)
                # must not kill the controller; the next tick retries.
                continue

    # ------------------------------------------------------------- #
    # The control law
    # ------------------------------------------------------------- #

    def tick(self, elapsed_s: Optional[float] = None) -> Optional[int]:
        """One control step; returns the new replica target if it acted.

        ``elapsed_s`` is the time credited against the cooldown (the
        thread passes its sampling interval; tests pass whatever they
        want — the controller never reads a wall clock itself, which is
        what makes the policy unit-testable tick by tick).
        """
        policy = self.policy
        if elapsed_s is None:
            elapsed_s = policy.interval_s
        signals = self.server.autoscale_signals()
        queue_depth = signals["queue_depth"]
        shed_total = signals["shed_total"]
        replicas = int(signals["replicas"])
        shed_delta = (
            0.0
            if self._last_shed_total is None
            else max(0.0, shed_total - self._last_shed_total)
        )
        self._last_shed_total = shed_total
        load = queue_depth / max(1, replicas)

        wants_up = (
            load >= policy.up_queue_per_replica or shed_delta > 0
        ) and replicas < policy.max_replicas
        wants_down = (
            load <= policy.down_queue_per_replica
            and shed_delta == 0
            and replicas > policy.min_replicas
        )
        if wants_up:
            self._up_votes += 1
            self._down_votes = 0
        elif wants_down:
            self._down_votes += 1
            self._up_votes = 0
        else:
            self._up_votes = 0
            self._down_votes = 0

        self._cooldown_left = max(0.0, self._cooldown_left - elapsed_s)
        with self._lock:
            self._ticks += 1
        if self._cooldown_left > 0:
            return None

        target: Optional[int] = None
        direction = ""
        if wants_up and self._up_votes >= policy.up_ticks:
            target, direction = replicas + 1, "up"
        elif wants_down and self._down_votes >= policy.down_ticks:
            target, direction = replicas - 1, "down"
        if target is None:
            return None

        actual = self.server.scale_to(target)
        self._up_votes = 0
        self._down_votes = 0
        self._cooldown_left = policy.cooldown_s
        with self._lock:
            self._events.append(
                {
                    "direction": direction,
                    "from_replicas": replicas,
                    "to_replicas": actual,
                    "queue_depth": queue_depth,
                    "shed_delta": shed_delta,
                }
            )
        return actual

    # ------------------------------------------------------------- #
    # Telemetry
    # ------------------------------------------------------------- #

    def stats(self) -> Dict[str, object]:
        """Policy, tick count, and the scaling decisions taken so far.

        Thin view over this controller's registry registration
        (``repro_autoscale_*`` in ``GET /metrics``).
        """
        return self._obs.read()

    def _collect_metrics(self) -> Dict[str, object]:
        """Registry collector; :meth:`stats` is a thin view over it."""
        with self._lock:
            ticks = self._ticks
            events = [dict(event) for event in self._events]
        return {
            "policy": {
                "min_replicas": self.policy.min_replicas,
                "max_replicas": self.policy.max_replicas,
                "up_queue_per_replica": self.policy.up_queue_per_replica,
                "down_queue_per_replica": self.policy.down_queue_per_replica,
                "up_ticks": self.policy.up_ticks,
                "down_ticks": self.policy.down_ticks,
                "cooldown_s": self.policy.cooldown_s,
            },
            "ticks": ticks,
            "scale_events": events,
        }
