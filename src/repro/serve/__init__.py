"""``repro.serve`` — the traffic-serving subsystem.

The paper's model answers per-node label queries from fixed, precomputed
meta-path operators — a read-heavy serving workload.  This package turns
the repo's batch reproduction into a query *server* in three layers,
each usable on its own:

:class:`~repro.serve.batching.BatchPlanner`
    Pure request coalescing: validate each request independently, run
    **one** receptive-field union slice + model forward for the whole
    batch (:meth:`repro.api.ModelHandle.forward_many`), scatter answers
    back — bit-identical to sequential queries, including which
    requests error and with what message.

:class:`~repro.serve.server.ModelServer`
    The thread-pool front-end: a micro-batching scheduler
    (``max_batch_size`` / ``max_wait_ms``) over a **bounded** request
    queue with load-shedding admission control
    (:class:`~repro.serve.server.ServerOverloaded`), futures, and
    latency/throughput/batch-shape telemetry.
    :class:`~repro.serve.server.ProcessReplicaServer` runs the same
    protocol across OS processes, with elastic replica counts
    (:meth:`~repro.serve.server.ProcessReplicaServer.scale_to`,
    optionally driven by an
    :class:`~repro.serve.autoscale.AutoscalePolicy`).

:class:`~repro.serve.http.HttpServer`
    The network front door: a stdlib-only HTTP facade over
    ``ModelServer`` (``/predict``, ``/predict_proba``, ``/stats``,
    ``/ingest``, ``/metrics``) that preserves in-process error types
    and messages on the wire; :class:`~repro.serve.http.HttpServeClient`
    keeps :class:`~repro.serve.client.ServeClient`'s exact surface over
    HTTP, including shed-retry.

Observability (:mod:`repro.obs`)
    Every layer publishes into the unified telemetry subsystem: spans
    (``server.request`` with queue-wait/assembly/forward children,
    ``http.<route>`` stitched across the wire via ``traceparent``
    headers), registry metrics (``repro_server_*`` etc., exported at
    ``GET /metrics``), and a worst-N ``stats()["slow_requests"]`` log.
    Tracing is off by default; enable with ``repro.obs.TRACER.enable()``
    or ``REPRO_TRACE=1``.

The zero-copy substrate
    Both servers load bundles through the memory-mapped operator tier
    (:meth:`repro.api.ModelHandle.load`; sidecar plumbing in
    :mod:`repro.hin.cache`), and pipelines sharing a store dir reuse
    each other's composed products via the same mmap sidecars — so
    **co-located workers share one OS-resident copy** of every operator
    and cold-start by mapping files, not recomposing or copying.

Quickstart
----------
>>> from repro.serve import ModelServer, ServeClient
>>> server = ModelServer("conch.npz", max_batch_size=64)   # doctest: +SKIP
>>> with server:                                           # doctest: +SKIP
...     client = ServeClient(server)
...     client.predict_nodes([0, 7, 7])     # duplicates answered per slot
...     server.stats()["latency_seconds"]
See ``examples/serving_under_load.py`` for a full concurrent-load run.
"""

from repro.serve.autoscale import AutoscalePolicy, ReplicaAutoscaler
from repro.serve.batching import BatchItem, BatchPlanner
from repro.serve.client import ServeClient
from repro.serve.http import HttpServeClient, HttpServer
from repro.serve.server import (
    ModelServer,
    PredictionFuture,
    ProcessReplicaServer,
    ServerOverloaded,
)

__all__ = [
    "AutoscalePolicy",
    "BatchItem",
    "BatchPlanner",
    "HttpServeClient",
    "HttpServer",
    "ModelServer",
    "PredictionFuture",
    "ProcessReplicaServer",
    "ReplicaAutoscaler",
    "ServeClient",
    "ServerOverloaded",
]
