"""`ModelServer`: a micro-batching, admission-controlled query server.

The front-end of the serving subsystem.  Callers :meth:`~ModelServer.submit`
``predict_nodes``-shaped requests (or use the blocking
``predict_nodes`` / ``predict_proba_nodes`` wrappers, or a
:class:`repro.serve.client.ServeClient`); a scheduler thread pool forms
**micro-batches** — up to ``max_batch_size`` requests, waiting at most
``max_wait_ms`` after the first arrival — and answers each batch with a
single union sliced forward through :class:`repro.serve.BatchPlanner`,
so B concurrent single-node queries cost one receptive-field gather and
one model forward instead of B.  Results are bit-identical to calling
:meth:`repro.api.ModelHandle.predict_nodes` sequentially (the batched
equivalence guarantee; the tests pin it down).

Admission control
-----------------
The request queue is bounded (``max_queue``).  When it is full the
server **sheds load**: :meth:`submit` raises :class:`ServerOverloaded`
immediately instead of queueing unbounded work — the caller can back
off, retry, or fail fast.  Invalid requests (non-integer / out-of-range
ids) are rejected synchronously at ``submit`` with exactly the error
the sequential :class:`~repro.api.ModelHandle` path raises; they never
consume scheduler capacity.

Adaptive micro-batching
-----------------------
With ``adaptive_wait=True`` the scheduler stops treating ``max_wait_ms``
as a fixed delay and instead derives the *effective* wait from the
observed request inter-arrival rate (an EWMA maintained at ``submit``):
it waits roughly as long as filling the batch should take
(``(max_batch_size - 1) × inter-arrival``), capped at ``max_wait_ms``
— and waits **zero** when traffic is so sparse that no companion is
expected inside the cap (holding a lone request would only add
latency).  ``stats()`` reports both the EWMA and the current effective
wait.

Hot-query cache
---------------
``hot_cache_size > 0`` enables a small LRU of recent answers keyed on
``(operator generation, proba, ids bytes)``.  A repeated query is
answered at ``submit`` without touching the scheduler or the
receptive-field gather; hits are bit-identical because the cached value
*is* a previous batched answer from the same generation.  The
generation component makes invalidation atomic with
:meth:`~repro.api.ModelHandle.refresh`'s pointer swap — an entry from
an old generation can never answer a post-ingest query — and
:meth:`ingest` additionally clears the cache to bound stale residency.

Lifecycle
---------
:meth:`stop` is idempotent (safe never-started, safe twice), freezes
``uptime_seconds``/``throughput_rps`` at the recorded stop timestamp,
and fails every queued request so no caller blocks on a dead server —
including requests racing with the stop itself (``submit`` re-checks
after enqueueing).  A restart (:meth:`start` after :meth:`stop`) is
refused while any worker from the previous run is still alive: two
worker generations must never serve the same queue.

Telemetry
---------
:meth:`~ModelServer.stats` reports request/answer/shed/cache counts,
batch shaping (count, mean/max size), end-to-end latency quantiles
(submit → result, seconds), and throughput over the started→stopped
window.

Multi-process serving
---------------------
:class:`ProcessReplicaServer` runs the same protocol across OS
processes: each replica loads the bundle through the **memory-mapped
operator tier** (:meth:`repro.api.ModelHandle.load`), so N replicas
share one OS-resident copy of the operators and cold-start by mapping,
not copying.  Use it when the GIL — not the hardware — is the
bottleneck; the thread server is lighter for scipy-heavy forwards that
release the GIL.  The replica count is elastic: :meth:`~
ProcessReplicaServer.scale_to` adds replicas (spawn) or retires them
(a shutdown sentinel through the shared queue), and attaching an
:class:`repro.serve.autoscale.AutoscalePolicy` drives it automatically
from observed queue depth and shed rate.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from collections import OrderedDict, deque
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.slowlog import SlowRequestLog
from repro.obs.trace import TRACER, TraceContext
from repro.serve.batching import BatchPlanner


class ServerOverloaded(RuntimeError):
    """Raised by ``submit`` when the bounded request queue is full."""


class PredictionFuture:
    """Handle to one in-flight request; resolves to labels or proba.

    ``timings`` is filled by the scheduler when the request is answered
    through a batch: a ``{"queue_wait_s", "batch_assembly_s",
    "forward_s"}`` breakdown of the end-to-end latency (batch-level
    boundaries shared by every request in the batch).  It stays ``None``
    for hot-cache hits and failed batches.
    """

    def __init__(self):
        self._event = threading.Event()
        self._value: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self.submitted = time.perf_counter()
        self.completed: Optional[float] = None
        self.timings: Optional[Dict[str, float]] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block for the answer; re-raises the request's own error."""
        if not self._event.wait(timeout):
            raise TimeoutError("prediction did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def latency(self) -> Optional[float]:
        """Submit → completion seconds (None while in flight)."""
        if self.completed is None:
            return None
        return self.completed - self.submitted

    def _finish(self, value=None, error=None) -> None:
        self._value = value
        self._error = error
        self.completed = time.perf_counter()
        self._event.set()


class _QueuedRequest:
    __slots__ = ("ids", "proba", "future", "ctx")

    def __init__(
        self,
        ids: np.ndarray,
        proba: bool,
        future: PredictionFuture,
        ctx: Optional[TraceContext] = None,
    ):
        self.ids = ids
        self.proba = proba
        self.future = future
        #: Trace context captured on the submitting thread — how the
        #: scheduler joins the submitter's trace across the queue hop.
        self.ctx = ctx


#: EWMA smoothing for the observed request inter-arrival gap (the
#: adaptive micro-batching signal): new = ALPHA*gap + (1-ALPHA)*old.
ARRIVAL_EWMA_ALPHA = 0.2


class ModelServer:
    """Thread-pool micro-batching server over one :class:`ModelHandle`.

    Parameters
    ----------
    handle:
        A ready :class:`repro.api.ModelHandle`, or a bundle path —
        loaded through the memory-mapped operator tier.
    max_batch_size:
        Most requests coalesced into one union forward.
    max_wait_ms:
        How long a batch may wait for companions after its first
        request arrives.  ``0`` disables coalescing delay (batches
        still form from whatever is already queued).  With
        ``adaptive_wait`` this becomes the *cap* on the derived wait.
    max_queue:
        Bound on queued (admitted, unanswered) requests; beyond it
        :meth:`submit` sheds load with :class:`ServerOverloaded`.
    num_workers:
        Scheduler threads forming and answering batches concurrently.
    adaptive_wait:
        Derive the effective wait from the observed inter-arrival EWMA
        instead of always waiting ``max_wait_ms`` (see module docs).
    hot_cache_size:
        Entries in the hot-query LRU (``0`` disables).  Keys are
        ``(generation, proba, ids)``; hits skip the scheduler and the
        receptive-field gather entirely.
    pipeline:
        Optional prepared :class:`repro.api.Pipeline` backing the
        handle; enables :meth:`ingest` (live edge deltas without a
        restart).
    slow_log_size:
        How many worst-latency requests to keep (with their per-phase
        breakdown) under ``stats()["slow_requests"]``.
    """

    def __init__(
        self,
        handle,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        num_workers: int = 1,
        adaptive_wait: bool = False,
        hot_cache_size: int = 0,
        pipeline=None,
        slow_log_size: int = 8,
    ):
        from repro.api.serving import ModelHandle

        if isinstance(handle, (str, Path)):
            handle = ModelHandle.load(handle)
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if hot_cache_size < 0:
            raise ValueError(
                f"hot_cache_size must be >= 0, got {hot_cache_size}"
            )
        self.handle = handle
        self.pipeline = pipeline
        self.planner = BatchPlanner(handle)
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.num_workers = int(num_workers)
        self.adaptive_wait = bool(adaptive_wait)
        self._hot_cache_size = int(hot_cache_size)
        self._queue: "queue.Queue[_QueuedRequest]" = queue.Queue(
            maxsize=int(max_queue)
        )
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        # Telemetry shared between submitters, scheduler workers, and
        # stats() readers; the lock-discipline rule of
        # ``python -m repro.analysis`` enforces the annotations below,
        # and the runtime sanitizer traces them under load.
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None  # guarded-by: _lock
        self._stopped_at: Optional[float] = None  # guarded-by: _lock
        self._latencies: deque = deque(maxlen=4096)  # guarded-by: _lock
        self._batch_sizes: deque = deque(maxlen=4096)  # guarded-by: _lock
        self._counters = {  # guarded-by: _lock
            "requests": 0, "answered": 0, "failed": 0, "shed": 0,
            "batches": 0, "ingests": 0, "cache_hits": 0,
        }
        # Adaptive micro-batching signal: EWMA of the gap between
        # consecutive submits (seconds), maintained at admission.
        self._last_arrival: Optional[float] = None  # guarded-by: _lock
        self._arrival_ewma_s: Optional[float] = None  # guarded-by: _lock
        # Hot-query LRU: (generation, proba, ids bytes) -> answer copy.
        self._hot_cache: "OrderedDict" = OrderedDict()  # guarded-by: _lock
        # Serializes whole delta ingests (pipeline patch + handle
        # refresh); queries keep flowing — they only contend on the
        # handle's generation-pointer swap.
        self._ingest_lock = threading.Lock()
        # Observability: the worst-N request log (own leaf lock), the
        # shared latency histogram (resolved once — the registry lookup
        # stays off the hot path), and this server's registry
        # registration; stats() is a thin view over the latter.
        self._slow_log = SlowRequestLog(capacity=max(1, int(slow_log_size)))
        self._latency_hist = obs_metrics.REGISTRY.histogram(
            "repro_server_latency_seconds",
            help="End-to-end submit->answer latency per request",
        )
        self._obs = obs_metrics.REGISTRY.register(
            "server", self._collect_metrics
        )

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    def start(self) -> "ModelServer":
        """Spawn the scheduler workers (idempotent while running).

        Restarting after :meth:`stop` is allowed only once every worker
        from the previous run has exited — otherwise a wedged old
        worker and a fresh one would serve the same queue, and answers
        could keep flowing from a generation the caller believes dead.
        """
        self._threads = [t for t in self._threads if t.is_alive()]
        if self._threads:
            if self._stop.is_set():
                raise RuntimeError(
                    f"cannot restart: {len(self._threads)} worker(s) from "
                    "the previous run are still alive; wait for them to "
                    "finish their in-flight batch and call start() again"
                )
            return self
        self._stop.clear()
        with self._lock:
            self._started_at = time.perf_counter()
            self._stopped_at = None
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Drain nothing, stop everything: in-flight batches finish,
        queued requests are failed fast so no caller blocks forever.

        Idempotent: safe on a never-started server and safe to call
        twice.  Freezes the telemetry clock (``uptime_seconds`` /
        ``throughput_rps`` stop growing/decaying) and keeps any worker
        that outlives ``timeout`` on the books so a premature restart
        is refused rather than doubling up on the queue.
        """
        self._stop.set()
        with self._lock:
            if self._started_at is not None and self._stopped_at is None:
                self._stopped_at = time.perf_counter()
        for thread in self._threads:
            thread.join(timeout)
        # Workers that missed the deadline stay on the books: start()
        # refuses to spawn a second generation next to them.
        self._threads = [t for t in self._threads if t.is_alive()]
        self._fail_pending()

    def _fail_pending(self) -> None:
        """Fail every queued request so no caller blocks on a dead server."""
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            request.future._finish(error=RuntimeError("server stopped"))
            with self._lock:
                self._counters["failed"] += 1

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- #
    # Request surface
    # ------------------------------------------------------------- #

    def submit(self, ids, proba: bool = False) -> PredictionFuture:
        """Admit one request; returns a :class:`PredictionFuture`.

        Validation happens here, synchronously, with the sequential
        path's own ``check_ids`` — so the error type *and message* for a
        bad request are identical whether it goes through the server or
        straight through the handle.  A hot-cache hit resolves the
        future immediately (bit-identical: the cached value is a prior
        answer from the same operator generation).  A full queue sheds
        the request with :class:`ServerOverloaded` (admission control).
        """
        if not self._threads:
            raise RuntimeError("server is not running; call start() first")
        checked = self.handle.check_ids(ids)  # raises exactly like the handle
        proba = bool(proba)
        generation = self.handle.generation if self._hot_cache_size else 0
        now = time.monotonic()
        cached = None
        with self._lock:
            if self._last_arrival is not None:
                gap = now - self._last_arrival
                self._arrival_ewma_s = (
                    gap
                    if self._arrival_ewma_s is None
                    else ARRIVAL_EWMA_ALPHA * gap
                    + (1.0 - ARRIVAL_EWMA_ALPHA) * self._arrival_ewma_s
                )
            self._last_arrival = now
            if self._hot_cache_size:
                key = (generation, proba, checked.tobytes())
                cached = self._hot_cache.get(key)
                if cached is not None:
                    self._hot_cache.move_to_end(key)
                    self._counters["requests"] += 1
                    self._counters["answered"] += 1
                    self._counters["cache_hits"] += 1
        ctx = TRACER.current_context() if TRACER.enabled else None
        future = PredictionFuture()
        if cached is not None:
            future._finish(value=cached.copy())
            if TRACER.enabled:
                TRACER.record(
                    "server.request",
                    start_s=future.submitted,
                    end_s=future.completed,
                    parent=ctx,
                    attrs={"ids": int(checked.size), "cache_hit": True},
                )
            return future
        request = _QueuedRequest(checked, proba, future, ctx)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._lock:
                self._counters["shed"] += 1
            raise ServerOverloaded(
                f"request queue full ({self._queue.maxsize} pending); "
                "shedding load"
            ) from None
        if self._stop.is_set():
            # stop() may have drained the queue between our running-check
            # and the put: fail anything stranded (possibly this request)
            # so no caller blocks forever on a dead server.  A request a
            # worker already claimed is not stranded — it gets answered.
            self._fail_pending()
        with self._lock:
            self._counters["requests"] += 1
        return future

    def predict_nodes(self, ids, timeout: Optional[float] = None) -> np.ndarray:
        """Blocking label query through the micro-batching scheduler."""
        return self.submit(ids, proba=False).result(timeout)

    def predict_proba_nodes(
        self, ids, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Blocking probability query through the scheduler."""
        return self.submit(ids, proba=True).result(timeout)

    # ------------------------------------------------------------- #
    # Live delta ingest
    # ------------------------------------------------------------- #

    def ingest(self, delta, pipeline=None) -> Dict[str, object]:
        """Apply an edge delta and refresh the served operators, live.

        Runs :meth:`repro.api.Pipeline.ingest` (row-scoped artifact
        patching) and then :meth:`repro.api.ModelHandle.refresh` — one
        atomic generation swap — so every request answered after this
        returns sees the new edges, without a restart and without
        stopping the scheduler.  Concurrent ingests are serialized;
        concurrent queries keep being answered throughout (each against
        a complete generation, old or new).  The hot-query cache is
        invalidated with the swap: keys carry the generation, so stale
        entries can never answer post-ingest queries, and the cache is
        cleared outright to bound dead residency.

        Returns a summary: the new operator generation, the patched
        stage actions, and the graph version.
        """
        pipeline = pipeline if pipeline is not None else self.pipeline
        if pipeline is None:
            raise RuntimeError(
                "no pipeline attached; pass pipeline= here or at "
                "construction to enable live ingest"
            )
        with self._ingest_lock:
            events = pipeline.ingest(delta)
            generation = self.handle.refresh(pipeline.data)
        with self._lock:
            self._counters["ingests"] += 1
            self._hot_cache.clear()
        return {
            "generation": generation,
            "graph_version": pipeline.dataset.hin.version,
            "stages": [(event.stage, event.action) for event in events],
        }

    # ------------------------------------------------------------- #
    # Scheduler
    # ------------------------------------------------------------- #

    def _effective_wait_s(self) -> float:
        """Companion-wait for the batch being formed right now.

        Static mode returns ``max_wait_s`` unchanged.  Adaptive mode
        sizes the wait to the traffic: filling the rest of a batch
        should take about ``(max_batch_size - 1)`` inter-arrival gaps,
        so that is what we wait (capped at ``max_wait_s``) — and when
        the observed gap already exceeds the cap, no companion can be
        expected in time, so the request is served immediately.
        """
        if not self.adaptive_wait:
            return self.max_wait_s
        with self._lock:
            ewma = self._arrival_ewma_s
        return self._wait_for_ewma(ewma)

    def _wait_for_ewma(self, ewma: Optional[float]) -> float:
        """The control law, pure in the EWMA — lets ``stats()`` derive
        the effective wait from its own already-snapshotted EWMA instead
        of re-reading the live field (which could disagree with the rest
        of the snapshot)."""
        if not self.adaptive_wait or ewma is None:
            return self.max_wait_s
        if ewma >= self.max_wait_s:
            return 0.0
        return min(self.max_wait_s, ewma * (self.max_batch_size - 1))

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            batch = [first]
            formed_at = time.perf_counter()
            deadline = time.monotonic() + self._effective_wait_s()
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Grab whatever is already queued, but wait no more.
                    try:
                        batch.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
                else:
                    try:
                        batch.append(self._queue.get(timeout=remaining))
                    except queue.Empty:
                        break
            self._serve_batch(batch, formed_at, time.perf_counter())

    def _serve_batch(
        self,
        batch: List[_QueuedRequest],
        formed_at: Optional[float] = None,
        assembled_at: Optional[float] = None,
    ) -> None:
        # ``formed_at``/``assembled_at`` bound the companion-collection
        # window (perf_counter, same clock as PredictionFuture.submitted);
        # direct callers may omit them and lose only the phase breakdown.
        now = time.perf_counter()
        if formed_at is None:
            formed_at = now
        if assembled_at is None:
            assembled_at = now
        # One batch-level span parents the whole scheduler-side subtree
        # (planner run + the handle's sliced forward via this thread's
        # context stack) into the first request's trace.
        batch_span = TRACER.span(
            "server.batch",
            parent=batch[0].ctx if TRACER.enabled else None,
            attrs={"batch_size": len(batch)},
        )
        try:
            with batch_span:
                # validated=True: every request already passed check_ids
                # at submit — do not re-scan the hot path.
                answers, generation = self.planner.run(
                    [(request.ids, request.proba) for request in batch],
                    validated=True,
                    return_generation=True,
                )
        except Exception as exc:  # defensive: a failed batch must not
            for request in batch:  # wedge its callers or kill the loop
                request.future._finish(error=exc)
            with self._lock:
                self._counters["failed"] += len(batch)
                self._counters["batches"] += 1
                self._batch_sizes.append(len(batch))
            return
        forward_done = time.perf_counter()
        answered = failed = 0
        cacheable = []
        for request, answer in zip(batch, answers):
            if isinstance(answer, Exception):
                request.future._finish(error=answer)
                failed += 1
            else:
                request.future._finish(value=answer)
                answered += 1
                if self._hot_cache_size:
                    cacheable.append((request, answer))
        with self._lock:
            self._counters["answered"] += answered
            self._counters["failed"] += failed
            self._counters["batches"] += 1
            self._batch_sizes.append(len(batch))
            for request in batch:
                latency = request.future.latency
                if latency is not None:
                    self._latencies.append(latency)
            # Cache under the generation the batch actually ran against
            # (exact even if an ingest swapped generations mid-batch:
            # an entry keyed on the old generation is unreachable to
            # post-swap lookups).  Private copies keep caller-side
            # mutation of returned arrays from poisoning the cache.
            for request, answer in cacheable:
                key = (generation, request.proba, request.ids.tobytes())
                self._hot_cache[key] = answer.copy()
                self._hot_cache.move_to_end(key)
            while len(self._hot_cache) > self._hot_cache_size:
                self._hot_cache.popitem(last=False)
        # Per-request telemetry runs after the futures resolved and
        # outside self._lock (slow log, tracer, and histogram each have
        # their own leaf lock).
        self._observe_batch(batch, formed_at, assembled_at, forward_done)

    def _observe_batch(
        self,
        batch: List[_QueuedRequest],
        formed_at: float,
        assembled_at: float,
        forward_done: float,
    ) -> None:
        """Fill timings, feed the slow log, and re-emit request spans.

        The phase boundaries are batch-level: every request in a batch
        shares the formation/assembly/forward window; what differs per
        request is its queue wait (submit → batch formation).
        """
        tracing = TRACER.enabled
        batch_size = len(batch)
        for request in batch:
            future = request.future
            latency = future.latency
            if latency is None:  # not resolved (should not happen)
                continue
            timings = {
                "queue_wait_s": max(0.0, formed_at - future.submitted),
                "batch_assembly_s": max(0.0, assembled_at - formed_at),
                "forward_s": max(0.0, forward_done - assembled_at),
            }
            future.timings = timings
            self._latency_hist.observe(latency)
            trace_id = request.ctx.trace_id if request.ctx else None
            span = None
            if tracing:
                span = TRACER.record(
                    "server.request",
                    start_s=future.submitted,
                    end_s=future.completed,
                    parent=request.ctx,
                    attrs={
                        "ids": int(request.ids.size),
                        "proba": request.proba,
                        "batch_size": batch_size,
                    },
                )
                trace_id = span.trace_id
                bounds = (
                    ("server.queue_wait", future.submitted, formed_at),
                    ("server.batch_assembly", formed_at, assembled_at),
                    ("server.forward", assembled_at, forward_done),
                )
                for name, start_s, end_s in bounds:
                    TRACER.record(
                        name, start_s=start_s, end_s=end_s, parent=span.context
                    )
            self._slow_log.offer(
                latency,
                {
                    "name": "server.request",
                    "duration_s": latency,
                    "trace_id": trace_id,
                    "attrs": {
                        "ids": int(request.ids.size),
                        "proba": request.proba,
                        "batch_size": batch_size,
                    },
                    "children": [
                        {"name": "server.queue_wait",
                         "duration_s": timings["queue_wait_s"]},
                        {"name": "server.batch_assembly",
                         "duration_s": timings["batch_assembly_s"]},
                        {"name": "server.forward",
                         "duration_s": timings["forward_s"]},
                    ],
                },
            )

    # ------------------------------------------------------------- #
    # Telemetry
    # ------------------------------------------------------------- #

    def stats(self) -> Dict[str, object]:
        """Counters, batch shaping, latency quantiles, and throughput.

        ``uptime_seconds`` and ``throughput_rps`` cover the
        started→stopped window: on a stopped server they freeze at the
        stop timestamp instead of decaying toward zero forever.

        Every guarded field is read under one lock hold (including the
        EWMA the reported ``effective_wait_ms`` derives from), and the
        whole dict doubles as this server's registry collector
        (``repro_server_*`` in ``GET /metrics``).
        ``slow_requests`` is the worst-latency ring buffer: each entry
        an end-to-end request span dict with its child phase breakdown.
        """
        return self._obs.read()

    def _collect_metrics(self) -> Dict[str, object]:
        """Registry collector; :meth:`stats` is a thin view over it."""
        with self._lock:
            counters = dict(self._counters)
            latencies = np.asarray(self._latencies, dtype=np.float64)
            batch_sizes = np.asarray(self._batch_sizes, dtype=np.float64)
            started_at = self._started_at
            stopped_at = self._stopped_at
            arrival_ewma = self._arrival_ewma_s
            hot_entries = len(self._hot_cache)
        if started_at is None:
            elapsed = 0.0
        else:
            end = stopped_at if stopped_at is not None else time.perf_counter()
            elapsed = max(0.0, end - started_at)
        out: Dict[str, object] = dict(counters)
        out["queue_depth"] = self._queue.qsize()
        out["workers"] = self.num_workers
        out["running"] = any(t.is_alive() for t in self._threads)
        out["uptime_seconds"] = elapsed
        out["throughput_rps"] = (
            counters["answered"] / elapsed if elapsed > 0 else 0.0
        )
        out["adaptive_wait"] = self.adaptive_wait
        # Derived from the snapshotted EWMA above — NOT a fresh read of
        # the live field, which could disagree with the snapshot.
        out["effective_wait_ms"] = self._wait_for_ewma(arrival_ewma) * 1000.0
        out["interarrival_ewma_ms"] = (
            arrival_ewma * 1000.0 if arrival_ewma is not None else None
        )
        out["hot_cache_size"] = self._hot_cache_size
        out["hot_cache_entries"] = hot_entries
        if batch_sizes.size:
            out["batch_size_mean"] = float(batch_sizes.mean())
            out["batch_size_max"] = int(batch_sizes.max())
        if latencies.size:
            out["latency_seconds"] = {
                "mean": float(latencies.mean()),
                "p50": float(np.percentile(latencies, 50)),
                "p95": float(np.percentile(latencies, 95)),
                "max": float(latencies.max()),
            }
        out["slow_requests"] = self._slow_log.snapshot()
        return out


# ------------------------------------------------------------------ #
# Optional multi-process front-end
# ------------------------------------------------------------------ #


def _replica_loop(
    bundle_path: str,
    request_queue,
    response_queue,
    max_batch_size: int,
    max_wait_ms: float,
) -> None:
    """One replica process: map the bundle, micro-batch, answer.

    Spawn-safe module-level entry point.  Each replica opens the bundle
    through the mmap tier, so all replicas share one OS-resident
    operator copy; requests are ``(request_id, ids, proba, ctx)``
    tuples — ``ctx`` the submitter's ``(trace_id, span_id)`` pair or
    ``None`` — and ``None`` is the shutdown sentinel.  One sentinel
    retires exactly one replica (a sentinel seen mid-batch is put back
    for a sibling), which is how
    :meth:`ProcessReplicaServer.scale_to` shrinks the pool without
    touching the survivors.  With ``REPRO_TRACE`` exported (the spawn
    env is inherited) each replica records ``replica.batch`` spans into
    its process-local tracer, parented into the submitter's trace via
    the shipped context.
    """
    from repro.api.serving import ModelHandle

    handle = ModelHandle.load(bundle_path)
    planner = BatchPlanner(handle)
    max_wait_s = float(max_wait_ms) / 1000.0
    while True:
        try:
            first = request_queue.get(timeout=0.1)
        except queue.Empty:
            continue
        if first is None:
            return
        batch = [first]
        deadline = time.monotonic() + max_wait_s
        while len(batch) < max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = request_queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:
                request_queue.put(None)  # leave the sentinel for siblings
                break
            batch.append(item)
        parent_ctx = batch[0][3]
        try:
            with TRACER.span(
                "replica.batch",
                parent=TraceContext(*parent_ctx) if parent_ctx else None,
                attrs={"batch_size": len(batch)},
            ):
                answers = planner.run(
                    [(ids, proba) for _, ids, proba, _ in batch],
                    validated=True,
                )
        except Exception as exc:  # a failed batch must not kill the
            # replica or strand its futures (mirrors _serve_batch)
            for request_id, _, _, _ in batch:
                response_queue.put((request_id, False, repr(exc)))
            continue
        for (request_id, _, _, _), answer in zip(batch, answers):
            if isinstance(answer, Exception):
                response_queue.put((request_id, False, repr(answer)))
            else:
                response_queue.put((request_id, True, answer))


class ProcessReplicaServer:
    """Micro-batching serving across OS processes sharing one mmap tier.

    Every replica maps the *same* bundle sidecars, so memory cost is
    ~one operator copy total (plus per-process model weights, KBs) —
    the cross-process sharing the zero-copy store exists for.  The
    parent validates ids up front (same errors as the handle), ships
    requests over a shared queue, and a collector thread resolves
    futures as replicas answer.  Admission control matches
    :class:`ModelServer`: at most ``max_queue`` requests may be in
    flight (submitted, unanswered); beyond that :meth:`submit` sheds
    with :class:`ServerOverloaded`.  Start with ``with`` or
    :meth:`start`; replicas are spawned (not forked), so cold-start
    includes an interpreter boot each.

    Elastic replicas
    ----------------
    :meth:`scale_to` grows the pool by spawning and shrinks it by
    pushing shutdown sentinels through the shared request queue (each
    retires exactly one replica, lazily — the sentinel queues behind
    in-flight requests).  Pass ``autoscale=AutoscalePolicy(...)`` to
    drive it automatically from observed queue depth and shed rate
    with hysteresis; the controller's decisions show up under
    ``stats()["autoscale"]``.
    """

    def __init__(
        self,
        bundle_path: Union[str, Path],
        replicas: int = 2,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        start_timeout: float = 60.0,
        autoscale=None,
    ):
        from repro.api.serving import ModelHandle

        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.bundle_path = str(bundle_path)
        self.autoscale = autoscale
        if autoscale is not None:
            replicas = max(
                autoscale.min_replicas, min(autoscale.max_replicas, replicas)
            )
        self.replicas = int(replicas)
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue = int(max_queue)
        self.start_timeout = float(start_timeout)
        # The parent's own mapped handle: used only for request
        # validation — and it pre-builds the sidecars, so replicas map
        # instead of racing to export.
        self.handle = ModelHandle.load(self.bundle_path)
        self._ctx = multiprocessing.get_context("spawn")
        self._request_queue = None
        self._response_queue = None
        self._collector: Optional[threading.Thread] = None
        self._autoscaler = None
        self._stop = threading.Event()
        # Replica-pool bookkeeping: submitters, the autoscaler thread,
        # and stats() readers all look at the pool, so it gets its own
        # (reentrant — helpers re-enter) lock.
        self._scale_lock = threading.RLock()
        self._processes: List = []  # guarded-by: _scale_lock
        self._pending_retire = 0  # guarded-by: _scale_lock
        # In-flight bookkeeping shared between submitters and the
        # collector thread (lock-discipline enforced, as in ModelServer).
        self._futures_lock = threading.Lock()
        self._futures: Dict[int, PredictionFuture] = {}  # guarded-by: _futures_lock
        self._next_id = 0  # guarded-by: _futures_lock
        self.shed = 0  # guarded-by: _futures_lock
        self._counters = {  # guarded-by: _futures_lock
            "requests": 0, "answered": 0, "failed": 0,
            "scale_ups": 0, "scale_downs": 0,
        }
        self._started_at: Optional[float] = None  # guarded-by: _futures_lock
        self._stopped_at: Optional[float] = None  # guarded-by: _futures_lock
        self._obs = obs_metrics.REGISTRY.register(
            "replica_server", self._collect_metrics
        )

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    def _spawn_replica(self) -> None:
        """Add one replica process to the pool (callers hold no locks)."""
        process = self._ctx.Process(
            target=_replica_loop,
            args=(
                self.bundle_path,
                self._request_queue,
                self._response_queue,
                self.max_batch_size,
                self.max_wait_ms,
            ),
            daemon=True,
        )
        process.start()
        with self._scale_lock:
            self._processes.append(process)

    def start(self) -> "ProcessReplicaServer":
        with self._scale_lock:
            running = bool(self._processes)
        if running:
            return self
        self._stop.clear()
        with self._futures_lock:
            self._started_at = time.perf_counter()
            self._stopped_at = None
        self._request_queue = self._ctx.Queue()
        self._response_queue = self._ctx.Queue()
        for _ in range(self.replicas):
            self._spawn_replica()
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-serve-collector", daemon=True
        )
        self._collector.start()
        if self.autoscale is not None:
            from repro.serve.autoscale import ReplicaAutoscaler

            if self._autoscaler is None:
                self._autoscaler = ReplicaAutoscaler(self, self.autoscale)
            self._autoscaler.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Retire every replica and fail all in-flight requests.

        Idempotent: safe on a never-started server (``_request_queue``
        still ``None``) and safe to call twice.  Freezes the telemetry
        clock, and terminates replicas that outlive ``timeout`` so a
        later :meth:`start` never runs two replica generations against
        one queue.
        """
        if self._autoscaler is not None:
            self._autoscaler.stop()
        with self._scale_lock:
            processes = list(self._processes)
            self._processes.clear()
            self._pending_retire = 0
        if self._request_queue is not None:
            for _ in processes:
                self._request_queue.put(None)
        for process in processes:
            process.join(timeout)
            if process.is_alive():
                process.terminate()
        self._stop.set()
        with self._futures_lock:
            if self._started_at is not None and self._stopped_at is None:
                self._stopped_at = time.perf_counter()
        if self._collector is not None:
            self._collector.join(timeout)
            self._collector = None
        self._fail_pending()

    def _fail_pending(self) -> None:
        """Fail every in-flight future so no caller blocks forever."""
        with self._futures_lock:
            pending = list(self._futures.values())
            self._futures.clear()
            self._counters["failed"] += len(pending)
        for future in pending:
            future._finish(error=RuntimeError("server stopped"))

    def __enter__(self) -> "ProcessReplicaServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- #
    # Elastic replica pool
    # ------------------------------------------------------------- #

    def _reap(self) -> None:
        """Drop exited replicas from the pool (retired or crashed)."""
        with self._scale_lock:
            before = len(self._processes)
            self._processes[:] = [
                p for p in self._processes if p.is_alive()
            ]
            died = before - len(self._processes)
            if died:
                self._pending_retire = max(0, self._pending_retire - died)

    def live_replicas(self) -> int:
        """Replicas currently alive (after reaping exited ones)."""
        self._reap()
        with self._scale_lock:
            return len(self._processes)

    def scale_to(self, count: int) -> int:
        """Grow or shrink the replica pool toward ``count``; returns it.

        Growth spawns immediately; shrink pushes one shutdown sentinel
        per retired replica through the shared queue, so it lands only
        after the requests queued ahead of it — capacity never drops
        out from under admitted work.  ``count`` is clamped to the
        autoscale policy's ``[min_replicas, max_replicas]`` when one is
        attached, else to ``>= 1``.
        """
        count = int(count)
        if self.autoscale is not None:
            count = max(
                self.autoscale.min_replicas,
                min(self.autoscale.max_replicas, count),
            )
        if count < 1:
            raise ValueError(f"replica count must be >= 1, got {count}")
        if self._request_queue is None:
            raise RuntimeError("server is not running; call start() first")
        self._reap()
        retire = 0
        with self._scale_lock:
            effective = len(self._processes) - self._pending_retire
            delta = count - effective
            if delta < 0:
                retire = -delta
                self._pending_retire += retire
        # The sentinel puts stay outside _scale_lock: put() on the shared
        # multiprocessing queue can block on pipe backpressure, and
        # blocking there would stall submit()'s running-check and the
        # autoscaler tick behind a full queue.  _pending_retire is
        # already bumped under the lock, so a concurrent scale_to sees
        # the correct effective capacity before the sentinels land.
        for _ in range(retire):
            self._request_queue.put(None)
        if delta > 0:
            for _ in range(delta):
                self._spawn_replica()
        if delta:
            with self._futures_lock:
                if delta > 0:
                    self._counters["scale_ups"] += 1
                else:
                    self._counters["scale_downs"] += 1
        return count

    def autoscale_signals(self) -> Dict[str, float]:
        """The controller's inputs: queue depth, shed total, pool size."""
        with self._futures_lock:
            queue_depth = len(self._futures)
            shed_total = self.shed
        self._reap()
        with self._scale_lock:
            replicas = len(self._processes) - self._pending_retire
        return {
            "queue_depth": float(queue_depth),
            "shed_total": float(shed_total),
            "replicas": float(max(1, replicas)),
        }

    # ------------------------------------------------------------- #
    # Request surface
    # ------------------------------------------------------------- #

    def submit(self, ids, proba: bool = False) -> PredictionFuture:
        """Admit one request (validated with the handle's own errors).

        Sheds with :class:`ServerOverloaded` once ``max_queue`` requests
        are in flight — the bounded-work guarantee of the thread server,
        kept here by bounding the unanswered-futures set (the
        multiprocessing queue itself cannot reject without blocking).
        """
        with self._scale_lock:
            running = bool(self._processes)
        if not running:
            raise RuntimeError("server is not running; call start() first")
        checked = self.handle.check_ids(ids)
        future = PredictionFuture()
        with self._futures_lock:
            if len(self._futures) >= self.max_queue:
                self.shed += 1
                raise ServerOverloaded(
                    f"{self.max_queue} requests in flight; shedding load"
                )
            request_id = self._next_id
            self._next_id += 1
            self._futures[request_id] = future
            self._counters["requests"] += 1
        ctx = TRACER.current_context() if TRACER.enabled else None
        self._request_queue.put(
            (request_id, checked, bool(proba), tuple(ctx) if ctx else None)
        )
        if self._stop.is_set():
            # stop() may have drained the futures map between our
            # registration and the put: fail anything stranded
            # (possibly this request) — mirrors ModelServer.submit.
            self._fail_pending()
        return future

    def predict_nodes(self, ids, timeout: Optional[float] = None) -> np.ndarray:
        return self.submit(ids, proba=False).result(timeout)

    def predict_proba_nodes(
        self, ids, timeout: Optional[float] = None
    ) -> np.ndarray:
        return self.submit(ids, proba=True).result(timeout)

    # ------------------------------------------------------------- #
    # Telemetry
    # ------------------------------------------------------------- #

    def stats(self) -> Dict[str, object]:
        """Counters, pool shape, and throughput (frozen after stop).

        Thin view over this server's registry registration
        (``repro_replica_server_*`` in ``GET /metrics``); all
        futures-guarded fields are read under one lock hold.
        """
        return self._obs.read()

    def _collect_metrics(self) -> Dict[str, object]:
        """Registry collector; :meth:`stats` is a thin view over it."""
        with self._futures_lock:
            counters = dict(self._counters)
            counters["shed"] = self.shed
            in_flight = len(self._futures)
            started_at = self._started_at
            stopped_at = self._stopped_at
        self._reap()
        with self._scale_lock:
            live = len(self._processes)
            pending_retire = self._pending_retire
        if started_at is None:
            elapsed = 0.0
        else:
            end = stopped_at if stopped_at is not None else time.perf_counter()
            elapsed = max(0.0, end - started_at)
        out: Dict[str, object] = dict(counters)
        out["in_flight"] = in_flight
        out["replicas"] = live
        out["pending_retire"] = pending_retire
        out["uptime_seconds"] = elapsed
        out["throughput_rps"] = (
            counters["answered"] / elapsed if elapsed > 0 else 0.0
        )
        if self._autoscaler is not None:
            out["autoscale"] = self._autoscaler.stats()
        return out

    # ------------------------------------------------------------- #
    # Collector
    # ------------------------------------------------------------- #

    def _collect_loop(self) -> None:
        while not self._stop.is_set():
            try:
                request_id, ok, payload = self._response_queue.get(timeout=0.1)
            except queue.Empty:
                continue
            except (EOFError, OSError):
                return
            with self._futures_lock:
                future = self._futures.pop(request_id, None)
                if future is not None:
                    if ok:
                        self._counters["answered"] += 1
                    else:
                        self._counters["failed"] += 1
            if future is None:
                continue
            if ok:
                future._finish(value=payload)
            else:
                future._finish(error=RuntimeError(payload))
