"""`ModelServer`: a micro-batching, admission-controlled query server.

The front-end of the serving subsystem.  Callers :meth:`~ModelServer.submit`
``predict_nodes``-shaped requests (or use the blocking
``predict_nodes`` / ``predict_proba_nodes`` wrappers, or a
:class:`repro.serve.client.ServeClient`); a scheduler thread pool forms
**micro-batches** — up to ``max_batch_size`` requests, waiting at most
``max_wait_ms`` after the first arrival — and answers each batch with a
single union sliced forward through :class:`repro.serve.BatchPlanner`,
so B concurrent single-node queries cost one receptive-field gather and
one model forward instead of B.  Results are bit-identical to calling
:meth:`repro.api.ModelHandle.predict_nodes` sequentially (the batched
equivalence guarantee; the tests pin it down).

Admission control
-----------------
The request queue is bounded (``max_queue``).  When it is full the
server **sheds load**: :meth:`submit` raises :class:`ServerOverloaded`
immediately instead of queueing unbounded work — the caller can back
off, retry, or fail fast.  Invalid requests (non-integer / out-of-range
ids) are rejected synchronously at ``submit`` with exactly the error
the sequential :class:`~repro.api.ModelHandle` path raises; they never
consume scheduler capacity.

Telemetry
---------
:meth:`~ModelServer.stats` reports request/answer/shed counts, batch
shaping (count, mean/max size), end-to-end latency quantiles
(submit → result, seconds), and throughput since :meth:`start`.

Multi-process serving
---------------------
:class:`ProcessReplicaServer` runs the same protocol across OS
processes: each replica loads the bundle through the **memory-mapped
operator tier** (:meth:`repro.api.ModelHandle.load`), so N replicas
share one OS-resident copy of the operators and cold-start by mapping,
not copying.  Use it when the GIL — not the hardware — is the
bottleneck; the thread server is lighter for scipy-heavy forwards that
release the GIL.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.serve.batching import BatchPlanner


class ServerOverloaded(RuntimeError):
    """Raised by ``submit`` when the bounded request queue is full."""


class PredictionFuture:
    """Handle to one in-flight request; resolves to labels or proba."""

    def __init__(self):
        self._event = threading.Event()
        self._value: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self.submitted = time.perf_counter()
        self.completed: Optional[float] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block for the answer; re-raises the request's own error."""
        if not self._event.wait(timeout):
            raise TimeoutError("prediction did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def latency(self) -> Optional[float]:
        """Submit → completion seconds (None while in flight)."""
        if self.completed is None:
            return None
        return self.completed - self.submitted

    def _finish(self, value=None, error=None) -> None:
        self._value = value
        self._error = error
        self.completed = time.perf_counter()
        self._event.set()


class _QueuedRequest:
    __slots__ = ("ids", "proba", "future")

    def __init__(self, ids: np.ndarray, proba: bool, future: PredictionFuture):
        self.ids = ids
        self.proba = proba
        self.future = future


class ModelServer:
    """Thread-pool micro-batching server over one :class:`ModelHandle`.

    Parameters
    ----------
    handle:
        A ready :class:`repro.api.ModelHandle`, or a bundle path —
        loaded through the memory-mapped operator tier.
    max_batch_size:
        Most requests coalesced into one union forward.
    max_wait_ms:
        How long a batch may wait for companions after its first
        request arrives.  ``0`` disables coalescing delay (batches
        still form from whatever is already queued).
    max_queue:
        Bound on queued (admitted, unanswered) requests; beyond it
        :meth:`submit` sheds load with :class:`ServerOverloaded`.
    num_workers:
        Scheduler threads forming and answering batches concurrently.
    pipeline:
        Optional prepared :class:`repro.api.Pipeline` backing the
        handle; enables :meth:`ingest` (live edge deltas without a
        restart).
    """

    def __init__(
        self,
        handle,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        num_workers: int = 1,
        pipeline=None,
    ):
        from repro.api.serving import ModelHandle

        if isinstance(handle, (str, Path)):
            handle = ModelHandle.load(handle)
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.handle = handle
        self.pipeline = pipeline
        self.planner = BatchPlanner(handle)
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.num_workers = int(num_workers)
        self._queue: "queue.Queue[_QueuedRequest]" = queue.Queue(
            maxsize=int(max_queue)
        )
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        # Telemetry shared between submitters, scheduler workers, and
        # stats() readers; the lock-discipline rule of
        # ``python -m repro.analysis`` enforces the annotations below.
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None  # guarded-by: _lock
        self._latencies: deque = deque(maxlen=4096)  # guarded-by: _lock
        self._batch_sizes: deque = deque(maxlen=4096)  # guarded-by: _lock
        self._counters = {  # guarded-by: _lock
            "requests": 0, "answered": 0, "failed": 0, "shed": 0,
            "batches": 0, "ingests": 0,
        }
        # Serializes whole delta ingests (pipeline patch + handle
        # refresh); queries keep flowing — they only contend on the
        # handle's generation-pointer swap.
        self._ingest_lock = threading.Lock()

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    def start(self) -> "ModelServer":
        if self._threads:
            return self
        self._stop.clear()
        with self._lock:
            self._started_at = time.perf_counter()
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Drain nothing, stop everything: in-flight batches finish,
        queued requests are failed fast so no caller blocks forever."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()
        self._fail_pending()

    def _fail_pending(self) -> None:
        """Fail every queued request so no caller blocks on a dead server."""
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            request.future._finish(error=RuntimeError("server stopped"))
            with self._lock:
                self._counters["failed"] += 1

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- #
    # Request surface
    # ------------------------------------------------------------- #

    def submit(self, ids, proba: bool = False) -> PredictionFuture:
        """Admit one request; returns a :class:`PredictionFuture`.

        Validation happens here, synchronously, with the sequential
        path's own ``check_ids`` — so the error type *and message* for a
        bad request are identical whether it goes through the server or
        straight through the handle.  A full queue sheds the request
        with :class:`ServerOverloaded` (admission control).
        """
        if not self._threads:
            raise RuntimeError("server is not running; call start() first")
        checked = self.handle.check_ids(ids)  # raises exactly like the handle
        future = PredictionFuture()
        request = _QueuedRequest(checked, bool(proba), future)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._lock:
                self._counters["shed"] += 1
            raise ServerOverloaded(
                f"request queue full ({self._queue.maxsize} pending); "
                "shedding load"
            ) from None
        if self._stop.is_set():
            # stop() may have drained the queue between our running-check
            # and the put: fail anything stranded (possibly this request)
            # so no caller blocks forever on a dead server.
            self._fail_pending()
            if not future.done():
                future._finish(error=RuntimeError("server stopped"))
        with self._lock:
            self._counters["requests"] += 1
        return future

    def predict_nodes(self, ids, timeout: Optional[float] = None) -> np.ndarray:
        """Blocking label query through the micro-batching scheduler."""
        return self.submit(ids, proba=False).result(timeout)

    def predict_proba_nodes(
        self, ids, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Blocking probability query through the scheduler."""
        return self.submit(ids, proba=True).result(timeout)

    # ------------------------------------------------------------- #
    # Live delta ingest
    # ------------------------------------------------------------- #

    def ingest(self, delta, pipeline=None) -> Dict[str, object]:
        """Apply an edge delta and refresh the served operators, live.

        Runs :meth:`repro.api.Pipeline.ingest` (row-scoped artifact
        patching) and then :meth:`repro.api.ModelHandle.refresh` — one
        atomic generation swap — so every request answered after this
        returns sees the new edges, without a restart and without
        stopping the scheduler.  Concurrent ingests are serialized;
        concurrent queries keep being answered throughout (each against
        a complete generation, old or new).

        Returns a summary: the new operator generation, the patched
        stage actions, and the graph version.
        """
        pipeline = pipeline if pipeline is not None else self.pipeline
        if pipeline is None:
            raise RuntimeError(
                "no pipeline attached; pass pipeline= here or at "
                "construction to enable live ingest"
            )
        with self._ingest_lock:
            events = pipeline.ingest(delta)
            generation = self.handle.refresh(pipeline.data)
        with self._lock:
            self._counters["ingests"] += 1
        return {
            "generation": generation,
            "graph_version": pipeline.dataset.hin.version,
            "stages": [(event.stage, event.action) for event in events],
        }

    # ------------------------------------------------------------- #
    # Scheduler
    # ------------------------------------------------------------- #

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            batch = [first]
            deadline = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Grab whatever is already queued, but wait no more.
                    try:
                        batch.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
                else:
                    try:
                        batch.append(self._queue.get(timeout=remaining))
                    except queue.Empty:
                        break
            self._serve_batch(batch)

    def _serve_batch(self, batch: List[_QueuedRequest]) -> None:
        try:
            # validated=True: every request already passed check_ids at
            # submit — do not re-scan the hot path.
            answers = self.planner.run(
                [(request.ids, request.proba) for request in batch],
                validated=True,
            )
        except Exception as exc:  # defensive: a failed batch must not
            for request in batch:  # wedge its callers or kill the loop
                request.future._finish(error=exc)
            with self._lock:
                self._counters["failed"] += len(batch)
                self._counters["batches"] += 1
                self._batch_sizes.append(len(batch))
            return
        answered = failed = 0
        for request, answer in zip(batch, answers):
            if isinstance(answer, Exception):
                request.future._finish(error=answer)
                failed += 1
            else:
                request.future._finish(value=answer)
                answered += 1
        with self._lock:
            self._counters["answered"] += answered
            self._counters["failed"] += failed
            self._counters["batches"] += 1
            self._batch_sizes.append(len(batch))
            for request in batch:
                latency = request.future.latency
                if latency is not None:
                    self._latencies.append(latency)

    # ------------------------------------------------------------- #
    # Telemetry
    # ------------------------------------------------------------- #

    def stats(self) -> Dict[str, object]:
        """Counters, batch shaping, latency quantiles, and throughput."""
        with self._lock:
            counters = dict(self._counters)
            latencies = np.asarray(self._latencies, dtype=np.float64)
            batch_sizes = np.asarray(self._batch_sizes, dtype=np.float64)
            started_at = self._started_at
        elapsed = (
            time.perf_counter() - started_at
            if started_at is not None
            else 0.0
        )
        out: Dict[str, object] = dict(counters)
        out["queue_depth"] = self._queue.qsize()
        out["workers"] = self.num_workers
        out["uptime_seconds"] = elapsed
        out["throughput_rps"] = (
            counters["answered"] / elapsed if elapsed > 0 else 0.0
        )
        if batch_sizes.size:
            out["batch_size_mean"] = float(batch_sizes.mean())
            out["batch_size_max"] = int(batch_sizes.max())
        if latencies.size:
            out["latency_seconds"] = {
                "mean": float(latencies.mean()),
                "p50": float(np.percentile(latencies, 50)),
                "p95": float(np.percentile(latencies, 95)),
                "max": float(latencies.max()),
            }
        return out


# ------------------------------------------------------------------ #
# Optional multi-process front-end
# ------------------------------------------------------------------ #


def _replica_loop(
    bundle_path: str,
    request_queue,
    response_queue,
    max_batch_size: int,
    max_wait_ms: float,
) -> None:
    """One replica process: map the bundle, micro-batch, answer.

    Spawn-safe module-level entry point.  Each replica opens the bundle
    through the mmap tier, so all replicas share one OS-resident
    operator copy; requests are ``(request_id, ids, proba)`` tuples and
    ``None`` is the shutdown sentinel.
    """
    from repro.api.serving import ModelHandle

    handle = ModelHandle.load(bundle_path)
    planner = BatchPlanner(handle)
    max_wait_s = float(max_wait_ms) / 1000.0
    while True:
        try:
            first = request_queue.get(timeout=0.1)
        except queue.Empty:
            continue
        if first is None:
            return
        batch = [first]
        deadline = time.monotonic() + max_wait_s
        while len(batch) < max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = request_queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:
                request_queue.put(None)  # leave the sentinel for siblings
                break
            batch.append(item)
        try:
            answers = planner.run(
                [(ids, proba) for _, ids, proba in batch], validated=True
            )
        except Exception as exc:  # a failed batch must not kill the
            # replica or strand its futures (mirrors _serve_batch)
            for request_id, _, _ in batch:
                response_queue.put((request_id, False, repr(exc)))
            continue
        for (request_id, _, _), answer in zip(batch, answers):
            if isinstance(answer, Exception):
                response_queue.put((request_id, False, repr(answer)))
            else:
                response_queue.put((request_id, True, answer))


class ProcessReplicaServer:
    """Micro-batching serving across OS processes sharing one mmap tier.

    Every replica maps the *same* bundle sidecars, so memory cost is
    ~one operator copy total (plus per-process model weights, KBs) —
    the cross-process sharing the zero-copy store exists for.  The
    parent validates ids up front (same errors as the handle), ships
    requests over a shared queue, and a collector thread resolves
    futures as replicas answer.  Admission control matches
    :class:`ModelServer`: at most ``max_queue`` requests may be in
    flight (submitted, unanswered); beyond that :meth:`submit` sheds
    with :class:`ServerOverloaded`.  Start with ``with`` or
    :meth:`start`; replicas are spawned (not forked), so cold-start
    includes an interpreter boot each.
    """

    def __init__(
        self,
        bundle_path: Union[str, Path],
        replicas: int = 2,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        start_timeout: float = 60.0,
    ):
        from repro.api.serving import ModelHandle

        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.bundle_path = str(bundle_path)
        self.replicas = int(replicas)
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue = int(max_queue)
        self.start_timeout = float(start_timeout)
        # The parent's own mapped handle: used only for request
        # validation — and it pre-builds the sidecars, so replicas map
        # instead of racing to export.
        self.handle = ModelHandle.load(self.bundle_path)
        self._ctx = multiprocessing.get_context("spawn")
        self._processes: List = []
        self._request_queue = None
        self._response_queue = None
        self._collector: Optional[threading.Thread] = None
        self._stop = threading.Event()
        # In-flight bookkeeping shared between submitters and the
        # collector thread (lock-discipline enforced, as in ModelServer).
        self._futures_lock = threading.Lock()
        self._futures: Dict[int, PredictionFuture] = {}  # guarded-by: _futures_lock
        self._next_id = 0  # guarded-by: _futures_lock
        self.shed = 0  # guarded-by: _futures_lock

    def start(self) -> "ProcessReplicaServer":
        if self._processes:
            return self
        self._stop.clear()
        self._request_queue = self._ctx.Queue()
        self._response_queue = self._ctx.Queue()
        for _ in range(self.replicas):
            process = self._ctx.Process(
                target=_replica_loop,
                args=(
                    self.bundle_path,
                    self._request_queue,
                    self._response_queue,
                    self.max_batch_size,
                    self.max_wait_ms,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-serve-collector", daemon=True
        )
        self._collector.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        for _ in self._processes:
            self._request_queue.put(None)
        for process in self._processes:
            process.join(timeout)
            if process.is_alive():
                process.terminate()
        self._processes.clear()
        self._stop.set()
        if self._collector is not None:
            self._collector.join(timeout)
            self._collector = None
        with self._futures_lock:
            pending = list(self._futures.values())
            self._futures.clear()
        for future in pending:
            future._finish(error=RuntimeError("server stopped"))

    def __enter__(self) -> "ProcessReplicaServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def submit(self, ids, proba: bool = False) -> PredictionFuture:
        """Admit one request (validated with the handle's own errors).

        Sheds with :class:`ServerOverloaded` once ``max_queue`` requests
        are in flight — the bounded-work guarantee of the thread server,
        kept here by bounding the unanswered-futures set (the
        multiprocessing queue itself cannot reject without blocking).
        """
        if not self._processes:
            raise RuntimeError("server is not running; call start() first")
        checked = self.handle.check_ids(ids)
        future = PredictionFuture()
        with self._futures_lock:
            if len(self._futures) >= self.max_queue:
                self.shed += 1
                raise ServerOverloaded(
                    f"{self.max_queue} requests in flight; shedding load"
                )
            request_id = self._next_id
            self._next_id += 1
            self._futures[request_id] = future
        self._request_queue.put((request_id, checked, bool(proba)))
        return future

    def predict_nodes(self, ids, timeout: Optional[float] = None) -> np.ndarray:
        return self.submit(ids, proba=False).result(timeout)

    def predict_proba_nodes(
        self, ids, timeout: Optional[float] = None
    ) -> np.ndarray:
        return self.submit(ids, proba=True).result(timeout)

    def _collect_loop(self) -> None:
        while not self._stop.is_set():
            try:
                request_id, ok, payload = self._response_queue.get(timeout=0.1)
            except queue.Empty:
                continue
            except (EOFError, OSError):
                return
            with self._futures_lock:
                future = self._futures.pop(request_id, None)
            if future is None:
                continue
            if ok:
                future._finish(value=payload)
            else:
                future._finish(error=RuntimeError(payload))
