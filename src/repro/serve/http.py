"""The HTTP front door: stdlib-only network serving over ``ModelServer``.

:class:`HttpServer` is a thin facade — it owns **no** scheduling,
batching, validation, or caching.  Every request body is decoded and
handed to the wrapped server's own ``submit`` / ``stats`` / ``ingest``,
so the network tier inherits the in-process guarantees verbatim:
batched ≡ sequential answers, bounded-queue load shedding, hot-cache
semantics, and — because ids are passed through *undecoded beyond JSON*
— the exact error types and messages of
:meth:`repro.api.ModelHandle.check_ids`.  Errors travel as
``{"error": {"type", "message"}}`` and :class:`HttpServeClient` rebuilds
them on the other side, so a caller migrating from the in-process
:class:`~repro.serve.client.ServeClient` to HTTP sees identical
exceptions, down to the message text.

Endpoints
---------
``POST /predict``        ``{"ids": [...]}`` → ``{"labels", "generation"}``
``POST /predict_proba``  ``{"ids": [...]}`` → ``{"proba", "shape", "generation"}``
``POST /ingest``         EdgeDelta fields → the ingest summary
``GET  /stats``          the wrapped server's ``stats()``
``GET  /metrics``        the metrics registry, Prometheus text format
``GET  /healthz``        ``{"ok": true}`` while the inner server runs

Observability
-------------
Requests may carry a W3C-style ``traceparent`` header
(``00-<trace>-<span>-01``); the server parses it, parents its own
``http.<route>`` span into the caller's trace (when tracing is on), and
answers with a ``traceparent`` response header carrying the same trace
id — so client- and server-side spans stitch into one trace even
across processes.  ``POST /predict`` bodies may set ``"timings": true``
to receive the scheduler's per-phase breakdown (queue wait, batch
assembly, forward, serialization) alongside the answer.
:class:`HttpServeClient` sends the header automatically whenever
tracing is enabled in its process.

Status mapping: 503 + ``Retry-After`` for
:class:`~repro.serve.server.ServerOverloaded` (load shed — retryable),
400 for request errors (``TypeError`` / ``ValueError`` / ``IndexError``
/ ``KeyError``), 504 for a request that timed out in the scheduler,
500 for everything else.

Fidelity notes
--------------
JSON floats are IEEE-754 doubles round-tripped via shortest-repr, so
probabilities survive the wire **bit-identically** — the equivalence
tests assert exact equality, not tolerance.  Proba responses carry an
explicit ``shape`` so empty batches keep ``(0, C)``.  Answers are tagged
with the operator ``generation`` they were computed against, so clients
can correlate results with ingests.
"""

from __future__ import annotations

import builtins
import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import TRACER, format_traceparent, parse_traceparent
from repro.serve.client import ServeClient
from repro.serve.server import ServerOverloaded

#: Exception types mapped to 400: the request itself was bad (the same
#: set ``check_ids`` / ``EdgeDelta`` raise for malformed input).
_BAD_REQUEST = (TypeError, ValueError, IndexError, KeyError)


def _jsonable(obj):
    """json.dumps ``default=`` hook for numpy scalars/arrays in stats."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(
        f"object of type {type(obj).__name__} is not JSON serializable"
    )


def _error_payload(exc: BaseException) -> Dict[str, object]:
    return {"error": {"type": type(exc).__name__, "message": str(exc)}}


class _Handler(BaseHTTPRequestHandler):
    """Per-connection handler; all logic lives in the facade's dispatch."""

    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the facade exposes stats(); per-request stderr is noise

    def _respond(
        self,
        status: int,
        payload: Union[Dict[str, object], str],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # A str payload is pre-rendered text (the Prometheus exposition);
        # everything else is JSON.
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, default=_jsonable).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if status == 503:
            self.send_header("Retry-After", "0")
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        status, payload, extra_headers = self.server.facade.dispatch(
            method, self.path, body, headers=self.headers
        )
        self._respond(status, payload, extra_headers)

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")


class HttpServer:
    """Serve a :class:`~repro.serve.server.ModelServer` over HTTP.

    Lifecycle is HTTP-only: ``start``/``stop`` bind and release the
    socket but never start or stop the wrapped server — the inner
    server's lifecycle (and its guarantees about stranded futures)
    stays whoever's started it.  ``port=0`` picks a free port;
    :attr:`url` reports the bound address.  Usable as a context
    manager.
    """

    def __init__(
        self,
        server,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = 30.0,
    ):
        self.server = server
        self.host = host
        self.port = int(port)
        self.request_timeout = float(request_timeout)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    def start(self) -> "HttpServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        httpd.facade = self
        self.port = httpd.server_address[1]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Release the socket (idempotent); the inner server stays up."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "HttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- #
    # Dispatch
    # ------------------------------------------------------------- #

    def dispatch(
        self, method: str, path: str, body: bytes, headers=None
    ) -> Tuple[int, Union[Dict[str, object], str], Dict[str, str]]:
        """Route one request; returns ``(status, payload, response headers)``.

        The payload is a JSON-able dict for every route except
        ``GET /metrics``, whose payload is the pre-rendered Prometheus
        text page (a ``str``).  An incoming ``traceparent`` header joins
        the caller's trace: with tracing on, the whole route runs under
        an ``http.<route>`` span parented to it and the response echoes
        a ``traceparent`` with the *same trace id* (the server span's
        context); with tracing off, the incoming header is echoed
        verbatim so the caller can still correlate.
        """
        incoming = headers.get("traceparent") if headers is not None else None
        parent = parse_traceparent(incoming)
        route = path.lstrip("/") or "root"
        obs_metrics.REGISTRY.counter(
            "repro_http_requests_total", help="HTTP requests dispatched"
        ).inc()
        started = time.perf_counter()
        response_headers: Dict[str, str] = {}
        if TRACER.enabled:
            with TRACER.span(
                f"http.{route}", parent=parent, attrs={"method": method}
            ) as span:
                response_headers["traceparent"] = format_traceparent(
                    span.context
                )
                status, payload = self._route(method, path, body)
                span.attrs["status"] = status
        else:
            if incoming is not None:
                response_headers["traceparent"] = incoming
            status, payload = self._route(method, path, body)
        obs_metrics.REGISTRY.histogram(
            "repro_http_request_seconds",
            help="HTTP request handling seconds (dispatch-side)",
        ).observe(time.perf_counter() - started)
        return status, payload, response_headers

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Union[Dict[str, object], str]]:
        """The status mapping: every handler funnels its exceptions
        through here, so in-process error semantics survive the wire —
        the payload carries the original type name and message verbatim.
        """
        try:
            if method == "GET" and path == "/stats":
                return 200, self.server.stats()
            if method == "GET" and path == "/metrics":
                return 200, obs_metrics.REGISTRY.prometheus_text()
            if method == "GET" and path == "/healthz":
                return 200, {"ok": True}
            if method == "POST" and path in ("/predict", "/predict_proba"):
                return 200, self._predict(body, proba=path == "/predict_proba")
            if method == "POST" and path == "/ingest":
                return 200, self._ingest(body)
            return 404, {
                "error": {"type": "LookupError", "message": f"no route for {method} {path}"}
            }
        except ServerOverloaded as exc:
            return 503, _error_payload(exc)
        except TimeoutError as exc:
            return 504, _error_payload(exc)
        except _BAD_REQUEST as exc:
            return 400, _error_payload(exc)
        except Exception as exc:  # noqa: BLE001 - the wire needs a payload
            return 500, _error_payload(exc)

    @staticmethod
    def _decode(body: bytes) -> Dict[str, object]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ValueError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return payload

    def _predict(self, body: bytes, proba: bool) -> Dict[str, object]:
        payload = self._decode(body)
        if "ids" not in payload:
            raise ValueError('request body must carry an "ids" field')
        want_timings = bool(payload.get("timings", False))
        # Hand the decoded ids to submit *as-is*: check_ids runs there,
        # so a float id over HTTP raises the exact in-process TypeError.
        future = self.server.submit(payload["ids"], proba=proba)
        answer = future.result(self.request_timeout)
        generation = self.server.handle.generation
        serialize_started = time.perf_counter()
        if proba:
            out: Dict[str, object] = {
                "proba": np.asarray(answer, dtype=np.float64).ravel().tolist(),
                "shape": list(answer.shape),
                "generation": generation,
            }
        else:
            out = {
                "labels": np.asarray(answer, dtype=np.int64).tolist(),
                "generation": generation,
            }
        if want_timings:
            # Scheduler phases (None for hot-cache hits) + the response
            # materialization just measured.  json.dumps cost lands in
            # the handler and is excluded — this is the server-side
            # payload-building share.
            timings = dict(future.timings or {})
            timings["serialization_s"] = (
                time.perf_counter() - serialize_started
            )
            out["timings"] = timings
        return out

    def _ingest(self, body: bytes) -> Dict[str, object]:
        from repro.hin.graph import EdgeDelta

        payload = self._decode(body)
        if "relation" not in payload:
            raise ValueError('request body must carry a "relation" field')
        delta = EdgeDelta(
            relation=payload["relation"],
            add_src=payload.get("add_src", ()),
            add_dst=payload.get("add_dst", ()),
            remove_src=payload.get("remove_src", ()),
            remove_dst=payload.get("remove_dst", ()),
        )
        summary = self.server.ingest(delta)
        return {
            "generation": summary["generation"],
            "graph_version": summary["graph_version"],
            "stages": [list(pair) for pair in summary["stages"]],
        }


def _rebuild_error(name: str, message: str) -> BaseException:
    """Reconstruct the server-side exception from its wire form.

    ``ServerOverloaded`` comes back as itself (so client shed-retry
    works unchanged over HTTP); builtin exception types come back as
    themselves (``TypeError``/``IndexError``/... with the exact
    message); anything unrecognized degrades to ``RuntimeError`` with
    the type name prefixed rather than being silently dropped.
    """
    if name == "ServerOverloaded":
        return ServerOverloaded(message)
    candidate = getattr(builtins, name, None)
    if (
        isinstance(candidate, type)
        and issubclass(candidate, BaseException)
    ):
        return candidate(message)
    return RuntimeError(f"{name}: {message}")


class HttpServeClient(ServeClient):
    """:class:`~repro.serve.client.ServeClient`'s surface, over the wire.

    ``predict_nodes`` / ``predict_proba_nodes`` / ``predict_many`` /
    ``stats`` / ``ingest`` keep their in-process signatures and — via
    :func:`_rebuild_error` — their in-process exceptions.  Load-shed
    responses (503) are retried with the same bounded backoff and
    ``retried`` / ``dropped`` accounting as the in-process client.
    ``predict_many`` fans out over threads so the server's
    micro-batcher still sees concurrent requests arrive together.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.01,
    ):
        super().__init__(
            server=None, timeout=timeout, retries=retries, backoff_s=backoff_s
        )
        self.url = url.rstrip("/")

    # ------------------------------------------------------------- #
    # Wire plumbing
    # ------------------------------------------------------------- #

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """One wire round-trip.

        With tracing enabled the call runs under an
        ``http.client.<route>`` span and sends its context as the
        ``traceparent`` request header, so the server's spans join this
        client's trace.
        """
        if not TRACER.enabled:
            return self._request_impl(method, path, payload, timeout, None)
        route = path.lstrip("/") or "root"
        with TRACER.span(
            f"http.client.{route}", attrs={"method": method}
        ) as span:
            return self._request_impl(
                method, path, payload, timeout,
                format_traceparent(span.context),
            )

    def _request_impl(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]],
        timeout: Optional[float],
        traceparent: Optional[str],
    ) -> Dict[str, object]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, default=_jsonable).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if traceparent is not None:
            headers["traceparent"] = traceparent
        request = urllib.request.Request(
            self.url + path, data=body, headers=headers, method=method
        )
        deadline = self.timeout if timeout is None else timeout
        try:
            with urllib.request.urlopen(request, timeout=deadline) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                error = json.loads(raw)["error"]
                name, message = error["type"], error["message"]
            except (json.JSONDecodeError, KeyError, TypeError):
                name, message = "RuntimeError", f"HTTP {exc.code}: {raw[:200]}"
            raise _rebuild_error(name, message) from None

    def _predict_http(
        self, ids, proba: bool, timeout: Optional[float]
    ) -> np.ndarray:
        path = "/predict_proba" if proba else "/predict"
        payload = {"ids": np.asarray(ids).tolist()}
        body = self._with_shed_retry(
            lambda: self._request("POST", path, payload, timeout=timeout)
        )
        if proba:
            return np.asarray(body["proba"], dtype=np.float64).reshape(
                body["shape"]
            )
        return np.asarray(body["labels"], dtype=np.int64)

    # ------------------------------------------------------------- #
    # ServeClient surface
    # ------------------------------------------------------------- #

    def predict_nodes(
        self, ids, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Blocking label query over HTTP (with shed-retry)."""
        return self._predict_http(ids, proba=False, timeout=timeout)

    def predict_proba_nodes(
        self, ids, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Blocking probability query over HTTP (with shed-retry)."""
        return self._predict_http(ids, proba=True, timeout=timeout)

    def predict_many(
        self, requests: Sequence, timeout: Optional[float] = None
    ) -> List[np.ndarray]:
        """Fan label queries out concurrently; gather in order.

        Each request rides its own thread so they are in flight
        together — the server-side micro-batcher coalesces them exactly
        as it does for concurrent in-process submitters.
        """
        results: List[Optional[np.ndarray]] = [None] * len(requests)
        errors: List[Optional[BaseException]] = [None] * len(requests)

        def run(index: int, ids) -> None:
            try:
                results[index] = self._predict_http(
                    ids, proba=False, timeout=timeout
                )
            except BaseException as exc:  # re-raised in submission order
                errors[index] = exc

        threads = [
            threading.Thread(target=run, args=(index, ids), daemon=True)
            for index, ids in enumerate(requests)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for error in errors:
            if error is not None:
                raise error
        return results

    def stats(self) -> Dict[str, object]:
        """The wrapped server's ``stats()``, fetched over the wire."""
        return self._request("GET", "/stats")

    def metrics_text(self) -> str:
        """The server's ``GET /metrics`` Prometheus page, as raw text."""
        request = urllib.request.Request(self.url + "/metrics", method="GET")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def healthz(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (urllib.error.URLError, OSError, RuntimeError):
            return False

    def ingest(self, delta) -> Dict[str, object]:
        """Apply an :class:`repro.hin.graph.EdgeDelta` over the wire."""
        payload = {
            "relation": delta.relation,
            "add_src": delta.add_src.tolist(),
            "add_dst": delta.add_dst.tolist(),
            "remove_src": delta.remove_src.tolist(),
            "remove_dst": delta.remove_dst.tolist(),
        }
        return self._request("POST", "/ingest", payload)
