"""In-process client for :class:`repro.serve.ModelServer`.

A thin, ergonomic face over ``server.submit``: blocking single queries,
bulk fan-out with shared deadlines, and polite handling of load-shed
(bounded retry with backoff).  It exists so example/benchmark code — and
any embedding application — talks to the server the way a remote client
would (opaque requests, futures, timeouts) without inventing its own
retry loop each time; a future network front-end can keep this exact
surface.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.serve.server import ServerOverloaded


class ServeClient:
    """Issue queries against a running server (thread- or process-based).

    Parameters
    ----------
    server:
        Anything with ``submit(ids, proba=...) -> future`` —
        :class:`~repro.serve.server.ModelServer` or
        :class:`~repro.serve.server.ProcessReplicaServer`.
    timeout:
        Default per-request deadline in seconds.
    retries / backoff_s:
        How often (and how patiently) to retry when admission control
        sheds the request.  Retries apply *only* to
        :class:`~repro.serve.server.ServerOverloaded` — a request the
        server rejected as invalid is re-raised immediately, unchanged.
    """

    def __init__(
        self,
        server,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.01,
    ):
        self.server = server
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        #: Requests that were shed at least once before being admitted.
        self.retried = 0
        #: Requests dropped after exhausting every retry.
        self.dropped = 0

    def _with_shed_retry(self, attempt_fn):
        """Run ``attempt_fn`` with bounded exponential backoff on shed.

        The one retry loop both transports share: the in-process client
        wraps ``server.submit``, the HTTP client
        (:class:`repro.serve.http.HttpServeClient`) wraps a POST whose
        503 is rebuilt into the same :class:`ServerOverloaded`.  Only
        load-shed is retried — any other error is the request's own and
        re-raises immediately, unchanged.
        """
        delay = self.backoff_s
        for attempt in range(self.retries + 1):
            try:
                return attempt_fn()
            except ServerOverloaded:
                if attempt == self.retries:
                    self.dropped += 1
                    raise
                self.retried += 1
                time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")

    def _submit(self, ids, proba: bool):
        return self._with_shed_retry(
            lambda: self.server.submit(ids, proba=proba)
        )

    def predict_nodes(
        self, ids, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Blocking label query (with shed-retry)."""
        future = self._submit(ids, proba=False)
        return future.result(self.timeout if timeout is None else timeout)

    def predict_proba_nodes(
        self, ids, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Blocking probability query (with shed-retry)."""
        future = self._submit(ids, proba=True)
        return future.result(self.timeout if timeout is None else timeout)

    def predict_many(
        self, requests: Sequence, timeout: Optional[float] = None
    ) -> List[np.ndarray]:
        """Fan a list of id arrays out concurrently; gather in order.

        All requests are submitted before any result is awaited, so the
        server's micro-batcher sees them together — this is the call
        that turns client-side concurrency into server-side batches.
        """
        futures = [self._submit(ids, proba=False) for ids in requests]
        deadline = self.timeout if timeout is None else timeout
        return [future.result(deadline) for future in futures]
