"""Request coalescing: many small queries → one union sliced forward.

:class:`BatchPlanner` is the pure (threadless) half of the serving
subsystem: given a batch of ``predict_nodes``-shaped requests it
validates each one *independently*, coalesces the valid ids into a
single receptive-field union slice via
:meth:`repro.api.ModelHandle.forward_many`, and scatters the answers
back per request.  :class:`repro.serve.server.ModelServer` feeds it the
micro-batches its scheduler forms; tests drive it directly to pin the
equivalence guarantee: batched ≡ sequential — labels bit-identical,
probabilities to ~1 ulp (see :mod:`repro.api.serving`), and the same
requests erroring with the same messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np


@dataclass
class BatchItem:
    """One request inside a planned batch."""

    ids: Optional[np.ndarray]   # validated ids (None when invalid)
    proba: bool                 # probabilities (True) or labels (False)
    error: Optional[Exception]  # the validation error, verbatim


class BatchPlanner:
    """Coalesce many per-node queries into one union forward.

    Per-request isolation is the whole point: requests are validated
    one at a time with :meth:`~repro.api.ModelHandle.check_ids` — the
    same call (hence the same error types and messages) the sequential
    path uses — and a request that fails validation is answered with
    its own exception while every other request in the batch proceeds
    untouched.  Valid requests then share a single sliced forward, so a
    batch of B requests costs one receptive-field gather and one model
    forward instead of B.
    """

    def __init__(self, handle):
        self.handle = handle

    def plan(self, requests: Sequence, validated: bool = False) -> List[BatchItem]:
        """Validate a batch; ``requests`` holds id arrays or (ids, proba).

        ``validated=True`` trusts the arrays (the servers validate at
        ``submit`` with the same ``check_ids``, so re-scanning every
        request on the hot path would only repeat work); direct callers
        leave it False and get per-request error isolation.
        """
        items: List[BatchItem] = []
        for request in requests:
            if isinstance(request, tuple):
                ids, proba = request
            else:
                ids, proba = request, False
            if validated:
                items.append(
                    BatchItem(
                        ids=np.asarray(ids, dtype=np.int64),
                        proba=bool(proba),
                        error=None,
                    )
                )
                continue
            try:
                items.append(
                    BatchItem(
                        ids=self.handle.check_ids(ids),
                        proba=bool(proba),
                        error=None,
                    )
                )
            except (TypeError, IndexError, ValueError) as exc:
                items.append(BatchItem(ids=None, proba=bool(proba), error=exc))
        return items

    def run(
        self,
        requests: Sequence,
        validated: bool = False,
        return_generation: bool = False,
    ):
        """Answer a batch; each slot is a result array OR an exception.

        Label requests get ``argmax`` over the shared logits, proba
        requests a softmax — both computed from the *same* union forward,
        so mixing request kinds in one batch never costs a second pass.
        ``validated`` is forwarded to :meth:`plan`.

        ``return_generation=True`` returns ``(answers, generation)``:
        the exact operator generation the union forward ran against
        (see :meth:`repro.api.ModelHandle.forward_many`), which the
        server's hot-query cache uses as its invalidation key.
        """
        from repro.eval.metrics import softmax

        items = self.plan(requests, validated=validated)
        valid = [item for item in items if item.error is None]
        logits_list, generation = self.handle.forward_many(
            [item.ids for item in valid], validated=True,
            return_generation=True,
        )
        answered = iter(logits_list)
        out: List[Union[np.ndarray, Exception]] = []
        for item in items:
            if item.error is not None:
                out.append(item.error)
                continue
            logits = next(answered)
            if item.proba:
                out.append(softmax(logits))
            elif logits.size:
                out.append(logits.argmax(axis=1))
            else:
                out.append(np.empty(0, dtype=np.int64))
        return (out, generation) if return_generation else out
