"""Repo-specific invariant checkers for ``python -m repro.analysis``.

Per-file rules, one per invariant the concurrent and streaming tiers
rest on — plus the interprocedural concurrency rules re-exported from
:mod:`repro.analysis.interproc` (``lock-order``,
``blocking-under-lock``, ``future-resolution``: cross-module checks
over the call-graph/CFG substrate in :mod:`repro.analysis.graph` and
:mod:`repro.analysis.flow`) and the ``unused-suppression`` audit.

``lock-discipline``
    Attributes declared ``# guarded-by: <lock>`` must only be read or
    written inside a ``with self.<lock>:`` block in methods of the
    declaring class.  Catches the classic "stats read outside the lock"
    drift before it becomes a torn-read bug under serving load.

``fingerprint-completeness``
    A method marked ``# fingerprint-stage: <stage>`` may only read
    config fields covered by that stage's *cumulative* fingerprint
    (``STAGE_FIELDS`` in ``repro.api.artifacts``).  An uncovered read
    means two configs differing in that field map to one artifact key —
    the pipeline silently serves stale artifacts.

``determinism``
    No module-level ``np.random.*`` calls (import-time shared RNG
    state), no unseeded ``default_rng()`` anywhere, and inside
    key/hash/fingerprint-building functions no wall-clock reads and no
    ``json.dumps`` without ``sort_keys=True`` (dict iteration order must
    never reach a content key).

``csr-canonical``
    Constructing ``csr_matrix((data, indices, indptr))`` from raw
    components without sorting: the mmap sidecar tier persists CSR
    as-is and marks mapped replicas pre-sorted
    (:func:`repro.hin.cache.csr_from_components`), so an unsorted
    product poisons every zero-copy reader.  Either call
    ``.sort_indices()`` on the result or build through
    ``csr_from_components`` (whose caller contract is sortedness).

``delta-discipline``
    HIN edge storage (``_biadjacency`` entries, or matrices returned by
    ``relation_matrix``) must never be mutated outside
    :class:`repro.hin.graph.HIN` — all edits go through ``apply_delta``,
    which bumps the graph version, records touched rows, and keeps the
    delta-chained content hash honest.  A direct array write silently
    desynchronizes every cached product, artifact key, and live serving
    generation derived from the graph.

Every rule honors ``# repro: ignore[rule-id]`` line suppressions.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Finding,
    Rule,
    SourceFile,
    fingerprint_stage_markers,
    guarded_attributes_from_source,
)


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of a call target (``''`` when dynamic)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_self_attr(node: ast.expr, attr: Optional[str] = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


# ---------------------------------------------------------------------- #
# lock-discipline
# ---------------------------------------------------------------------- #


class LockDisciplineRule(Rule):
    """``# guarded-by:`` attributes only touched under their lock."""

    rule_id = "lock-discipline"
    description = (
        "guarded attributes must be accessed inside 'with self.<lock>:' "
        "in methods of the declaring class"
    )

    #: Methods where unguarded access is allowed: the object is not yet
    #: (or no longer) visible to other threads.
    EXEMPT_METHODS = ("__init__", "__del__", "__new__")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _check_class(
        self, source: SourceFile, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        guarded = guarded_attributes_from_source(source.lines, class_node)
        if not guarded:
            return
        for item in class_node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in self.EXEMPT_METHODS:
                continue
            yield from self._check_scope(source, item.body, guarded, set(), item.name)

    def _with_locks(self, node: ast.With) -> Set[str]:
        """Lock names a ``with`` statement acquires (``self.<lock>:``)."""
        names: Set[str] = set()
        for with_item in node.items:
            expr = with_item.context_expr
            if isinstance(expr, ast.Attribute) and isinstance(
                expr.value, ast.Name
            ):
                if expr.value.id == "self":
                    names.add(expr.attr)
            elif isinstance(expr, ast.Name):
                names.add(expr.id)
        return names

    def _check_scope(
        self,
        source: SourceFile,
        body: Sequence[ast.stmt],
        guarded: Dict[str, str],
        held: Set[str],
        method: str,
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, ast.With):
                inner = held | (self._with_locks(stmt) & set(guarded.values()))
                yield from self._check_exprs(source, stmt.items, guarded, held, method)
                yield from self._check_scope(source, stmt.body, guarded, inner, method)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function may run later, outside the enclosing
                # lock scope: analyze it with nothing held (conservative).
                yield from self._check_scope(
                    source, stmt.body, guarded, set(), method
                )
            elif isinstance(stmt, (ast.If, ast.While, ast.For, ast.Try)):
                for field_name in ("body", "orelse", "finalbody"):
                    yield from self._check_scope(
                        source, getattr(stmt, field_name, []) or [],
                        guarded, held, method,
                    )
                for handler in getattr(stmt, "handlers", []) or []:
                    yield from self._check_scope(
                        source, handler.body, guarded, held, method
                    )
                yield from self._check_exprs(source, [stmt], guarded, held, method, shallow=True)
            else:
                yield from self._check_exprs(source, [stmt], guarded, held, method)

    def _check_exprs(
        self,
        source: SourceFile,
        nodes: Sequence[ast.AST],
        guarded: Dict[str, str],
        held: Set[str],
        method: str,
        shallow: bool = False,
    ) -> Iterator[Finding]:
        """Flag guarded ``self.<attr>`` accesses not under their lock.

        ``shallow`` checks only a compound statement's *test/iter*
        expressions — its nested blocks are walked separately with the
        correct held-set.
        """
        for node in nodes:
            if shallow:
                exprs: List[ast.AST] = []
                for attr in ("test", "iter", "subject"):
                    child = getattr(node, attr, None)
                    if child is not None:
                        exprs.append(child)
            else:
                exprs = [node]
            for expr in exprs:
                for sub in ast.walk(expr):
                    if not _is_self_attr(sub):
                        continue
                    lock = guarded.get(sub.attr)
                    if lock is None or lock in held:
                        continue
                    found = self.finding(
                        source,
                        sub,
                        f"'self.{sub.attr}' is guarded-by '{lock}' but "
                        f"accessed outside 'with self.{lock}:' in "
                        f"method '{method}'",
                    )
                    if found is not None:
                        yield found


# ---------------------------------------------------------------------- #
# fingerprint-completeness
# ---------------------------------------------------------------------- #


class FingerprintCompletenessRule(Rule):
    """Stage methods read only fingerprint-covered config fields."""

    rule_id = "fingerprint-completeness"
    description = (
        "config fields read by a '# fingerprint-stage:' method must be in "
        "that stage's cumulative STAGE_FIELDS fingerprint"
    )

    #: Pure performance knobs, exempt by design: they cannot change any
    #: stage output (PR 3's eviction/disk equivalence pins that), and
    #: keying on them would break resume across machines.  Mirrors the
    #: exclusion list in ``repro.api.artifacts.config_fingerprint``.
    PERF_EXEMPT = ("cache_dir", "cache_memory_budget")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        markers = fingerprint_stage_markers(source)
        if not markers:
            return
        stage_fields = self._load_stage_fields(source)
        if stage_fields is None:
            yield Finding(
                file=str(source.path), line=1, rule=self.rule_id,
                message=(
                    "file declares '# fingerprint-stage:' markers but no "
                    "STAGE_FIELDS dict literal was found here or in a "
                    "sibling artifacts.py"
                ),
            )
            return
        fields_by_stage, order = stage_fields
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stage = markers.get(node.name)
            if stage is None:
                continue
            if stage not in fields_by_stage:
                found = self.finding(
                    source, node,
                    f"unknown fingerprint stage {stage!r}; STAGE_FIELDS "
                    f"declares {sorted(fields_by_stage)}",
                )
                if found is not None:
                    yield found
                continue
            covered: Set[str] = set()
            for name in order:
                covered.update(fields_by_stage.get(name, ()))
                if name == stage:
                    break
            if "*" in covered:
                continue
            covered.update(self.PERF_EXEMPT)
            for read_node, field_name in self._config_reads(node):
                if field_name in covered or field_name.startswith("_"):
                    continue
                found = self.finding(
                    source,
                    read_node,
                    f"config field '{field_name}' read by stage "
                    f"'{stage}' is not covered by its cumulative "
                    f"fingerprint (STAGE_FIELDS) — under-keying serves "
                    f"stale artifacts",
                )
                if found is not None:
                    yield found

    def _load_stage_fields(
        self, source: SourceFile
    ) -> Optional[Tuple[Dict[str, Tuple[str, ...]], List[str]]]:
        """``STAGE_FIELDS`` (+ order) from this file or sibling artifacts.py."""
        parsed = self._stage_fields_from_tree(source.tree)
        if parsed is not None:
            return parsed
        sibling = source.path.parent / "artifacts.py"
        try:
            tree = ast.parse(sibling.read_text())
        except (OSError, SyntaxError):
            return None
        return self._stage_fields_from_tree(tree)

    @staticmethod
    def _stage_fields_from_tree(
        tree: ast.AST,
    ) -> Optional[Tuple[Dict[str, Tuple[str, ...]], List[str]]]:
        fields: Optional[Dict[str, Tuple[str, ...]]] = None
        order: Optional[List[str]] = None
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            names = {t.id for t in targets if isinstance(t, ast.Name)}
            if "STAGE_FIELDS" in names and isinstance(node.value, ast.Dict):
                parsed: Dict[str, Tuple[str, ...]] = {}
                for key_node, value_node in zip(
                    node.value.keys, node.value.values
                ):
                    if not (
                        isinstance(key_node, ast.Constant)
                        and isinstance(key_node.value, str)
                    ):
                        return None
                    if not isinstance(value_node, (ast.Tuple, ast.List)):
                        return None
                    entries = []
                    for element in value_node.elts:
                        if not (
                            isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        ):
                            return None
                        entries.append(element.value)
                    parsed[key_node.value] = tuple(entries)
                fields = parsed
            if "_STAGE_ORDER" in names and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                order = [
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
        if fields is None:
            return None
        return fields, order if order is not None else list(fields)

    @staticmethod
    def _config_reads(
        func: ast.AST,
    ) -> Iterator[Tuple[ast.Attribute, str]]:
        """``(node, field)`` for every config-field read in ``func``.

        Covers direct ``self.config.<field>`` chains and local aliases
        (``config = self.config`` then ``config.<field>``), including
        inside nested ``build()`` closures.
        """
        aliases: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and _is_self_attr(
                node.value, "config"
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        for node in ast.walk(func):
            if not isinstance(node, ast.Attribute):
                continue
            base = node.value
            if _is_self_attr(base, "config"):
                yield node, node.attr
            elif isinstance(base, ast.Name) and base.id in aliases:
                yield node, node.attr


# ---------------------------------------------------------------------- #
# determinism
# ---------------------------------------------------------------------- #


class DeterminismRule(Rule):
    """No import-time RNG, no wall-clock / dict-order in content keys."""

    rule_id = "determinism"
    description = (
        "no module-level np.random calls, no unseeded default_rng(), no "
        "wall-clock or unsorted-dict serialization in key/hash builders"
    )

    #: Function-name pattern marking key/hash/fingerprint builders.
    KEY_FUNC_RE = re.compile(r"hash|fingerprint|digest|cache_key|stage_key")

    #: Wall-clock call targets that must never flow into a content key.
    WALL_CLOCK = {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }

    _RANDOM_RE = re.compile(r"^(np|numpy)\.random\.")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        in_function_body: Set[int] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for stmt in node.body:
                    for sub in ast.walk(stmt):
                        in_function_body.add(id(sub))
            elif isinstance(node, ast.Lambda):
                for sub in ast.walk(node.body):
                    in_function_body.add(id(sub))
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if not name:
                continue
            module_level = id(node) not in in_function_body
            if module_level and (
                self._RANDOM_RE.search(name)
                or name.split(".")[-1] == "default_rng"
            ):
                found = self.finding(
                    source, node,
                    f"module-level RNG call '{name}(...)' creates shared "
                    f"random state at import time; construct a seeded "
                    f"Generator inside the function that uses it",
                )
                if found is not None:
                    yield found
                continue
            if name.split(".")[-1] == "default_rng" and not (
                node.args or node.keywords
            ):
                found = self.finding(
                    source, node,
                    "unseeded default_rng() draws from OS entropy — every "
                    "run differs; pass an explicit seed",
                )
                if found is not None:
                    yield found
        yield from self._check_key_functions(source)

    def _check_key_functions(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self.KEY_FUNC_RE.search(node.name):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                name = _dotted(sub.func)
                if name in self.WALL_CLOCK:
                    found = self.finding(
                        source, sub,
                        f"wall-clock read '{name}()' inside key builder "
                        f"'{node.name}' — clocks must never flow into "
                        f"content keys",
                    )
                    if found is not None:
                        yield found
                elif name.split(".")[-1] == "dumps" and name.startswith("json"):
                    sort_keys = any(
                        keyword.arg == "sort_keys"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                        for keyword in sub.keywords
                    )
                    if not sort_keys:
                        found = self.finding(
                            source, sub,
                            f"json.dumps without sort_keys=True inside key "
                            f"builder '{node.name}' — dict iteration order "
                            f"would leak into the content key",
                        )
                        if found is not None:
                            yield found


# ---------------------------------------------------------------------- #
# csr-canonical
# ---------------------------------------------------------------------- #


class CSRCanonicalRule(Rule):
    """Raw-component CSR construction must sort (the mmap-tier contract)."""

    rule_id = "csr-canonical"
    description = (
        "csr_matrix((data, indices, indptr)) requires a following "
        ".sort_indices() (or build via csr_from_components)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for func in ast.walk(source.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(source, func)

    def _check_function(
        self, source: SourceFile, func: ast.AST
    ) -> Iterator[Finding]:
        sorted_names: Dict[str, List[int]] = {}
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "sort_indices"
                and isinstance(node.func.value, ast.Name)
            ):
                sorted_names.setdefault(node.func.value.id, []).append(
                    node.lineno
                )
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) and not isinstance(
                node, (ast.Return, ast.Expr)
            ):
                continue
            value = getattr(node, "value", None)
            call = self._component_csr_call(value)
            if call is None:
                continue
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if any(
                    any(line > call.lineno for line in sorted_names.get(t, []))
                    for t in targets
                ):
                    continue
            found = self.finding(
                source,
                call,
                "csr_matrix built from raw (data, indices, indptr) "
                "components without a following .sort_indices(); the "
                "mmap tier persists CSR as-is and marks mapped replicas "
                "pre-sorted (csr_from_components), so an unsorted "
                "product corrupts every zero-copy reader",
            )
            if found is not None:
                yield found

    @staticmethod
    def _component_csr_call(value: Optional[ast.AST]) -> Optional[ast.Call]:
        if not isinstance(value, ast.Call):
            return None
        name = _dotted(value.func).split(".")[-1]
        if name not in ("csr_matrix", "csc_matrix"):
            return None
        if not value.args:
            return None
        first = value.args[0]
        if isinstance(first, ast.Tuple) and len(first.elts) == 3:
            return value
        return None


# ---------------------------------------------------------------------- #
# delta-discipline
# ---------------------------------------------------------------------- #


class DeltaDisciplineRule(Rule):
    """HIN edge arrays are only mutated through ``HIN.apply_delta``."""

    rule_id = "delta-discipline"
    description = (
        "edge storage (_biadjacency / relation_matrix results) must not "
        "be mutated outside HIN; route edits through apply_delta"
    )

    #: Classes whose bodies own the storage and may rebuild it.
    EXEMPT_CLASSES = ("HIN",)

    #: In-place scipy.sparse methods that rewrite the component arrays.
    MUTATING_METHODS = frozenset(
        {
            "sum_duplicates",
            "eliminate_zeros",
            "setdiag",
            "sort_indices",
            "sorted_indices",
            "prune",
            "resize",
        }
    )

    #: Conversions that *share* the receiver's buffers (``tocsr`` on a
    #: CSR returns the same object; ``tocoo`` views the same data array),
    #: so an alias through them still reaches graph-owned storage.
    ALIAS_PASSTHROUGH = frozenset({"tocsr", "tocoo", "tocsc"})

    def check(self, source: SourceFile) -> Iterator[Finding]:
        exempt: Set[int] = set()
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in self.EXEMPT_CLASSES
            ):
                for sub in ast.walk(node):
                    exempt.add(id(sub))
        yield from self._check_scope(source, source.tree.body, set(), exempt)

    def _suspicious(self, node: ast.expr, aliases: Set[str]) -> bool:
        """Does this expression chain reach graph-owned edge storage?"""
        while True:
            if isinstance(node, ast.Attribute):
                if node.attr == "_biadjacency":
                    return True
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr == "relation_matrix":
                        return True
                    if func.attr in self.ALIAS_PASSTHROUGH:
                        node = func.value
                        continue
                return False
            elif isinstance(node, ast.Name):
                return node.id in aliases
            else:
                return False

    def _check_scope(
        self,
        source: SourceFile,
        body: Sequence[ast.stmt],
        aliases: Set[str],
        exempt: Set[int],
    ) -> Iterator[Finding]:
        """Walk statements in source order, tracking matrix aliases.

        ``aliases`` holds local names currently bound to graph-owned
        matrices; a rebinding to anything else (``m = m.copy()``) drops
        the name, so the io.py sort-a-copy idiom stays clean.
        """
        for stmt in body:
            if id(stmt) in exempt:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(
                    source, stmt.body, set(), exempt
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._check_scope(
                    source, stmt.body, set(), exempt
                )
                continue
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.Delete)):
                yield from self._check_stores(source, stmt, aliases)
            if isinstance(stmt, ast.Assign):
                live = self._suspicious(stmt.value, aliases)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if live:
                            aliases.add(target.id)
                        else:
                            aliases.discard(target.id)
            # Compound statements: check only their own expressions here
            # (tests, iterables, with-items) — their blocks are walked
            # above/below with the live alias set, so a full ast.walk
            # would double-report every nested call.
            if isinstance(stmt, (ast.If, ast.While, ast.For, ast.With, ast.Try)):
                shallow: List[ast.AST] = []
                for attr in ("test", "iter"):
                    child = getattr(stmt, attr, None)
                    if child is not None:
                        shallow.append(child)
                for with_item in getattr(stmt, "items", []) or []:
                    shallow.append(with_item.context_expr)
                for expr in shallow:
                    yield from self._check_calls(source, expr, aliases)
            else:
                yield from self._check_calls(source, stmt, aliases)
            for field_name in ("body", "orelse", "finalbody"):
                child = getattr(stmt, field_name, None)
                if isinstance(child, list) and child and isinstance(
                    child[0], ast.stmt
                ):
                    yield from self._check_scope(
                        source, child, aliases, exempt
                    )
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._check_scope(
                    source, handler.body, aliases, exempt
                )

    def _check_stores(
        self,
        source: SourceFile,
        stmt: ast.stmt,
        aliases: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        else:
            targets = list(stmt.targets)  # Delete
        for target in targets:
            if not isinstance(target, (ast.Subscript, ast.Attribute)):
                continue
            if not self._suspicious(target, aliases):
                continue
            found = self.finding(
                source,
                target,
                "direct mutation of HIN edge storage outside apply_delta "
                "— the graph version, touched-row log, and chained "
                "content hash all go stale; apply an EdgeDelta instead",
            )
            if found is not None:
                yield found

    def _check_calls(
        self,
        source: SourceFile,
        stmt: ast.stmt,
        aliases: Set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in self.MUTATING_METHODS:
                continue
            if not self._suspicious(func.value, aliases):
                continue
            found = self.finding(
                source,
                node,
                f"in-place '{func.attr}()' on HIN edge storage outside "
                f"apply_delta — copy first, or apply an EdgeDelta",
            )
            if found is not None:
                yield found


class UnusedSuppressionRule(Rule):
    """Audit: every ``# repro: ignore[...]`` must shield a finding.

    The logic lives in :func:`repro.analysis.core.analyze_paths` (it
    needs the usage record every *other* rule leaves behind, across the
    whole run, cache hits included); this class is the registry entry
    that makes the audit selectable via ``--rules`` and visible in
    ``--list-rules``.  A suppression is only judged when all the rules
    it names actually ran — a blanket ``# repro: ignore`` requires the
    full default rule set — so a filtered run never misreports.
    """

    rule_id = "unused-suppression"
    description = (
        "every '# repro: ignore[...]' comment must shield at least one "
        "finding of a rule that ran — stale suppressions silently rot "
        "the gate"
    )
    is_audit = True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        return iter(())


from repro.analysis.interproc import (  # noqa: E402  (registry import)
    BlockingUnderLockRule,
    FutureResolutionRule,
    LockOrderRule,
)

#: Registry consumed by :func:`repro.analysis.core.default_rules`.
ALL_RULES = (
    LockDisciplineRule,
    FingerprintCompletenessRule,
    DeterminismRule,
    CSRCanonicalRule,
    DeltaDisciplineRule,
    LockOrderRule,
    BlockingUnderLockRule,
    FutureResolutionRule,
    UnusedSuppressionRule,
)
