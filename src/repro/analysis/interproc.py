"""Cross-module concurrency rules over the graph/flow substrate.

Three checkers, each the static twin of a failure class PR 8 hit (or
nearly hit) at runtime:

``lock-order``
    Builds the project-wide lock acquisition-order graph — an edge
    A -> B whenever B is acquired while A is held, both from direct
    lexical nesting and from calls made under a lock into functions
    whose transitive closure acquires other locks — and reports every
    cycle.  This is exactly the edge map the runtime
    :class:`repro.analysis.sanitizer.TracedLock` maintains, computed
    over *all* paths instead of only the ones a test happened to drive.

``blocking-under-lock``
    Flags blocking operations (unbounded ``queue.get/put``,
    ``time.sleep``, file/socket IO, ``subprocess``, zero-timeout
    ``join``/``wait``/``result``, engine compose entry points) executed
    — directly or through resolvable call chains — while a
    ``# guarded-by:`` lock is statically held.  Guarded locks are the
    hot serving-path locks; a disk write or queue wait under one stalls
    every request behind it.

``future-resolution``
    Path-sensitive, per function, over the exception-edged CFG of
    :func:`repro.analysis.flow.build_cfg`.  Two obligations for every
    created future: (a) no path may reach a *normal* return leaving the
    future neither resolved (``_finish``/``set_result``/
    ``set_exception``) nor handed off to an owner (stored into a
    container/attribute or passed to a call) — paths that leave by
    ``raise`` are fine, the caller never received the future; (b) in a
    class with a stop event (``threading.Event``) and a drain method,
    every path from a queue publish to a normal return must re-check the
    stop flag and route to a resolver — the exact
    ``ModelServer.submit``/``stop`` race PR 8 fixed, kept fixed by the
    gate.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, ProjectRule, Rule, SourceFile
from repro.analysis.flow import build_cfg, reach_avoiding

__all__ = [
    "BlockingUnderLockRule",
    "FutureResolutionRule",
    "LockOrderRule",
]

#: Methods that settle a future.
_RESOLVERS = {"_finish", "set_result", "set_exception", "cancel"}


def _short(token: str) -> str:
    """Class-qualified tail of a lock token for readable messages."""
    parts = token.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else token


def _dotted(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ---------------------------------------------------------------------- #
# lock-order
# ---------------------------------------------------------------------- #


class LockOrderRule(ProjectRule):
    """Cycles in the project-wide lock acquisition-order graph."""

    rule_id = "lock-order"
    description = (
        "held-lock sets propagated through the call graph must induce an "
        "acyclic project-wide lock acquisition order (static deadlock "
        "freedom, the compile-time twin of TracedLock's inversion check)"
    )

    def check_project(self, graph) -> Iterator[Finding]:
        edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
        for fqn in sorted(graph.functions):
            fn, fs = graph.functions[fqn]
            for token, held, line in fn.acquisitions:
                for holder in held:
                    if holder != token:
                        edges.setdefault(
                            (holder, token),
                            (fs.path, line,
                             f"{fqn} acquires {_short(token)} while "
                             f"holding {_short(holder)}"),
                        )
            for kind, target, held, line in fn.calls:
                if not held:
                    continue
                callee = graph.resolve_call(fqn, kind, target)
                if callee is None:
                    continue
                for token in sorted(graph.acquired_closure(callee)):
                    for holder in held:
                        if holder != token:
                            edges.setdefault(
                                (holder, token),
                                (fs.path, line,
                                 f"{fqn} calls {callee} (which may "
                                 f"acquire {_short(token)}) while "
                                 f"holding {_short(holder)}"),
                            )
        edges = {
            pair: witness
            for pair, witness in edges.items()
            if not graph.is_suppressed(self.rule_id, witness[0], witness[1])
        }
        adjacency: Dict[str, List[str]] = {}
        for src, dst in edges:
            adjacency.setdefault(src, []).append(dst)
            adjacency.setdefault(dst, [])
        reported: Set[frozenset] = set()
        for start in sorted(adjacency):
            cycle = self._cycle_through(start, adjacency)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            steps = []
            for index, node in enumerate(cycle):
                nxt = cycle[(index + 1) % len(cycle)]
                path, line, desc = edges[(node, nxt)]
                steps.append(
                    f"{_short(node)} -> {_short(nxt)} ({path}:{line}: {desc})"
                )
            anchor = edges[(cycle[0], cycle[1 % len(cycle)])]
            yield Finding(
                file=anchor[0], line=anchor[1], rule=self.rule_id,
                message=(
                    "lock-order inversion cycle: " + "; ".join(steps)
                    + " — a globally consistent acquisition order is "
                    "required to rule out deadlock"
                ),
            )

    @staticmethod
    def _cycle_through(
        start: str, adjacency: Dict[str, List[str]]
    ) -> Optional[List[str]]:
        """Shortest cycle back to ``start`` (BFS), or None."""
        parents: Dict[str, Optional[str]] = {start: None}
        queue = [start]
        while queue:
            node = queue.pop(0)
            for succ in sorted(adjacency.get(node, ())):
                if succ == start:
                    path = [node]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                if succ not in parents:
                    parents[succ] = node
                    queue.append(succ)
        return None


# ---------------------------------------------------------------------- #
# blocking-under-lock
# ---------------------------------------------------------------------- #


class BlockingUnderLockRule(ProjectRule):
    """Blocking operations reachable while a guarded lock is held."""

    rule_id = "blocking-under-lock"
    description = (
        "no blocking operation (unbounded queue get/put, sleep, "
        "file/socket IO, subprocess, zero-timeout join/wait/result, "
        "engine compose) may run — directly or via resolvable calls — "
        "while a '# guarded-by:' lock is held"
    )

    def check_project(self, graph) -> Iterator[Finding]:
        for fqn in sorted(graph.functions):
            fn, fs = graph.functions[fqn]
            seen_lines: Set[int] = set()
            for kind, detail, held, line in fn.blocking:
                guarded = [h for h in held if h in graph.guarded_locks]
                if not guarded or line in seen_lines:
                    continue
                seen_lines.add(line)
                yield Finding(
                    file=fs.path, line=line, rule=self.rule_id,
                    message=(
                        f"blocking {kind} ({detail}) in {fqn} while "
                        f"holding guarded lock {_short(guarded[0])} — "
                        f"move it outside the critical section"
                    ),
                )
            for ckind, target, held, line in fn.calls:
                guarded = [h for h in held if h in graph.guarded_locks]
                if not guarded or line in seen_lines:
                    continue
                callee = graph.resolve_call(fqn, ckind, target)
                if callee is None:
                    continue
                hit = graph.find_blocking(callee)
                if hit is None:
                    continue
                bkind, detail, bpath, bline, chain = hit
                seen_lines.add(line)
                via = " -> ".join(chain)
                yield Finding(
                    file=fs.path, line=line, rule=self.rule_id,
                    message=(
                        f"call from {fqn} reaches blocking {bkind} "
                        f"({detail} at {bpath}:{bline}, via {via}) while "
                        f"holding guarded lock {_short(guarded[0])} — "
                        f"move the call outside the critical section"
                    ),
                )


# ---------------------------------------------------------------------- #
# future-resolution
# ---------------------------------------------------------------------- #


def _stmt_nodes(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement in ``body``, recursively, skipping nested defs."""
    for stmt in body:
        yield stmt
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for field_name in ("body", "orelse", "finalbody"):
            yield from _stmt_nodes(getattr(stmt, field_name, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _stmt_nodes(handler.body)


def _calls_in(root: ast.AST) -> Iterator[ast.Call]:
    """Call nodes under ``root``, skipping *nested* function bodies
    (the root itself may be a function definition)."""
    stack = [root]
    while stack:
        node = stack.pop()
        if node is not root and isinstance(
            node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _own_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The expressions executed *by this statement itself* — compound
    statements contribute only their headers, never their bodies (those
    are separate CFG nodes and must not be double-attributed)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []
    return [stmt]


def _own_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    for expr in _own_exprs(stmt):
        yield from _calls_in(expr)


def _names_in(expr: ast.AST) -> Set[str]:
    return {
        node.id for node in ast.walk(expr) if isinstance(node, ast.Name)
    }


class FutureResolutionRule(Rule):
    """Every created future resolves or is handed off on all CFG paths."""

    rule_id = "future-resolution"
    description = (
        "a Future created in a function must, on every control-flow "
        "path that returns normally (exception edges included), either "
        "be resolved (_finish/set_result/set_exception) or handed to an "
        "owner; queue publishes in stop-flagged classes must re-check "
        "the stop flag before returning (the PR-8 stranded-caller race)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(source, node, None, set())

    # ------------------------------------------------------------------ #

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        stop_events: Set[str] = set()
        resolves_direct: Set[str] = set()
        self_calls: Dict[str, Set[str]] = {}
        methods: List[ast.AST] = []
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            methods.append(stmt)
            calls: Set[str] = set()
            for call in _calls_in(stmt):
                dotted = _dotted(call.func)
                tail = dotted.rsplit(".", 1)[-1]
                if tail in _RESOLVERS and "." in dotted:
                    resolves_direct.add(stmt.name)
                if dotted.startswith("self.") and dotted.count(".") == 1:
                    calls.add(dotted.split(".", 1)[1])
            self_calls[stmt.name] = calls
            if stmt.name == "__init__":
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Assign) and isinstance(
                        sub.value, ast.Call
                    ):
                        ctor = _dotted(sub.value.func)
                        if ctor.rsplit(".", 1)[-1] == "Event":
                            for target in sub.targets:
                                if (
                                    isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"
                                ):
                                    stop_events.add(target.attr)
        # Transitive closure: a method that self-calls a resolver is one.
        resolvers = set(resolves_direct)
        changed = True
        while changed:
            changed = False
            for name, calls in self_calls.items():
                if name not in resolvers and calls & resolvers:
                    resolvers.add(name)
                    changed = True
        for method in methods:
            yield from self._check_function(
                source, method, stop_events or None, resolvers
            )

    # ------------------------------------------------------------------ #

    def _check_function(
        self,
        source: SourceFile,
        func: ast.AST,
        stop_events: Optional[Set[str]],
        resolvers: Set[str],
    ) -> Iterator[Finding]:
        creations: List[Tuple[str, ast.stmt]] = []
        for stmt in _stmt_nodes(func.body):
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            ctor = _dotted(stmt.value.func).rsplit(".", 1)[-1]
            if ctor.endswith("Future"):
                creations.append((stmt.targets[0].id, stmt))
        if not creations:
            return

        cfg = build_cfg(func)
        statements = list(_stmt_nodes(func.body))

        for var, create_stmt in creations:
            aliases = self._aliases(statements, var)
            resolve_nodes: Set[int] = set()
            handoff_nodes: Set[int] = set()
            for stmt in statements:
                if stmt is create_stmt:
                    continue
                node = cfg.node_for(stmt)
                if node is None:
                    continue
                if self._resolves(stmt, aliases):
                    resolve_nodes.add(id(node))
                elif self._hands_off(stmt, aliases):
                    handoff_nodes.add(id(node))
            create_node = cfg.node_for(create_stmt)
            if create_node is None:
                continue
            if reach_avoiding(
                create_node.succ, cfg.exit, resolve_nodes | handoff_nodes
            ):
                found = self.finding(
                    source, create_stmt,
                    f"future '{var}' can reach a normal return neither "
                    f"resolved (_finish/set_result/set_exception) nor "
                    f"handed to an owner — a caller waiting on it blocks "
                    f"forever (check every branch and exception edge)",
                )
                if found is not None:
                    yield found

        if stop_events:
            yield from self._check_publish_recheck(
                source, func, cfg, statements, stop_events, resolvers
            )

    @staticmethod
    def _aliases(statements: Sequence[ast.stmt], var: str) -> Set[str]:
        aliases = {var}
        changed = True
        while changed:
            changed = False
            for stmt in statements:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Name)
                    and stmt.value.id in aliases
                    and stmt.targets[0].id not in aliases
                ):
                    aliases.add(stmt.targets[0].id)
                    changed = True
        return aliases

    @staticmethod
    def _resolves(stmt: ast.stmt, aliases: Set[str]) -> bool:
        for call in _own_calls(stmt):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _RESOLVERS
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
            ):
                return True
        return False

    @staticmethod
    def _hands_off(stmt: ast.stmt, aliases: Set[str]) -> bool:
        # Stored into an attribute, a subscript, or a container — some
        # other owner is now responsible for resolving it.
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets
            ) and _names_in(stmt.value) & aliases:
                return True
        # Passed as an argument to any call (a constructor wrapping it,
        # an executor, a queue) — but a resolving call's *receiver* does
        # not count, and a bare ``return future`` never does: the caller
        # waits on the future, it does not settle it.
        for call in _own_calls(stmt):
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if _names_in(arg) & aliases:
                    return True
        return False

    # ------------------------------------------------------------------ #

    def _check_publish_recheck(
        self,
        source: SourceFile,
        func: ast.AST,
        cfg,
        statements: Sequence[ast.stmt],
        stop_events: Set[str],
        resolvers: Set[str],
    ) -> Iterator[Finding]:
        """After publishing to a ``self.*`` queue in a stop-flagged
        class, every normal-return path must re-check the stop event
        (routing to a drain/resolver) — otherwise ``stop()`` can drain
        the pending map *before* the publish and strand the future."""
        publishes: List[Tuple[ast.stmt, str]] = []
        rechecks: Set[int] = set()
        for stmt in statements:
            node = cfg.node_for(stmt)
            if node is None:
                continue
            for call in _own_calls(stmt):
                func_expr = call.func
                if not isinstance(func_expr, ast.Attribute):
                    continue
                if func_expr.attr in ("put", "put_nowait"):
                    receiver = _dotted(func_expr.value)
                    if receiver.startswith("self."):
                        publishes.append((stmt, receiver))
            if isinstance(stmt, ast.If):
                test_calls = {
                    _dotted(c.func) for c in _calls_in(stmt.test)
                }
                flagged = any(
                    d == f"self.{event}.is_set"
                    for d in test_calls for event in stop_events
                )
                if flagged and self._branch_resolves(stmt, resolvers):
                    rechecks.add(id(node))
        for stmt, receiver in publishes:
            node = cfg.node_for(stmt)
            if node is None:
                continue
            if reach_avoiding(node.succ, cfg.exit, rechecks):
                found = self.finding(
                    source, stmt,
                    f"publish to '{receiver}' can reach a normal return "
                    f"without re-checking the stop flag — stop() may "
                    f"have drained the pending futures before this "
                    f"publish, stranding the caller; re-check "
                    f"is_set() after the publish and fail pending "
                    f"futures (the PR-8 submit/stop race)",
                )
                if found is not None:
                    yield found

    @staticmethod
    def _branch_resolves(stmt: ast.If, resolvers: Set[str]) -> bool:
        for sub in stmt.body:
            for call in _calls_in(sub):
                dotted = _dotted(call.func)
                if not dotted.startswith("self."):
                    continue
                tail = dotted.rsplit(".", 1)[-1]
                if tail in resolvers or tail in _RESOLVERS:
                    return True
        return False
