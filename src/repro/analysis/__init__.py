"""``repro.analysis``: invariant lint framework + runtime thread-sanitizer.

Static tier (:mod:`repro.analysis.core` + :mod:`repro.analysis.rules`):
AST checkers enforcing the concurrency/caching invariants the serving
and pipeline tiers rest on — lock discipline (``# guarded-by:``),
fingerprint completeness (``# fingerprint-stage:``), determinism of
content-key inputs, and canonical CSR construction.  Run them with
``python -m repro.analysis``; ``tests/test_analysis_gate.py`` keeps the
repo at zero unsuppressed findings in the tier-1 lane.

Dynamic tier (:mod:`repro.analysis.sanitizer`): instrumented locks and
guarded-attribute tracers that catch lock-order inversions and
unguarded cross-thread access under real load, driven by the *same*
``# guarded-by:`` annotations the static rules read.
"""

from repro.analysis.core import (
    AnalysisResult,
    Finding,
    Rule,
    SourceFile,
    analyze_paths,
    collect_guarded,
    default_rules,
    iter_python_files,
)
from repro.analysis.rules import (
    ALL_RULES,
    CSRCanonicalRule,
    DeterminismRule,
    FingerprintCompletenessRule,
    LockDisciplineRule,
)
from repro.analysis.sanitizer import (
    GuardedDeque,
    GuardedDict,
    GuardedOrderedDict,
    RaceReport,
    ThreadSanitizer,
    TracedLock,
    instrument,
)

__all__ = [
    "ALL_RULES",
    "AnalysisResult",
    "CSRCanonicalRule",
    "DeterminismRule",
    "Finding",
    "FingerprintCompletenessRule",
    "GuardedDeque",
    "GuardedDict",
    "GuardedOrderedDict",
    "LockDisciplineRule",
    "RaceReport",
    "Rule",
    "SourceFile",
    "ThreadSanitizer",
    "TracedLock",
    "analyze_paths",
    "collect_guarded",
    "default_rules",
    "instrument",
    "iter_python_files",
]
