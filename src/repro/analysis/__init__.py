"""``repro.analysis``: invariant lint framework + runtime thread-sanitizer.

Static tier (:mod:`repro.analysis.core` + :mod:`repro.analysis.rules`):
AST checkers enforcing the concurrency/caching invariants the serving
and pipeline tiers rest on — lock discipline (``# guarded-by:``),
fingerprint completeness (``# fingerprint-stage:``), determinism of
content-key inputs, and canonical CSR construction.  Run them with
``python -m repro.analysis``; ``tests/test_analysis_gate.py`` keeps the
repo at zero unsuppressed findings in the tier-1 lane.

Interprocedural tier (:mod:`repro.analysis.graph` +
:mod:`repro.analysis.flow` + :mod:`repro.analysis.interproc`): a
project-wide substrate — per-file summaries joined into a symbol table
and conservative call graph, per-function CFGs with exception edges,
and a held-lock dataflow lattice — carrying three rules single-file
pattern matching cannot express: ``lock-order`` (cycles in the
acquisition-order graph, held sets propagated across calls),
``blocking-under-lock`` (blocking operations reachable while a
``# guarded-by:`` lock is held), and ``future-resolution`` (every
created future resolves or is handed off on all CFG paths, including
the exception edges, plus the publish/stop-recheck protocol that
closes the PR-8 stranded-caller race).  An ``unused-suppression``
audit reports ``# repro: ignore`` comments that shield nothing.
Per-file results and summaries are cached by content hash
(:class:`repro.analysis.graph.AnalysisCache`); only changed files are
re-summarized on a warm run.

Dynamic tier (:mod:`repro.analysis.sanitizer`): instrumented locks and
guarded-attribute tracers that catch lock-order inversions and
unguarded cross-thread access under real load, driven by the *same*
``# guarded-by:`` annotations the static rules read.
"""

from repro.analysis.core import (
    AnalysisResult,
    Finding,
    ProjectRule,
    Rule,
    SourceFile,
    SuppressionMap,
    analyze_paths,
    collect_guarded,
    default_rules,
    iter_python_files,
)
from repro.analysis.graph import (
    AnalysisCache,
    FileSummary,
    ProjectGraph,
    summarize_source,
)
from repro.analysis.rules import (
    ALL_RULES,
    BlockingUnderLockRule,
    CSRCanonicalRule,
    DeterminismRule,
    FingerprintCompletenessRule,
    FutureResolutionRule,
    LockDisciplineRule,
    LockOrderRule,
    UnusedSuppressionRule,
)
from repro.analysis.sanitizer import (
    GuardedDeque,
    GuardedDict,
    GuardedOrderedDict,
    RaceReport,
    ThreadSanitizer,
    TracedLock,
    instrument,
)
from repro.analysis.sarif import to_sarif

__all__ = [
    "ALL_RULES",
    "AnalysisCache",
    "AnalysisResult",
    "BlockingUnderLockRule",
    "CSRCanonicalRule",
    "DeterminismRule",
    "FileSummary",
    "Finding",
    "FingerprintCompletenessRule",
    "FutureResolutionRule",
    "GuardedDeque",
    "GuardedDict",
    "GuardedOrderedDict",
    "LockDisciplineRule",
    "LockOrderRule",
    "ProjectGraph",
    "ProjectRule",
    "RaceReport",
    "Rule",
    "SourceFile",
    "SuppressionMap",
    "ThreadSanitizer",
    "TracedLock",
    "UnusedSuppressionRule",
    "analyze_paths",
    "collect_guarded",
    "default_rules",
    "instrument",
    "iter_python_files",
    "summarize_source",
    "to_sarif",
]
