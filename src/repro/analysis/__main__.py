"""``python -m repro.analysis``: the repo invariant gate.

Runs every checker in :mod:`repro.analysis.rules` over the given paths
(default: ``src tests benchmarks examples``, resolved against the
current directory) and exits non-zero when any unsuppressed finding
remains — the same contract ``tests/test_analysis_gate.py`` enforces in
the tier-1 lane.

Per-file results (findings, call-graph summaries, suppression usage)
are cached in ``.repro-analysis-cache.json`` keyed by content hash, so
a warm run only re-analyzes files whose bytes changed; ``--no-cache``
forces a cold run, ``--cache PATH`` relocates the cache file.

Usage::

    PYTHONPATH=src python -m repro.analysis [paths...]
        [--json | --sarif] [--rules rule-a,rule-b] [--list-rules]
        [--no-cache] [--cache PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.core import analyze_paths, default_rules
from repro.analysis.graph import AnalysisCache
from repro.analysis.sarif import to_sarif

#: Scanned when no paths are given (existing ones only).
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")

#: Default on-disk location of the per-file analysis cache.
DEFAULT_CACHE = ".repro-analysis-cache.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (default: src tests benchmarks "
             "examples, where present)",
    )
    output = parser.add_mutually_exclusive_group()
    output.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable output (findings + file count + seconds)",
    )
    output.add_argument(
        "--sarif", action="store_true", dest="as_sarif",
        help="SARIF 2.1.0 output for CI annotation tooling",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print known rule ids and exit",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the per-file analysis cache",
    )
    parser.add_argument(
        "--cache", default=DEFAULT_CACHE, metavar="PATH",
        help=f"analysis cache file (default: {DEFAULT_CACHE})",
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}: {rule.description}")
        return 0
    if args.rules:
        wanted = {name.strip() for name in args.rules.split(",") if name.strip()}
        known = {rule.rule_id for rule in rules}
        unknown = wanted - known
        if unknown:
            print(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]

    paths = args.paths or [
        path for path in DEFAULT_PATHS if Path(path).exists()
    ]
    if not paths:
        print("no paths to scan", file=sys.stderr)
        return 2

    cache = None if args.no_cache else AnalysisCache(args.cache)
    started = time.perf_counter()
    result = analyze_paths(paths, rules=rules, cache=cache)
    seconds = time.perf_counter() - started

    if args.as_json:
        payload = result.to_dict()
        payload["seconds"] = round(seconds, 6)
        payload["rules"] = [rule.rule_id for rule in rules]
        if cache is not None:
            payload["cache"] = {"hits": cache.hits, "misses": cache.misses}
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.as_sarif:
        print(json.dumps(to_sarif(result, rules), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        status = "clean" if result.ok else f"{len(result.findings)} finding(s)"
        print(
            f"repro.analysis: {status} across {result.files_scanned} files "
            f"in {seconds:.2f}s"
        )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
