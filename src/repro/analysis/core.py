"""The invariant-lint framework: findings, suppression, annotation parsing.

PRs 3-5 made this reproduction a concurrent system whose correctness
rests on invariants nothing checked mechanically: lock discipline in the
cache and serving tiers, fingerprint completeness in the staged
pipeline, determinism of every value that flows into a content key, and
the canonical-CSR contract the zero-copy mmap tier depends on.  This
package makes those invariants *enforceable*:

- :mod:`repro.analysis.rules` — AST checkers, one per invariant, each
  producing :class:`Finding` records with a stable ``rule`` id.
- :mod:`repro.analysis.sanitizer` — the runtime twin: instrumented
  locks + guarded-attribute tracers that catch what static analysis
  cannot (actual cross-thread access, lock-order inversions under load).
- ``python -m repro.analysis`` — the CLI gate; a tier-1 test runs it
  over the whole repo and fails on any unsuppressed finding.

Source annotations (the contract between code and checkers)
-----------------------------------------------------------
``# guarded-by: <lock>``
    Trailing comment on an attribute assignment inside a class (usually
    in ``__init__``).  Declares that ``self.<attr>`` may only be read or
    written inside a ``with self.<lock>:`` block in methods of that
    class (``__init__``/``__del__`` are exempt — the object is not yet
    / no longer shared).  The same annotation drives the runtime
    sanitizer: :func:`collect_guarded` parses it from the class source
    so both tiers enforce one declaration.

``# fingerprint-stage: <stage>``
    Trailing comment on a ``def`` line in ``repro.api.pipeline``.
    Declares the method implements one pipeline stage; every config
    field the method (or its nested ``build`` closures) reads must then
    appear in that stage's *cumulative* fingerprint
    (``STAGE_FIELDS`` in ``repro.api.artifacts``) — an under-keyed
    stage silently serves stale artifacts.

``# repro: ignore[rule-id]`` / ``# repro: ignore``
    Suppresses findings of one rule (or all rules) on the annotated
    line; multi-line statements may carry the comment on any of their
    lines.  Suppressions are deliberate and greppable.
"""

from __future__ import annotations

import ast
import inspect
import io
import re
import textwrap
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

#: Trailing annotation declaring an attribute lock-guarded.
GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Trailing annotation binding a method to a pipeline stage.
FINGERPRINT_STAGE_RE = re.compile(
    r"#\s*fingerprint-stage:\s*([A-Za-z_][A-Za-z0-9_]*)"
)

#: ``# repro: ignore[rule-a, rule-b]`` (scoped) or ``# repro: ignore``.
IGNORE_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_\-,\s]*)\])?"
)

#: Directories never scanned.
SKIP_DIR_NAMES = {"__pycache__", ".git", ".pytest_cache"}


@dataclass
class Finding:
    """One checker hit: where, which rule, and what is wrong."""

    file: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


class SuppressionMap:
    """Per-line ``# repro: ignore`` comments, with usage tracking.

    ``lines`` maps a 1-based line number to the set of rule ids the
    comment names (empty set = blanket, suppresses every rule).  Each
    suppression that actually shields a finding records its line in
    ``used`` — the ``unused-suppression`` audit reports the rest.

    Suppressions are parsed from real ``tokenize`` COMMENT tokens, not
    raw lines: an ignore-shaped substring inside a string literal (test
    fixtures embed plenty) is data, not a directive — treating it as one
    would both suppress real findings and flood the audit with
    false "unused" hits.
    """

    def __init__(
        self,
        lines: Optional[Dict[int, set]] = None,
        used: Optional[Iterable[int]] = None,
    ):
        self.lines: Dict[int, set] = dict(lines or {})
        self.used: Set[int] = set(used or ())

    @classmethod
    def from_text(cls, text: str) -> "SuppressionMap":
        lines: Dict[int, set] = {}
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(text).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            tokens = None
        if tokens is not None:
            candidates = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        else:  # unparseable: fall back to the raw-line scan
            candidates = list(enumerate(text.splitlines(), start=1))
        for number, chunk in candidates:
            match = IGNORE_RE.search(chunk)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                lines[number] = set()
            else:
                lines[number] = {
                    rule.strip() for rule in rules.split(",") if rule.strip()
                }
        return cls(lines)

    def is_suppressed(
        self, rule: str, line: int, end_line: Optional[int] = None
    ) -> bool:
        end_line = line if end_line is None else end_line
        for number in range(line, end_line + 1):
            rules = self.lines.get(number)
            if rules is not None and (not rules or rule in rules):
                self.used.add(number)
                return True
        return False

    def to_dict(self) -> Dict[str, List[str]]:
        return {str(n): sorted(r) for n, r in self.lines.items()}

    @classmethod
    def from_dict(
        cls, data: Dict[str, List[str]], used: Iterable[int] = ()
    ) -> "SuppressionMap":
        return cls({int(n): set(r) for n, r in data.items()}, used)


class SourceFile:
    """One parsed module: AST + raw lines + per-line suppressions."""

    def __init__(self, path: Union[str, Path], text: str):
        self.path = Path(path)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self.suppression_map = SuppressionMap.from_text(text)
        #: line -> set of suppressed rule ids; empty set = all rules.
        self.suppressions: Dict[int, set] = self.suppression_map.lines

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def is_suppressed(
        self, rule: str, line: int, end_line: Optional[int] = None
    ) -> bool:
        """True when an ignore comment covers ``rule`` on this statement."""
        return self.suppression_map.is_suppressed(rule, line, end_line)


class Rule:
    """Base class: one invariant checker over one :class:`SourceFile`."""

    rule_id: str = ""
    description: str = ""

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Optional[Finding]:
        """A :class:`Finding` at ``node``, or None when suppressed."""
        line = getattr(node, "lineno", 1)
        end_line = getattr(node, "end_lineno", line)
        if source.is_suppressed(self.rule_id, line, end_line):
            return None
        return Finding(
            file=str(source.path), line=line, rule=self.rule_id, message=message
        )


class ProjectRule(Rule):
    """A rule that runs once over the whole project, not per file.

    ``check`` is a no-op; :func:`analyze_paths` builds one
    :class:`repro.analysis.graph.ProjectGraph` from every scanned file's
    summary and calls :meth:`check_project` after the per-file rules.
    Findings are filtered through the per-file suppression maps like any
    other rule's.
    """

    def check(self, source: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, graph) -> Iterator[Finding]:
        raise NotImplementedError


# ---------------------------------------------------------------------- #
# Annotation parsing shared by the static rules and the runtime sanitizer
# ---------------------------------------------------------------------- #


def guarded_attributes_from_source(
    lines: Sequence[str], class_node: ast.ClassDef
) -> Dict[str, str]:
    """``{attribute: lock_name}`` declared via ``# guarded-by:`` comments.

    Recognizes annotations trailing ``self.<attr> = ...`` (or annotated
    ``self.<attr>: T = ...``) assignments anywhere inside the class —
    conventionally in ``__init__`` — plus class-level ``attr = ...``
    declarations (shared state such as a class-wide lock-guarded slot).
    """
    guarded: Dict[str, str] = {}
    for node in ast.walk(class_node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        else:
            continue
        line_index = node.lineno - 1
        if not (0 <= line_index < len(lines)):
            continue
        match = GUARDED_BY_RE.search(lines[line_index])
        if match is None:
            continue
        lock_name = match.group(1)
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guarded[target.attr] = lock_name
            elif isinstance(target, ast.Name):
                guarded[target.id] = lock_name
    return guarded


def collect_guarded(cls: type) -> Dict[str, str]:
    """``{attribute: lock_name}`` for a live class, via its source.

    The runtime sanitizer's entry point into the static annotations: one
    ``# guarded-by:`` declaration drives both the AST checker and the
    instrumented-object tracer, so the two tiers can never disagree
    about what is supposed to be guarded.  Classes without readable
    source (builtins, REPL definitions) yield ``{}``.
    """
    try:
        source = textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError):
        return {}
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return {}
    lines = source.splitlines()
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            return guarded_attributes_from_source(lines, node)
    return {}


def fingerprint_stage_markers(source: SourceFile) -> Dict[str, str]:
    """``{function_name: stage}`` from ``# fingerprint-stage:`` comments.

    The marker trails the ``def`` line (or any line of a multi-line
    signature) of the method implementing the stage.
    """
    markers: Dict[str, str] = {}
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        first_body_line = node.body[0].lineno if node.body else node.lineno
        for line in range(node.lineno, first_body_line + 1):
            match = FINGERPRINT_STAGE_RE.search(source.line_text(line))
            if match is not None:
                markers[node.name] = match.group(1)
                break
    return markers


# ---------------------------------------------------------------------- #
# Running the rules
# ---------------------------------------------------------------------- #


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run over a set of paths."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_scanned": self.files_scanned,
            "findings": [finding.to_dict() for finding in self.findings],
            "ok": self.ok,
        }


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Every ``.py`` file under ``paths``, sorted, caches skipped."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            out.append(path)
            continue
        if not path.is_dir():
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in SKIP_DIR_NAMES for part in candidate.parts):
                continue
            out.append(candidate)
    seen = set()
    unique: List[Path] = []
    for path in out:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def default_rules() -> List[Rule]:
    """One instance of every repo checker (import-cycle-free accessor)."""
    from repro.analysis.rules import ALL_RULES

    return [rule_cls() for rule_cls in ALL_RULES]


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    cache=None,
) -> AnalysisResult:
    """Run every rule over every python file under ``paths``.

    Unparseable files produce a ``parse-error`` finding rather than
    crashing the analyzer — a syntax error in tree the gate covers is
    itself a failure worth surfacing.

    Per-file work (parsing, the per-file rules, summarization) is
    memoized in ``cache`` (an :class:`repro.analysis.graph.AnalysisCache`)
    when one is given, keyed by content hash; project-wide rules
    (:class:`ProjectRule`) recompute from the cached summaries every
    run.  The ``unused-suppression`` audit runs last, over the
    suppression-usage record the other rules left behind — a suppression
    is only judged unused when every rule it names actually ran (a
    blanket ``# repro: ignore`` requires the full default rule set).
    """
    rules = list(default_rules() if rules is None else rules)
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    audit_rules = [r for r in rules if getattr(r, "is_audit", False)]
    local_rules = [
        r for r in rules
        if not isinstance(r, ProjectRule) and not getattr(r, "is_audit", False)
    ]
    from repro.analysis.graph import FileSummary, ProjectGraph, \
        summarize_source  # local import: graph imports core

    need_summaries = bool(project_rules) or cache is not None
    rule_token = ",".join(sorted(r.rule_id for r in local_rules))
    result = AnalysisResult()
    summaries: Dict[str, FileSummary] = {}
    smaps: Dict[str, SuppressionMap] = {}

    for path in iter_python_files(paths):
        spath = str(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            result.findings.append(
                Finding(
                    file=spath, line=1, rule="parse-error",
                    message=f"unreadable file: {exc}",
                )
            )
            continue
        result.files_scanned += 1
        key = None
        if cache is not None:
            key = cache.key_for(path, data, rule_token)
            entry = cache.lookup(spath, key)
            if entry is not None:
                for raw in entry["findings"]:
                    result.findings.append(Finding(**raw))
                smaps[spath] = SuppressionMap.from_dict(
                    entry.get("suppressions", {}), entry.get("used", ())
                )
                if entry.get("summary") is not None:
                    summaries[spath] = FileSummary.from_dict(entry["summary"])
                continue
        try:
            source = SourceFile(path, data.decode("utf-8"))
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            line = int(getattr(exc, "lineno", None) or 1)
            msg = getattr(exc, "msg", None) or str(exc)
            found = Finding(
                file=spath, line=line, rule="parse-error",
                message=f"syntax error: {msg}",
            )
            result.findings.append(found)
            if cache is not None:
                cache.store(spath, key, {
                    "findings": [found.to_dict()], "suppressions": {},
                    "used": [], "summary": None,
                })
            continue
        file_findings: List[Finding] = []
        for rule in local_rules:
            file_findings.extend(rule.check(source))
        summary = summarize_source(source) if need_summaries else None
        smaps[spath] = source.suppression_map
        if summary is not None:
            summaries[spath] = summary
        result.findings.extend(file_findings)
        if cache is not None:
            cache.store(spath, key, {
                "findings": [f.to_dict() for f in file_findings],
                "suppressions": source.suppression_map.to_dict(),
                "used": sorted(source.suppression_map.used),
                "summary": summary.to_dict() if summary else None,
            })

    if project_rules and summaries:
        graph = ProjectGraph(summaries, smaps)
        for rule in project_rules:
            for found in rule.check_project(graph):
                smap = smaps.get(found.file)
                if smap is not None and smap.is_suppressed(
                    found.rule, found.line
                ):
                    continue
                result.findings.append(found)

    if audit_rules:
        executed = {r.rule_id for r in local_rules + project_rules}
        from repro.analysis.rules import ALL_RULES

        checkable = {
            cls.rule_id for cls in ALL_RULES
            if not getattr(cls, "is_audit", False)
        }
        full_run = checkable <= executed
        audit_id = audit_rules[0].rule_id
        for spath in sorted(smaps):
            smap = smaps[spath]
            for line in sorted(smap.lines):
                if line in smap.used:
                    continue
                named = smap.lines[line]
                if not named:  # blanket ignore: needs the full rule set
                    if not full_run:
                        continue
                elif not named <= executed:
                    continue
                # Explicit ignore[unused-suppression] opts a line out of
                # the audit; a *blanket* ignore does not get to shield
                # itself (that exemption would be circular — every dead
                # blanket ignore would self-justify).
                if named and smap.is_suppressed(audit_id, line):
                    continue
                scope = "all rules" if not named else ", ".join(sorted(named))
                result.findings.append(
                    Finding(
                        file=spath, line=line, rule=audit_id,
                        message=(
                            f"suppression ({scope}) shields no finding — "
                            f"stale ignores rot the gate; delete it"
                        ),
                        severity="warning",
                    )
                )

    result.findings.sort(key=lambda f: (f.file, f.line, f.rule))
    if cache is not None:
        cache.save()
    return result
