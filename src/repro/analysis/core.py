"""The invariant-lint framework: findings, suppression, annotation parsing.

PRs 3-5 made this reproduction a concurrent system whose correctness
rests on invariants nothing checked mechanically: lock discipline in the
cache and serving tiers, fingerprint completeness in the staged
pipeline, determinism of every value that flows into a content key, and
the canonical-CSR contract the zero-copy mmap tier depends on.  This
package makes those invariants *enforceable*:

- :mod:`repro.analysis.rules` — AST checkers, one per invariant, each
  producing :class:`Finding` records with a stable ``rule`` id.
- :mod:`repro.analysis.sanitizer` — the runtime twin: instrumented
  locks + guarded-attribute tracers that catch what static analysis
  cannot (actual cross-thread access, lock-order inversions under load).
- ``python -m repro.analysis`` — the CLI gate; a tier-1 test runs it
  over the whole repo and fails on any unsuppressed finding.

Source annotations (the contract between code and checkers)
-----------------------------------------------------------
``# guarded-by: <lock>``
    Trailing comment on an attribute assignment inside a class (usually
    in ``__init__``).  Declares that ``self.<attr>`` may only be read or
    written inside a ``with self.<lock>:`` block in methods of that
    class (``__init__``/``__del__`` are exempt — the object is not yet
    / no longer shared).  The same annotation drives the runtime
    sanitizer: :func:`collect_guarded` parses it from the class source
    so both tiers enforce one declaration.

``# fingerprint-stage: <stage>``
    Trailing comment on a ``def`` line in ``repro.api.pipeline``.
    Declares the method implements one pipeline stage; every config
    field the method (or its nested ``build`` closures) reads must then
    appear in that stage's *cumulative* fingerprint
    (``STAGE_FIELDS`` in ``repro.api.artifacts``) — an under-keyed
    stage silently serves stale artifacts.

``# repro: ignore[rule-id]`` / ``# repro: ignore``
    Suppresses findings of one rule (or all rules) on the annotated
    line; multi-line statements may carry the comment on any of their
    lines.  Suppressions are deliberate and greppable.
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

#: Trailing annotation declaring an attribute lock-guarded.
GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Trailing annotation binding a method to a pipeline stage.
FINGERPRINT_STAGE_RE = re.compile(
    r"#\s*fingerprint-stage:\s*([A-Za-z_][A-Za-z0-9_]*)"
)

#: ``# repro: ignore[rule-a, rule-b]`` (scoped) or ``# repro: ignore``.
IGNORE_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_\-,\s]*)\])?"
)

#: Directories never scanned.
SKIP_DIR_NAMES = {"__pycache__", ".git", ".pytest_cache"}


@dataclass
class Finding:
    """One checker hit: where, which rule, and what is wrong."""

    file: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """One parsed module: AST + raw lines + per-line suppressions."""

    def __init__(self, path: Union[str, Path], text: str):
        self.path = Path(path)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        #: line -> set of suppressed rule ids; empty set = all rules.
        self.suppressions: Dict[int, set] = {}
        for number, line in enumerate(self.lines, start=1):
            match = IGNORE_RE.search(line)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                self.suppressions[number] = set()
            else:
                self.suppressions[number] = {
                    rule.strip() for rule in rules.split(",") if rule.strip()
                }

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def is_suppressed(
        self, rule: str, line: int, end_line: Optional[int] = None
    ) -> bool:
        """True when an ignore comment covers ``rule`` on this statement."""
        end_line = line if end_line is None else end_line
        for number in range(line, end_line + 1):
            rules = self.suppressions.get(number)
            if rules is not None and (not rules or rule in rules):
                return True
        return False


class Rule:
    """Base class: one invariant checker over one :class:`SourceFile`."""

    rule_id: str = ""
    description: str = ""

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Optional[Finding]:
        """A :class:`Finding` at ``node``, or None when suppressed."""
        line = getattr(node, "lineno", 1)
        end_line = getattr(node, "end_lineno", line)
        if source.is_suppressed(self.rule_id, line, end_line):
            return None
        return Finding(
            file=str(source.path), line=line, rule=self.rule_id, message=message
        )


# ---------------------------------------------------------------------- #
# Annotation parsing shared by the static rules and the runtime sanitizer
# ---------------------------------------------------------------------- #


def guarded_attributes_from_source(
    lines: Sequence[str], class_node: ast.ClassDef
) -> Dict[str, str]:
    """``{attribute: lock_name}`` declared via ``# guarded-by:`` comments.

    Recognizes annotations trailing ``self.<attr> = ...`` (or annotated
    ``self.<attr>: T = ...``) assignments anywhere inside the class —
    conventionally in ``__init__`` — plus class-level ``attr = ...``
    declarations (shared state such as a class-wide lock-guarded slot).
    """
    guarded: Dict[str, str] = {}
    for node in ast.walk(class_node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        else:
            continue
        line_index = node.lineno - 1
        if not (0 <= line_index < len(lines)):
            continue
        match = GUARDED_BY_RE.search(lines[line_index])
        if match is None:
            continue
        lock_name = match.group(1)
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guarded[target.attr] = lock_name
            elif isinstance(target, ast.Name):
                guarded[target.id] = lock_name
    return guarded


def collect_guarded(cls: type) -> Dict[str, str]:
    """``{attribute: lock_name}`` for a live class, via its source.

    The runtime sanitizer's entry point into the static annotations: one
    ``# guarded-by:`` declaration drives both the AST checker and the
    instrumented-object tracer, so the two tiers can never disagree
    about what is supposed to be guarded.  Classes without readable
    source (builtins, REPL definitions) yield ``{}``.
    """
    try:
        source = textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError):
        return {}
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return {}
    lines = source.splitlines()
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            return guarded_attributes_from_source(lines, node)
    return {}


def fingerprint_stage_markers(source: SourceFile) -> Dict[str, str]:
    """``{function_name: stage}`` from ``# fingerprint-stage:`` comments.

    The marker trails the ``def`` line (or any line of a multi-line
    signature) of the method implementing the stage.
    """
    markers: Dict[str, str] = {}
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        first_body_line = node.body[0].lineno if node.body else node.lineno
        for line in range(node.lineno, first_body_line + 1):
            match = FINGERPRINT_STAGE_RE.search(source.line_text(line))
            if match is not None:
                markers[node.name] = match.group(1)
                break
    return markers


# ---------------------------------------------------------------------- #
# Running the rules
# ---------------------------------------------------------------------- #


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run over a set of paths."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_scanned": self.files_scanned,
            "findings": [finding.to_dict() for finding in self.findings],
            "ok": self.ok,
        }


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Every ``.py`` file under ``paths``, sorted, caches skipped."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            out.append(path)
            continue
        if not path.is_dir():
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in SKIP_DIR_NAMES for part in candidate.parts):
                continue
            out.append(candidate)
    seen = set()
    unique: List[Path] = []
    for path in out:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def default_rules() -> List[Rule]:
    """One instance of every repo checker (import-cycle-free accessor)."""
    from repro.analysis.rules import ALL_RULES

    return [rule_cls() for rule_cls in ALL_RULES]


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisResult:
    """Run every rule over every python file under ``paths``.

    Unparseable files produce a ``parse-error`` finding rather than
    crashing the analyzer — a syntax error in tree the gate covers is
    itself a failure worth surfacing.
    """
    rules = list(default_rules() if rules is None else rules)
    result = AnalysisResult()
    for path in iter_python_files(paths):
        try:
            text = path.read_text()
        except OSError as exc:
            result.findings.append(
                Finding(
                    file=str(path), line=1, rule="parse-error",
                    message=f"unreadable file: {exc}",
                )
            )
            continue
        result.files_scanned += 1
        try:
            source = SourceFile(path, text)
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    file=str(path), line=int(exc.lineno or 1),
                    rule="parse-error", message=f"syntax error: {exc.msg}",
                )
            )
            continue
        for rule in rules:
            result.findings.extend(rule.check(source))
    result.findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return result
