"""Per-function control flow: CFG with exception edges + lock context.

The single-function AST rules in :mod:`repro.analysis.rules` match
patterns lexically; the concurrency rules need two things those rules do
not: *paths* (does every way out of ``submit`` resolve the future, even
the way that goes through ``except queue.Full``?) and *context* (which
locks are statically held at this call site?).  This module supplies
both primitives; :mod:`repro.analysis.graph` composes them across files.

:func:`build_cfg`
    A statement-level control-flow graph for one function body.  Every
    statement is a node; ``if``/``while``/``for``/``with``/``try`` wire
    their bodies with the obvious successor edges, and — the part the
    future-resolution rule depends on — every statement lexically inside
    a ``try`` body gets an *exception edge* to each of its handlers (and
    to the handlers of enclosing ``try`` statements, conservatively: the
    analysis cannot know which exception types a call can raise).  Paths
    that leave the function via an uncaught ``raise`` terminate at the
    synthetic ``raise_exit`` node, distinct from the normal ``exit``.

:func:`lock_events`
    A lexical walk of a function body threading a *held-lock* tuple — a
    tiny dataflow lattice whose elements are sets of lock tokens,
    ordered by inclusion, joined by union.  ``with`` statements whose
    context expression names a lock push onto the context; every other
    statement and header expression is reported together with the locks
    held around it.  :mod:`repro.analysis.graph` turns these events into
    per-function summaries (acquisitions, call sites, blocking
    operations — each with its held set) that the interprocedural
    fixpoint then propagates along call edges.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["CFG", "CFGNode", "build_cfg", "lock_events", "reach_avoiding"]


class CFGNode:
    """One CFG vertex: a statement, or a synthetic entry/exit."""

    __slots__ = ("stmt", "kind", "succ", "line")

    def __init__(self, stmt: Optional[ast.stmt], kind: str = "stmt"):
        self.stmt = stmt
        self.kind = kind  # "stmt" | "entry" | "exit" | "raise"
        self.succ: List["CFGNode"] = []
        self.line = getattr(stmt, "lineno", 0)

    def link(self, other: "CFGNode") -> None:
        if other is not self and other not in self.succ:
            self.succ.append(other)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.kind if self.stmt is None else type(self.stmt).__name__
        return f"<CFGNode {label}@{self.line}>"


class CFG:
    """CFG of one function: entry, normal exit, exceptional exit."""

    def __init__(self) -> None:
        self.entry = CFGNode(None, "entry")
        self.exit = CFGNode(None, "exit")
        self.raise_exit = CFGNode(None, "raise")
        self.nodes: List[CFGNode] = [self.entry, self.exit, self.raise_exit]
        self._by_stmt = {}

    def node_for(self, stmt: ast.stmt) -> Optional[CFGNode]:
        return self._by_stmt.get(id(stmt))

    def _make(self, stmt: ast.stmt) -> CFGNode:
        node = CFGNode(stmt)
        self.nodes.append(node)
        self._by_stmt[id(stmt)] = node
        return node


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        #: Stack of (break_collector, loop_header) for loops.
        self._loops: List[Tuple[List[CFGNode], CFGNode]] = []
        #: Stack of handler-entry lists for enclosing ``try`` bodies;
        #: lists are filled *after* the body builds, so nodes record a
        #: reference and edges are patched in :meth:`finish`.
        self._try_frames: List[List[CFGNode]] = []
        self._pending_exc: List[Tuple[CFGNode, List[CFGNode]]] = []

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        frontier = self._seq(body, [self.cfg.entry])
        for node in frontier:
            node.link(self.cfg.exit)
        for node, frame in self._pending_exc:
            for handler in frame:
                node.link(handler)
        return self.cfg

    # ------------------------------------------------------------------ #

    def _note(self, node: CFGNode) -> None:
        """Record exception edges to every enclosing handler frame."""
        for frame in self._try_frames:
            self._pending_exc.append((node, frame))

    def _seq(
        self, stmts: Sequence[ast.stmt], frontier: List[CFGNode]
    ) -> List[CFGNode]:
        for stmt in stmts:
            if not frontier:
                # Unreachable code after return/raise/break: still build
                # nodes (a resolver there must not count) but leave them
                # disconnected from the path structure.
                frontier = []
            node = self.cfg._make(stmt)
            self._note(node)
            for prev in frontier:
                prev.link(node)
            frontier = self._stmt(stmt, node)
        return frontier

    def _stmt(self, stmt: ast.stmt, node: CFGNode) -> List[CFGNode]:
        if isinstance(stmt, ast.Return):
            node.link(self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node.link(self.cfg.raise_exit)
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][0].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                node.link(self._loops[-1][1])
            return []
        if isinstance(stmt, ast.If):
            then_frontier = self._seq(stmt.body, [node])
            if stmt.orelse:
                else_frontier = self._seq(stmt.orelse, [node])
            else:
                else_frontier = [node]
            return then_frontier + else_frontier
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: List[CFGNode] = []
            self._loops.append((breaks, node))
            body_frontier = self._seq(stmt.body, [node])
            self._loops.pop()
            for tail in body_frontier:
                tail.link(node)
            after: List[CFGNode] = [node]
            if stmt.orelse:
                after = self._seq(stmt.orelse, [node])
            return after + breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._seq(stmt.body, [node])
        if isinstance(stmt, ast.Try):
            frame: List[CFGNode] = []
            self._try_frames.append(frame)
            body_frontier = self._seq(stmt.body, [node])
            self._try_frames.pop()
            handler_frontiers: List[CFGNode] = []
            for handler in stmt.handlers:
                hnode = self.cfg._make(handler)  # type: ignore[arg-type]
                self._note(hnode)
                frame.append(hnode)
                handler_frontiers.extend(self._seq(handler.body, [hnode]))
            if stmt.orelse:
                body_frontier = self._seq(stmt.orelse, body_frontier)
            frontier = body_frontier + handler_frontiers
            if stmt.finalbody:
                frontier = self._seq(stmt.finalbody, frontier)
            return frontier
        # Simple statements and nested defs/classes fall through.
        return [node]


def build_cfg(func: ast.AST) -> CFG:
    """CFG of ``func``'s body (a FunctionDef/AsyncFunctionDef node)."""
    body = getattr(func, "body", [])
    return _Builder().build(body)


def reach_avoiding(
    start: Sequence[CFGNode],
    target: CFGNode,
    avoid: Set[int],
) -> bool:
    """True when ``target`` is reachable from ``start`` without entering
    any node whose ``id()`` is in ``avoid`` (the avoided node itself is
    not traversed; edges out of it do not count)."""
    seen: Set[int] = set()
    stack = [n for n in start if id(n) not in avoid]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node is target:
            return True
        for succ in node.succ:
            if id(succ) not in avoid and id(succ) not in seen:
                stack.append(succ)
    return False


# ---------------------------------------------------------------------- #
# Lock-context lexical walk
# ---------------------------------------------------------------------- #

#: Event kinds produced by :func:`lock_events`:
#:   ("acquire", token, held_before, node)  — a lock ``with`` item
#:   ("stmt", stmt, held)                   — a simple statement
#:   ("expr", expr, held)                   — a compound-stmt header expr
#:   ("nested", funcdef, held)              — a nested function definition
Event = Tuple[str, object, tuple, object]


def lock_events(
    body: Sequence[ast.stmt],
    token_of: Callable[[ast.expr], Optional[str]],
    held: Tuple[str, ...] = (),
) -> Iterator[tuple]:
    """Walk ``body`` lexically, threading the held-lock tuple.

    ``token_of`` maps a ``with`` context expression to a lock token (or
    None for non-lock context managers such as ``open()``).  Reentrant
    re-acquisition of an already-held token does not extend the held
    tuple (RLock reentry must not self-edge the order graph).
    """
    for stmt in body:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                token = token_of(item.context_expr)
                if token is not None:
                    yield ("acquire", token, inner, item.context_expr)
                    if token not in inner:
                        inner = inner + (token,)
                else:
                    yield ("expr", item.context_expr, held)
            yield from lock_events(stmt.body, token_of, inner)
        elif isinstance(stmt, ast.If):
            yield ("expr", stmt.test, held)
            yield from lock_events(stmt.body, token_of, held)
            yield from lock_events(stmt.orelse, token_of, held)
        elif isinstance(stmt, ast.While):
            yield ("expr", stmt.test, held)
            yield from lock_events(stmt.body, token_of, held)
            yield from lock_events(stmt.orelse, token_of, held)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield ("expr", stmt.iter, held)
            yield from lock_events(stmt.body, token_of, held)
            yield from lock_events(stmt.orelse, token_of, held)
        elif isinstance(stmt, ast.Try):
            yield from lock_events(stmt.body, token_of, held)
            for handler in stmt.handlers:
                yield from lock_events(handler.body, token_of, held)
            yield from lock_events(stmt.orelse, token_of, held)
            yield from lock_events(stmt.finalbody, token_of, held)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield ("nested", stmt, held)
        elif isinstance(stmt, ast.ClassDef):
            # Method bodies of a nested class run later, under unknown
            # context — skip, matching the nested-def treatment.
            continue
        else:
            yield ("stmt", stmt, held)
