"""Runtime thread-sanitizer: instrumented locks + guarded-access tracing.

The static ``lock-discipline`` rule proves accesses are *lexically*
inside ``with self.<lock>:`` blocks; this module proves the discipline
holds *dynamically* — under real :class:`repro.serve.ModelServer` load,
across threads the checker cannot see.  Two detectors:

:class:`TracedLock`
    A wrapper around ``threading.Lock``/``RLock`` that records, per
    thread, which traced locks are held, and maintains a global
    lock-*order* graph: acquiring B while holding A records the edge
    A→B, and a later acquisition of A while holding B — the classic
    deadlock-by-inversion between the engine-cache lock and a server
    lock — is reported the moment the inverted edge appears, without
    needing the actual deadlock to strike in CI.

Guarded-attribute tracing
    :func:`instrument` replaces an object's locks with
    :class:`TracedLock` and wraps its ``# guarded-by:`` annotated
    container attributes (dicts, OrderedDicts, deques) in proxies that
    verify, on every access, that the current thread holds the guarding
    lock.  Which attributes are guarded comes from
    :func:`repro.analysis.core.collect_guarded` — the *same*
    annotations the static checker enforces, so the two tiers can never
    drift apart.

Violations are collected as :class:`RaceReport` records, not raised:
a sanitizer that throws from an arbitrary thread turns a diagnosis into
a flake.  Tests call :meth:`ThreadSanitizer.assert_clean` at the end.

Example
-------
>>> sanitizer = ThreadSanitizer()
>>> instrument(sanitizer, server)        # doctest: +SKIP
>>> ...  # drive load from many threads
>>> sanitizer.assert_clean()             # doctest: +SKIP
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import collect_guarded

#: Container types the access tracer knows how to wrap.
_WRAPPABLE = (OrderedDict, dict, deque)


@dataclass
class RaceReport:
    """One dynamic violation: what kind, where, and which thread."""

    kind: str        # "unguarded-access" | "lock-order-inversion" | "self-deadlock"
    message: str
    thread: str

    def render(self) -> str:
        return f"[{self.kind}] {self.message} (thread={self.thread})"


class ThreadSanitizer:
    """Collects :class:`RaceReport` records from traced locks/objects."""

    def __init__(self):
        self._mu = threading.Lock()
        self._reports: List[RaceReport] = []
        #: Observed acquisition-order edges: (held.name, acquired.name).
        self._edges: Dict[Tuple[str, str], str] = {}
        self._inversions_reported: set = set()
        self._tls = threading.local()

    # ---------------------------------------------------------------- #
    # Reporting
    # ---------------------------------------------------------------- #

    @property
    def reports(self) -> List[RaceReport]:
        with self._mu:
            return list(self._reports)

    def report(self, kind: str, message: str) -> None:
        entry = RaceReport(
            kind=kind, message=message, thread=threading.current_thread().name
        )
        with self._mu:
            self._reports.append(entry)

    def assert_clean(self) -> None:
        """Raise with every collected report when any race was traced."""
        reports = self.reports
        if reports:
            rendered = "\n".join(entry.render() for entry in reports)
            raise AssertionError(
                f"thread sanitizer traced {len(reports)} violation(s):\n"
                f"{rendered}"
            )

    # ---------------------------------------------------------------- #
    # Per-thread held-lock bookkeeping (used by TracedLock)
    # ---------------------------------------------------------------- #

    def _held(self) -> List["TracedLock"]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def _note_acquire(self, lock: "TracedLock") -> None:
        held = self._held()
        if any(entry is lock for entry in held):
            if not lock.reentrant:
                self.report(
                    "self-deadlock",
                    f"non-reentrant lock '{lock.name}' re-acquired by its "
                    f"holder — this deadlocks outside the sanitizer",
                )
            held.append(lock)
            return
        ordered = []
        for other in held:
            if other is not lock:
                ordered.append((other.name, lock.name))
        with self._mu:
            for edge in ordered:
                inverse = (edge[1], edge[0])
                if edge[0] == edge[1]:
                    continue
                if inverse in self._edges:
                    pair = frozenset(edge)
                    if pair not in self._inversions_reported:
                        self._inversions_reported.add(pair)
                        self._reports.append(
                            RaceReport(
                                kind="lock-order-inversion",
                                message=(
                                    f"'{edge[0]}' acquired before "
                                    f"'{edge[1]}' here, but the opposite "
                                    f"order was observed on thread "
                                    f"{self._edges[inverse]!r} — inversion "
                                    f"can deadlock"
                                ),
                                thread=threading.current_thread().name,
                            )
                        )
                self._edges.setdefault(
                    edge, threading.current_thread().name
                )
        held.append(lock)

    def _note_release(self, lock: "TracedLock") -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] is lock:
                del held[index]
                return


class TracedLock:
    """Drop-in lock wrapper feeding a :class:`ThreadSanitizer`.

    Supports the full ``Lock``/``RLock`` surface used in this repo
    (``acquire``/``release``/context manager), tracks holders so guarded
    proxies can ask :meth:`held_by_current_thread`, and reports
    lock-order inversions and non-reentrant re-acquisition.
    """

    def __init__(
        self,
        sanitizer: ThreadSanitizer,
        inner=None,
        name: Optional[str] = None,
        reentrant: Optional[bool] = None,
    ):
        if inner is None:
            inner = threading.RLock()
        if isinstance(inner, TracedLock):  # never double-wrap
            inner = inner.inner
        self.sanitizer = sanitizer
        self.inner = inner
        self.name = name or f"lock@{id(inner):#x}"
        if reentrant is None:
            # RLock instances are factory-produced; sniff the repr.
            reentrant = "RLock" in type(inner).__name__ or "RLock" in repr(
                inner
            )
        self.reentrant = bool(reentrant)
        self._holders: Dict[int, int] = {}
        self._holders_mu = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self.sanitizer._note_acquire(self)
        acquired = self.inner.acquire(blocking, timeout)
        if acquired:
            ident = threading.get_ident()
            with self._holders_mu:
                self._holders[ident] = self._holders.get(ident, 0) + 1
        else:
            self.sanitizer._note_release(self)
        return acquired

    def release(self) -> None:
        ident = threading.get_ident()
        with self._holders_mu:
            count = self._holders.get(ident, 0)
            if count <= 1:
                self._holders.pop(ident, None)
            else:
                self._holders[ident] = count - 1
        self.sanitizer._note_release(self)
        self.inner.release()

    def held_by_current_thread(self) -> bool:
        with self._holders_mu:
            return self._holders.get(threading.get_ident(), 0) > 0

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


# ---------------------------------------------------------------------- #
# Guarded-container proxies
# ---------------------------------------------------------------------- #


def _checked(method_name):
    """A subclass method that verifies the guard, then delegates."""

    def method(self, *args, **kwargs):
        self._sanitizer_check()
        return getattr(super(type(self), self), method_name)(*args, **kwargs)

    method.__name__ = method_name
    return method


class _GuardedMixin:
    """Shared guard-check for traced container proxies.

    ``_armed`` defends construction: base-class ``__init__`` may call
    overridden mutators (``OrderedDict.__init__`` goes through
    ``__setitem__``) before tracing state exists.
    """

    _armed = False

    def _trace_with(self, sanitizer, lock, label) -> None:
        self._sanitizer = sanitizer
        self._guard_lock = lock
        self._guard_label = label
        self._armed = True

    def _sanitizer_check(self) -> None:
        if not self._armed:
            return
        if self._guard_lock.held_by_current_thread():
            return
        self._sanitizer.report(
            "unguarded-access",
            f"'{self._guard_label}' accessed without holding "
            f"'{self._guard_lock.name}'",
        )


_DICT_TRACED = (
    "__getitem__", "__setitem__", "__delitem__", "__contains__",
    "__iter__", "__len__", "get", "pop", "popitem", "setdefault",
    "update", "clear", "items", "keys", "values", "copy",
)

_DEQUE_TRACED = (
    "__getitem__", "__setitem__", "__iter__", "__len__", "__contains__",
    "append", "appendleft", "extend", "extendleft", "pop", "popleft",
    "clear", "remove", "count",
)


class GuardedDict(_GuardedMixin, dict):
    """A dict that reports accesses made without the guarding lock."""


class GuardedOrderedDict(_GuardedMixin, OrderedDict):
    """An OrderedDict that reports unguarded accesses."""


class GuardedDeque(_GuardedMixin, deque):
    """A deque that reports unguarded accesses."""


for _name in _DICT_TRACED:
    setattr(GuardedDict, _name, _checked(_name))
    setattr(
        GuardedOrderedDict,
        _name,
        _checked(_name),
    )
setattr(GuardedOrderedDict, "move_to_end", _checked("move_to_end"))
for _name in _DEQUE_TRACED:
    setattr(GuardedDeque, _name, _checked(_name))
del _name


def _wrap_container(sanitizer, value, lock, label):
    """A traced replica of ``value``, or None when untraceable."""
    if isinstance(value, OrderedDict):
        wrapped = GuardedOrderedDict()
        OrderedDict.update(wrapped, value)
        wrapped._trace_with(sanitizer, lock, label)
        return wrapped
    if isinstance(value, dict):
        wrapped = GuardedDict()
        dict.update(wrapped, value)
        wrapped._trace_with(sanitizer, lock, label)
        return wrapped
    if isinstance(value, deque):
        wrapped = GuardedDeque(value, maxlen=value.maxlen)
        wrapped._trace_with(sanitizer, lock, label)
        return wrapped
    return None


def instrument(
    sanitizer: ThreadSanitizer,
    obj,
    guarded: Optional[Dict[str, str]] = None,
) -> Dict[str, TracedLock]:
    """Instrument one object's declared guards; returns its traced locks.

    ``guarded`` defaults to the object's own ``# guarded-by:``
    annotations (:func:`repro.analysis.core.collect_guarded`).  Every
    named lock is replaced with a :class:`TracedLock` (idempotent), and
    every guarded container attribute is wrapped in a proxy that reports
    accesses made without that lock.  Non-container guarded attributes
    (floats, ints, arrays) are skipped — the static rule still covers
    them lexically.  Objects whose attributes cannot be rebound
    (``__slots__`` without the attr) are left partially instrumented
    rather than failing.
    """
    if guarded is None:
        guarded = collect_guarded(type(obj))
    locks: Dict[str, TracedLock] = {}
    label_prefix = type(obj).__name__
    for lock_name in sorted(set(guarded.values())):
        current = getattr(obj, lock_name, None)
        if isinstance(current, TracedLock):
            locks[lock_name] = current
            continue
        traced = TracedLock(
            sanitizer, current, name=f"{label_prefix}.{lock_name}"
        )
        try:
            setattr(obj, lock_name, traced)
        except (AttributeError, TypeError):
            continue
        locks[lock_name] = traced
    for attr, lock_name in guarded.items():
        lock = locks.get(lock_name)
        if lock is None:
            continue
        value = getattr(obj, attr, None)
        if isinstance(value, _GuardedMixin) or not isinstance(
            value, _WRAPPABLE
        ):
            continue
        wrapped = _wrap_container(
            sanitizer, value, lock, f"{label_prefix}.{attr}"
        )
        if wrapped is None:
            continue
        try:
            setattr(obj, attr, wrapped)
        except (AttributeError, TypeError):
            continue
    return locks
