"""Project-wide analysis substrate: summaries, call graph, file cache.

The interprocedural rules (``lock-order``, ``blocking-under-lock``) need
to see across files: a lock acquired in ``repro.serve.server`` while a
``repro.hin.cache`` method runs is a fact no single-file AST walk can
establish.  The pipeline here is the classic summary-based design:

1. :func:`summarize_source` reduces one parsed file to a
   :class:`FileSummary` — imports, classes (lock attributes, guarded
   locks, attribute types from ``__init__``), and per-function
   :class:`FunctionSummary` records (lock acquisitions, call sites, and
   blocking operations, each tagged with the lock tokens statically held
   around it, via :func:`repro.analysis.flow.lock_events`).  Summaries
   are pure data — JSON-serializable, so the :class:`AnalysisCache` can
   persist them per file, keyed by content hash, and a warm run only
   re-summarizes files whose bytes changed.

2. :class:`ProjectGraph` joins the summaries: a symbol table over every
   module, *conservative* call resolution (``self.method``, locals and
   ``self.<attr>`` typed by constructor assignment, imported symbols,
   and a unique-name fallback that only fires when exactly one project
   class defines the method and the receiver's type is unknown), and
   memoized closures over the call graph — the set of locks a call may
   transitively acquire, and the nearest blocking operation a call may
   transitively reach.  Unresolvable call targets (dynamic dispatch,
   callbacks, stdlib) are dropped rather than guessed: the gate requires
   zero false findings on the whole tree, so precision beats recall at
   every ambiguous edge.

Lock identity is module-qualified: ``repro.serve.server.ModelServer._lock``
names one lock project-wide, which is what lets the acquisition-order
graph span modules exactly like the runtime ``TracedLock`` edge map.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import SourceFile, guarded_attributes_from_source
from repro.analysis.flow import lock_events

__all__ = [
    "AnalysisCache",
    "CACHE_VERSION",
    "ClassSummary",
    "FileSummary",
    "FunctionSummary",
    "ProjectGraph",
    "summarize_source",
]

#: Bump to invalidate every cached entry (schema or semantics change).
CACHE_VERSION = "1"

#: Constructor tails recognized as lock objects.
_LOCK_CTORS = {"Condition", "Semaphore", "BoundedSemaphore"}

#: Method names too generic for the unique-name call fallback — they
#: collide with stdlib container/IO protocols, where a wrong edge would
#: fabricate lock-order cycles out of thin air.
_FALLBACK_BLACKLIST = {
    "acquire", "add", "all", "any", "append", "appendleft", "astype",
    "clear", "close", "copy", "count", "decode", "dot", "encode",
    "extend", "format", "get", "get_nowait", "index", "is_set", "items",
    "join", "keys", "max", "mean", "min", "move_to_end", "open", "pop",
    "popitem", "popleft", "put", "put_nowait", "read", "recv",
    "release", "remove", "render", "reshape", "result", "run", "send",
    "set", "setdefault", "sort", "split", "start", "stop", "strip",
    "submit", "sum", "to_dict", "tobytes", "update", "values", "wait",
    "write",
}


def _dotted(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_lock_name(name: str) -> bool:
    parts = [p for p in name.lower().split("_") if p]
    return any(p in ("lock", "mutex", "mu") for p in parts)


def _is_lock_ctor(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    tail = _dotted(value.func).rsplit(".", 1)[-1]
    return tail.endswith("Lock") or tail in _LOCK_CTORS


def module_name(path: Path) -> str:
    """Dotted module name for ``path`` (project layout aware).

    ``src/repro/serve/server.py`` -> ``repro.serve.server``;
    ``tests/test_serve.py`` -> ``tests.test_serve``; absolute paths
    outside the tree (test fixtures in tmp dirs) use the bare stem so
    same-directory fixtures can import each other by stem.
    """
    parts = path.parts
    if "src" in parts:
        rel: Tuple[str, ...] = parts[len(parts) - parts[::-1].index("src"):]
    elif not path.is_absolute():
        rel = parts
    else:
        rel = (path.name,)
    dotted = ".".join(rel)
    if dotted.endswith(".py"):
        dotted = dotted[: -len(".py")]
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


# ---------------------------------------------------------------------- #
# Summaries
# ---------------------------------------------------------------------- #


class FunctionSummary:
    """Everything the project graph needs to know about one function."""

    __slots__ = (
        "qualname", "cls", "line", "acquisitions", "calls", "blocking",
        "creates_future", "resolves_future", "local_types", "nested",
    )

    def __init__(self, qualname: str, cls: Optional[str], line: int):
        self.qualname = qualname
        self.cls = cls
        self.line = line
        #: [(lock_token, held_tuple, line)]
        self.acquisitions: List[Tuple[str, Tuple[str, ...], int]] = []
        #: [(kind, target, held_tuple, line)]; kind: "self"|"name"|"attr"
        self.calls: List[Tuple[str, str, Tuple[str, ...], int]] = []
        #: [(kind, detail, held_tuple, line)]
        self.blocking: List[Tuple[str, str, Tuple[str, ...], int]] = []
        self.creates_future = False
        self.resolves_future = False
        #: local variable -> constructor dotted name ("" = unknown call)
        self.local_types: Dict[str, str] = {}
        #: nested def name -> file-level qualname
        self.nested: Dict[str, str] = {}

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "cls": self.cls,
            "line": self.line,
            "acquisitions": [
                [t, list(h), ln] for t, h, ln in self.acquisitions
            ],
            "calls": [[k, t, list(h), ln] for k, t, h, ln in self.calls],
            "blocking": [[k, d, list(h), ln] for k, d, h, ln in self.blocking],
            "creates_future": self.creates_future,
            "resolves_future": self.resolves_future,
            "local_types": self.local_types,
            "nested": self.nested,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionSummary":
        out = cls(data["qualname"], data.get("cls"), int(data.get("line", 0)))
        out.acquisitions = [
            (t, tuple(h), ln) for t, h, ln in data.get("acquisitions", [])
        ]
        out.calls = [
            (k, t, tuple(h), ln) for k, t, h, ln in data.get("calls", [])
        ]
        out.blocking = [
            (k, d, tuple(h), ln) for k, d, h, ln in data.get("blocking", [])
        ]
        out.creates_future = bool(data.get("creates_future"))
        out.resolves_future = bool(data.get("resolves_future"))
        out.local_types = dict(data.get("local_types", {}))
        out.nested = dict(data.get("nested", {}))
        return out


class ClassSummary:
    """Per-class facts: locks, guarded attrs, attribute types, bases."""

    __slots__ = (
        "name", "bases", "lock_attrs", "attr_types", "guarded",
        "methods", "stop_events", "line",
    )

    def __init__(self, name: str, line: int):
        self.name = name
        self.line = line
        self.bases: List[str] = []
        self.lock_attrs: Set[str] = set()
        #: instance attr -> constructor dotted name
        self.attr_types: Dict[str, str] = {}
        #: guarded attr -> lock attr (from ``# guarded-by:``)
        self.guarded: Dict[str, str] = {}
        self.methods: Set[str] = set()
        #: attrs assigned ``threading.Event()`` (stop-flag protocol)
        self.stop_events: Set[str] = set()

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": self.bases,
            "lock_attrs": sorted(self.lock_attrs),
            "attr_types": self.attr_types,
            "guarded": self.guarded,
            "methods": sorted(self.methods),
            "stop_events": sorted(self.stop_events),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClassSummary":
        out = cls(data["name"], int(data.get("line", 0)))
        out.bases = list(data.get("bases", []))
        out.lock_attrs = set(data.get("lock_attrs", []))
        out.attr_types = dict(data.get("attr_types", {}))
        out.guarded = dict(data.get("guarded", {}))
        out.methods = set(data.get("methods", []))
        out.stop_events = set(data.get("stop_events", []))
        return out


class FileSummary:
    """One file reduced to the facts the project graph joins."""

    __slots__ = ("path", "module", "imports", "classes", "functions",
                 "module_locks")

    def __init__(self, path: str, module: str):
        self.path = path
        self.module = module
        #: local alias -> imported dotted name
        self.imports: Dict[str, str] = {}
        self.classes: Dict[str, ClassSummary] = {}
        #: qualname ("Class.method", "func", "outer.inner") -> summary
        self.functions: Dict[str, FunctionSummary] = {}
        #: module-level names bound to lock constructors
        self.module_locks: Set[str] = set()

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "imports": self.imports,
            "classes": {n: c.to_dict() for n, c in self.classes.items()},
            "functions": {
                n: f.to_dict() for n, f in self.functions.items()
            },
            "module_locks": sorted(self.module_locks),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FileSummary":
        out = cls(data["path"], data["module"])
        out.imports = dict(data.get("imports", {}))
        out.classes = {
            n: ClassSummary.from_dict(c)
            for n, c in data.get("classes", {}).items()
        }
        out.functions = {
            n: FunctionSummary.from_dict(f)
            for n, f in data.get("functions", {}).items()
        }
        out.module_locks = set(data.get("module_locks", []))
        return out


# ---------------------------------------------------------------------- #
# Blocking-operation catalog
# ---------------------------------------------------------------------- #

_SUBPROCESS_CALLS = {"run", "call", "check_call", "check_output", "Popen"}
_PATH_IO = {"read_text", "write_text", "read_bytes", "write_bytes"}
_NUMPY_IO = {"save", "savez", "savez_compressed", "load"}
_SOCKET_OPS = {"recv", "sendall", "accept", "connect"}
_ENGINE_COMPOSE = {
    "product", "chain", "suffix_products", "_compose", "_compose_rows",
}
_NO_ARG_WAITS = {"join", "wait", "result"}


def _classify_blocking(
    call: ast.Call, imports: Dict[str, str]
) -> Optional[Tuple[str, str]]:
    """(kind, detail) when ``call`` is a known blocking operation."""
    func = call.func
    dotted = _dotted(func)
    attr = func.attr if isinstance(func, ast.Attribute) else dotted
    kwargs = {kw.arg for kw in call.keywords}
    resolved = imports.get(dotted.split(".", 1)[0], "") if dotted else ""

    if dotted == "time.sleep" or (
        isinstance(func, ast.Name) and imports.get(func.id) == "time.sleep"
    ):
        return ("sleep", dotted or "sleep")
    if (
        isinstance(func, ast.Attribute)
        and attr in ("get", "put")
        and "timeout" not in kwargs
        and "queue" in _dotted(func.value).lower()
    ):
        return ("queue-wait", f"{dotted} without timeout")
    if (
        isinstance(func, ast.Attribute)
        and attr in _NO_ARG_WAITS
        and not call.args
        and not call.keywords
        and not isinstance(func.value, ast.Constant)
    ):
        return ("unbounded-wait", f"{dotted or attr}() without timeout")
    if (
        dotted.startswith("subprocess.") and attr in _SUBPROCESS_CALLS
    ) or resolved == "subprocess" or attr == "communicate":
        return ("subprocess", dotted or attr)
    if isinstance(func, ast.Name) and func.id == "open":
        return ("file-io", "open")
    if isinstance(func, ast.Attribute) and attr in _PATH_IO:
        return ("file-io", dotted or attr)
    if isinstance(func, ast.Attribute) and attr in _NUMPY_IO and (
        dotted.startswith("np.") or dotted.startswith("numpy.")
    ):
        return ("file-io", dotted)
    if dotted.startswith(("pickle.", "shutil.")) and attr in (
        "dump", "load", "copy", "copytree", "move", "rmtree", "copyfile"
    ):
        return ("file-io", dotted)
    if attr in _SOCKET_OPS or dotted in ("socket.socket", "urlopen"):
        return ("socket-io", dotted or attr)
    if (
        isinstance(func, ast.Attribute)
        and attr in _ENGINE_COMPOSE
        and "engine" in _dotted(func.value).lower()
    ):
        return ("engine-compose", dotted)
    return None


# ---------------------------------------------------------------------- #
# Per-file summarization
# ---------------------------------------------------------------------- #


def _iter_calls(expr: ast.AST) -> Iterator[ast.Call]:
    """Call nodes in ``expr``, not descending into lambda bodies."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class _Summarizer:
    def __init__(self, source: SourceFile):
        self.source = source
        self.summary = FileSummary(str(source.path), module_name(source.path))

    def run(self) -> FileSummary:
        self._imports(self.source.tree)
        for node in self.source.tree.body:
            if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.summary.module_locks.add(target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(node, cls=None, prefix="")
            elif isinstance(node, ast.ClassDef):
                self._class(node)
        return self.summary

    def _imports(self, tree: ast.Module) -> None:
        package = self.summary.module.rsplit(".", 1)[0] \
            if "." in self.summary.module else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else name
                    self.summary.imports[name] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = self.summary.module.split(".")
                    base_parts = base_parts[: len(base_parts) - node.level]
                    base = ".".join(base_parts) or package
                else:
                    base = ""
                root = node.module or ""
                prefix = ".".join(p for p in (base, root) if p)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.summary.imports[name] = (
                        f"{prefix}.{alias.name}" if prefix else alias.name
                    )

    def _class(self, node: ast.ClassDef) -> None:
        cls = ClassSummary(node.name, node.lineno)
        cls.bases = [d for d in (_dotted(b) for b in node.bases) if d]
        cls.guarded = guarded_attributes_from_source(
            self.source.lines, node
        )
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and _is_lock_ctor(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        cls.lock_attrs.add(target.id)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            value = sub.value
            for target in sub.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if _is_lock_ctor(value):
                    cls.lock_attrs.add(target.attr)
                elif isinstance(value, ast.Call):
                    ctor = _dotted(value.func)
                    if ctor.rsplit(".", 1)[-1] == "Event":
                        cls.stop_events.add(target.attr)
                    elif ctor:
                        cls.attr_types.setdefault(target.attr, ctor)
        self.summary.classes[node.name] = cls
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods.add(stmt.name)
                self._function(stmt, cls=cls, prefix=f"{node.name}.")

    # ------------------------------------------------------------------ #

    def _token_of(self, cls: Optional[ClassSummary], qualname: str):
        module = self.summary.module
        guard_locks = set(cls.guarded.values()) if cls is not None else set()

        def token(expr: ast.expr) -> Optional[str]:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
            ):
                base, attr = expr.value.id, expr.attr
                if base in ("self", "cls") and cls is not None:
                    if (
                        attr in cls.lock_attrs
                        or attr in guard_locks
                        or _is_lock_name(attr)
                    ):
                        return f"{module}.{cls.name}.{attr}"
                    return None
                if base in self.summary.classes:
                    owner = self.summary.classes[base]
                    if attr in owner.lock_attrs or _is_lock_name(attr):
                        return f"{module}.{base}.{attr}"
                return None
            if isinstance(expr, ast.Name):
                name = expr.id
                if name in self.summary.module_locks:
                    return f"{module}.{name}"
                if not _is_lock_name(name):
                    return None
                if name in self.summary.imports:
                    # Imported module-level lock: identity lives at the
                    # defining module, shared across importers.
                    return self.summary.imports[name]
                # Function-local lock object: scope the token to this
                # function — locals of different functions are distinct
                # objects and must never be unified into one graph node
                # (that fabricates cycles between unrelated tests).
                return f"{module}.{qualname}.{name}"
            return None

        return token

    def _function(
        self,
        node: ast.AST,
        cls: Optional[ClassSummary],
        prefix: str,
    ) -> None:
        qualname = f"{prefix}{node.name}"
        fn = FunctionSummary(qualname, cls.name if cls else None, node.lineno)
        self.summary.functions[qualname] = fn
        token_of = self._token_of(cls, qualname)
        for event in lock_events(node.body, token_of):
            kind = event[0]
            if kind == "acquire":
                _, tok, held, expr = event
                fn.acquisitions.append((tok, held, expr.lineno))
            elif kind == "nested":
                _, sub, _held = event
                sub_qual = f"{qualname}.{sub.name}"
                fn.nested[sub.name] = sub_qual
                self._function(sub, cls=cls, prefix=f"{qualname}.")
                self.summary.functions[sub_qual] = \
                    self.summary.functions.pop(f"{qualname}.{sub.name}")
            else:
                _, payload, held = event
                if kind == "stmt":
                    self._scan_stmt(payload, held, fn)
                else:
                    self._scan_expr(payload, held, fn)

    def _scan_stmt(
        self, stmt: ast.stmt, held: Tuple[str, ...], fn: FunctionSummary
    ) -> None:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            ctor = _dotted(stmt.value.func)
            for target in stmt.targets:
                if isinstance(target, ast.Name) and ctor:
                    fn.local_types.setdefault(target.id, ctor)
                    if ctor.rsplit(".", 1)[-1].endswith("Future"):
                        fn.creates_future = True
        self._scan_expr(stmt, held, fn)

    def _scan_expr(
        self, expr: ast.AST, held: Tuple[str, ...], fn: FunctionSummary
    ) -> None:
        for call in _iter_calls(expr):
            blocking = _classify_blocking(call, self.summary.imports)
            if blocking is not None:
                fn.blocking.append(
                    (blocking[0], blocking[1], held, call.lineno)
                )
            dotted = _dotted(call.func)
            if not dotted:
                continue
            tail = dotted.rsplit(".", 1)[-1]
            if tail in ("_finish", "set_result", "set_exception"):
                fn.resolves_future = True
            if dotted.startswith("self.") or dotted.startswith("cls."):
                fn.calls.append(
                    ("self", dotted.split(".", 1)[1], held, call.lineno)
                )
            elif "." in dotted:
                fn.calls.append(("attr", dotted, held, call.lineno))
            else:
                fn.calls.append(("name", dotted, held, call.lineno))


def summarize_source(source: SourceFile) -> FileSummary:
    """Reduce one parsed file to its :class:`FileSummary`."""
    return _Summarizer(source).run()


# ---------------------------------------------------------------------- #
# Project graph
# ---------------------------------------------------------------------- #


class ProjectGraph:
    """Symbol table + conservative call graph over file summaries.

    Function identity is ``"<module>:<qualname>"`` (the colon keeps
    module dots and qualname dots apart).  Resolution never guesses at
    an ambiguous receiver: a call that cannot be pinned to exactly one
    project function contributes no edge.
    """

    def __init__(
        self,
        summaries: Dict[str, "FileSummary"],
        suppressions: Optional[Dict[str, object]] = None,
    ):
        self.summaries = summaries
        self._supp = suppressions or {}
        self.modules: Dict[str, FileSummary] = {}
        self.functions: Dict[str, Tuple[FunctionSummary, FileSummary]] = {}
        self.classes: Dict[str, Tuple[ClassSummary, FileSummary]] = {}
        self._by_method: Dict[str, List[str]] = {}
        self._by_class_name: Dict[str, List[str]] = {}
        self.guarded_locks: Set[str] = set()
        for fs in summaries.values():
            self.modules[fs.module] = fs
            for qual, fn in fs.functions.items():
                self.functions[f"{fs.module}:{qual}"] = (fn, fs)
                self._by_method.setdefault(qual.rsplit(".", 1)[-1], []) \
                    .append(f"{fs.module}:{qual}")
            for name, cls in fs.classes.items():
                self.classes[f"{fs.module}:{name}"] = (cls, fs)
                self._by_class_name.setdefault(name, []) \
                    .append(f"{fs.module}:{name}")
                for lock in set(cls.guarded.values()):
                    self.guarded_locks.add(f"{fs.module}.{name}.{lock}")
        self._acquired_memo: Dict[str, Set[str]] = {}
        self._blocking_memo: Dict[str, Optional[tuple]] = {}

    # -- suppression passthrough --------------------------------------- #

    def is_suppressed(self, rule: str, file: str, line: int) -> bool:
        smap = self._supp.get(file)
        return bool(smap is not None and smap.is_suppressed(rule, line))

    # -- symbol resolution --------------------------------------------- #

    def _resolve_class_ref(
        self, fs: FileSummary, dotted: str
    ) -> Optional[str]:
        """Class fqn ("module:Class") for a dotted type reference."""
        segs = dotted.split(".")
        if len(segs) == 1:
            name = segs[0]
            if f"{fs.module}:{name}" in self.classes:
                return f"{fs.module}:{name}"
            imported = fs.imports.get(name)
            if imported:
                mod, _, cls_name = imported.rpartition(".")
                if mod and f"{mod}:{cls_name}" in self.classes:
                    return f"{mod}:{cls_name}"
                return None
            hits = self._by_class_name.get(name, [])
            return hits[0] if len(hits) == 1 else None
        base = fs.imports.get(segs[0])
        if base:
            full = ".".join([base] + segs[1:])
        else:
            full = dotted
        mod, _, cls_name = full.rpartition(".")
        if mod and f"{mod}:{cls_name}" in self.classes:
            return f"{mod}:{cls_name}"
        return None

    def _method_on(
        self, class_fqn: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        seen = _seen if _seen is not None else set()
        if class_fqn in seen:
            return None
        seen.add(class_fqn)
        entry = self.classes.get(class_fqn)
        if entry is None:
            return None
        cls, fs = entry
        if method in cls.methods:
            return f"{fs.module}:{cls.name}.{method}"
        for base in cls.bases:
            base_fqn = self._resolve_class_ref(fs, base)
            if base_fqn is not None:
                found = self._method_on(base_fqn, method, seen)
                if found is not None:
                    return found
        return None

    def resolve_call(
        self, caller_fqn: str, kind: str, target: str
    ) -> Optional[str]:
        entry = self.functions.get(caller_fqn)
        if entry is None:
            return None
        fn, fs = entry
        if kind == "self":
            segs = target.split(".")
            if fn.cls is None:
                return None
            if len(segs) == 1:
                return self._method_on(f"{fs.module}:{fn.cls}", segs[0])
            if len(segs) == 2:
                cls = fs.classes.get(fn.cls)
                ctor = cls.attr_types.get(segs[0]) if cls else None
                if ctor is None:
                    return self._unique_method(segs[-1])
                owner = self._resolve_class_ref(fs, ctor)
                if owner is None:
                    return None  # typed, but not a project class
                return self._method_on(owner, segs[1])
            return None
        if kind == "name":
            nested = fn.nested.get(target)
            if nested is not None:
                return f"{fs.module}:{nested}"
            if target in fs.functions:
                return f"{fs.module}:{target}"
            imported = fs.imports.get(target)
            if imported and "." in imported:
                mod, _, name = imported.rpartition(".")
                if f"{mod}:{name}" in self.functions:
                    return f"{mod}:{name}"
                if f"{mod}:{name}" in self.classes:
                    return self._method_on(f"{mod}:{name}", "__init__")
                return None
            if f"{fs.module}:{target}" in self.classes:
                return self._method_on(f"{fs.module}:{target}", "__init__")
            if imported:
                return None
            return self._unique_function(target)
        # kind == "attr": dotted receiver
        segs = target.split(".")
        method = segs[-1]
        base = segs[0]
        if base in fn.local_types and len(segs) == 2:
            owner = self._resolve_class_ref(fs, fn.local_types[base])
            if owner is None:
                return None  # typed as non-project (queue.Queue, ...)
            return self._method_on(owner, method)
        if base in fs.imports:
            imported = fs.imports[base]
            if len(segs) == 2 and f"{imported}:{method}" in self.functions:
                return f"{imported}:{method}"
            if len(segs) == 3:
                cls_fqn = f"{imported}:{segs[1]}"
                if cls_fqn in self.classes:
                    return self._method_on(cls_fqn, method)
                mod = f"{imported}.{segs[1]}"
                if f"{mod}:{method}" in self.functions:
                    return f"{mod}:{method}"
            return None
        if f"{fs.module}:{base}" in self.classes and len(segs) == 2:
            return self._method_on(f"{fs.module}:{base}", method)
        if base in fn.local_types or base in fs.module_locks:
            return None
        return self._unique_method(method)

    def _unique_method(self, method: str) -> Optional[str]:
        if method in _FALLBACK_BLACKLIST or method.startswith("__"):
            return None
        hits = self._by_method.get(method, [])
        if len(hits) != 1:
            return None
        fn, _fs = self.functions[hits[0]]
        return hits[0] if fn.cls is not None else None

    def _unique_function(self, name: str) -> Optional[str]:
        if name in _FALLBACK_BLACKLIST:
            return None
        hits = [
            fqn for fqn in self._by_method.get(name, [])
            if self.functions[fqn][0].cls is None
            and "." not in self.functions[fqn][0].qualname
        ]
        return hits[0] if len(hits) == 1 else None

    # -- closures over the call graph ---------------------------------- #

    def acquired_closure(
        self, fqn: str, _stack: Optional[Set[str]] = None
    ) -> Set[str]:
        """Locks ``fqn`` may acquire, directly or transitively."""
        memo = self._acquired_memo.get(fqn)
        if memo is not None:
            return memo
        stack = _stack if _stack is not None else set()
        if fqn in stack:
            return set()
        stack.add(fqn)
        entry = self.functions.get(fqn)
        acquired: Set[str] = set()
        if entry is not None:
            fn, _fs = entry
            acquired.update(tok for tok, _held, _line in fn.acquisitions)
            for kind, target, _held, _line in fn.calls:
                callee = self.resolve_call(fqn, kind, target)
                if callee is not None:
                    acquired |= self.acquired_closure(callee, stack)
        stack.discard(fqn)
        self._acquired_memo[fqn] = acquired
        return acquired

    def find_blocking(
        self, fqn: str, _stack: Optional[Set[str]] = None
    ) -> Optional[Tuple[str, str, str, int, Tuple[str, ...]]]:
        """First blocking op reachable from ``fqn``:
        ``(kind, detail, file, line, call_chain)`` or None."""
        if fqn in self._blocking_memo:
            return self._blocking_memo[fqn]
        stack = _stack if _stack is not None else set()
        if fqn in stack:
            return None
        stack.add(fqn)
        entry = self.functions.get(fqn)
        found: Optional[Tuple[str, str, str, int, Tuple[str, ...]]] = None
        if entry is not None:
            fn, fs = entry
            if fn.blocking:
                kind, detail, _held, line = fn.blocking[0]
                found = (kind, detail, fs.path, line, (fqn,))
            else:
                for ckind, target, _held, _line in fn.calls:
                    callee = self.resolve_call(fqn, ckind, target)
                    if callee is None:
                        continue
                    sub = self.find_blocking(callee, stack)
                    if sub is not None:
                        kind, detail, path, line, chain = sub
                        found = (kind, detail, path, line, (fqn,) + chain)
                        break
        stack.discard(fqn)
        self._blocking_memo[fqn] = found
        return found


# ---------------------------------------------------------------------- #
# Per-file analysis cache
# ---------------------------------------------------------------------- #


class AnalysisCache:
    """Content-hash-keyed per-file cache of findings + summaries.

    One JSON file maps source path -> {key, findings, suppressions,
    used, summary}.  The key covers the cache schema version, the ids of
    the per-file rules that ran, the file bytes, and — because the
    fingerprint-completeness rule reads the sibling ``artifacts.py`` —
    that sibling's bytes when one exists.  Cross-file facts (lock-order
    edges, blocking closures) are *not* cached: they are recomputed each
    run from the cached summaries, which is the cheap part.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._entries: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        try:
            data = json.loads(self.path.read_text())
            if data.get("version") == CACHE_VERSION:
                self._entries = data.get("entries", {})
        except (OSError, ValueError):
            self._entries = {}

    def key_for(self, path: Path, data: bytes, rule_token: str) -> str:
        digest = hashlib.sha256()
        digest.update(CACHE_VERSION.encode())
        digest.update(b"\x00")
        digest.update(rule_token.encode())
        digest.update(b"\x00")
        digest.update(data)
        sibling = path.parent / "artifacts.py"
        if path.name != "artifacts.py" and sibling.is_file():
            try:
                digest.update(sibling.read_bytes())
            except OSError:
                pass
        return digest.hexdigest()

    def lookup(self, path: str, key: str) -> Optional[Dict[str, object]]:
        entry = self._entries.get(path)
        if entry is not None and entry.get("key") == key:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, path: str, key: str, entry: Dict[str, object]) -> None:
        entry = dict(entry)
        entry["key"] = key
        self._entries[path] = entry
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = json.dumps(
            {"version": CACHE_VERSION, "entries": self._entries},
            separators=(",", ":"),
        )
        try:
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent) or ".", suffix=".tmp"
            )
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, self.path)
        except OSError:
            return
        self._dirty = False
