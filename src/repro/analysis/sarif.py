"""SARIF 2.1.0 serialization of analysis results.

SARIF (Static Analysis Results Interchange Format) is the lingua franca
CI annotation tooling speaks — GitHub code scanning, VS Code problem
matchers, sarif-tools — so the gate's findings can flow into those
without a custom parser for our ``--json`` shape.  Only the small core
of the spec is emitted: one run, one tool driver listing the rule
catalog, one result per finding with a physical location.

Spec: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.core import AnalysisResult, Rule

#: Canonical schema URI for SARIF 2.1.0 documents.
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def to_sarif(
    result: AnalysisResult, rules: Sequence[Rule]
) -> Dict[str, object]:
    """A SARIF 2.1.0 document for ``result``.

    Rules that produced no finding still appear in the driver's rule
    catalog — consumers use it to render the set of checks that ran.
    Findings from internal pseudo-rules (``parse-error``) that have no
    registered Rule get a catalog entry synthesized on the fly.
    """
    catalog: List[Dict[str, object]] = []
    known = set()
    for rule in rules:
        known.add(rule.rule_id)
        catalog.append(
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.description},
            }
        )
    for finding in result.findings:
        if finding.rule not in known:
            known.add(finding.rule)
            catalog.append(
                {
                    "id": finding.rule,
                    "shortDescription": {"text": finding.rule},
                }
            )
    rule_index = {entry["id"]: i for i, entry in enumerate(catalog)}
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.file.replace("\\", "/"),
                        },
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "rules": catalog,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
